//! Ablation E5 as a wall-clock benchmark: incremental frontier collection
//! vs full collection on a 250-task supergraph.

use criterion::{criterion_group, criterion_main, Criterion};
use openwf_core::{Constructor, InMemoryFragmentStore, IncrementalConstructor, Supergraph};
use openwf_scenario::generator::GeneratedKnowledge;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablation(c: &mut Criterion) {
    let knowledge = GeneratedKnowledge::generate(250, 0xE5);
    let mut rng = StdRng::seed_from_u64(3);
    let path = knowledge.sample_path(8, &mut rng, 256).expect("sampleable");
    let spec = path.spec;

    let mut group = c.benchmark_group("ablation_250_tasks");
    group.bench_function("full_collection", |b| {
        b.iter(|| {
            let sg = Supergraph::from_fragments(knowledge.fragments()).unwrap();
            Constructor::new()
                .construct(&sg, &spec)
                .expect("satisfiable")
        });
    });
    group.bench_function("incremental_frontier", |b| {
        b.iter(|| {
            let mut store: InMemoryFragmentStore = knowledge.fragments().iter().cloned().collect();
            IncrementalConstructor::new()
                .construct(&mut store, &spec)
                .expect("satisfiable")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
