//! Micro-benchmark: auction-manager bid processing — the §3.2 selection
//! criterion applied to a stream of bids from communities of varying size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_core::{Label, TaskId};
use openwf_runtime::auction::ProblemAuctions;
use openwf_runtime::auction_part::Bid;
use openwf_runtime::TaskMetadata;
use openwf_simnet::{HostId, SimDuration, SimTime};

fn meta() -> TaskMetadata {
    TaskMetadata {
        level: 0,
        inputs: vec![Label::new("a")],
        outputs: vec![Label::new("b")],
        location: None,
        earliest_start: SimTime::ZERO,
    }
}

fn bench_auction(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction_bids");
    for &hosts in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                let task = TaskId::new("t");
                let mut pa = ProblemAuctions::open(vec![(task.clone(), meta())], hosts);
                for h in 0..hosts {
                    let bid = Bid {
                        start: SimTime::from_micros((h * 7 % 13) as u64),
                        travel: SimDuration::ZERO,
                        duration: SimDuration::from_secs(1),
                        specialization: (h % 5) as u32 + 1,
                        deadline: SimTime::from_micros(1_000_000),
                    };
                    pa.on_bid(&task, HostId(h as u32), bid);
                }
                assert!(pa.all_decided());
                pa
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_auction);
criterion_main!(benches);
