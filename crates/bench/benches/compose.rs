//! Micro-benchmark: workflow composition (§2.2 semantic-identity union)
//! over chains of fragments of varying length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_core::{compose_all, Fragment, Mode, Workflow};

fn chain(n: usize) -> Vec<Workflow> {
    (0..n)
        .map(|i| {
            Fragment::single_task(
                format!("f{i}"),
                format!("t{i}"),
                Mode::Disjunctive,
                [format!("l{i}")],
                [format!("l{}", i + 1)],
            )
            .unwrap()
            .into()
        })
        .collect()
}

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_chain");
    for &n in &[10usize, 100, 1_000] {
        let parts = chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &parts, |b, parts| {
            b.iter(|| compose_all(parts.iter()).expect("chain composes"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compose);
criterion_main!(benches);
