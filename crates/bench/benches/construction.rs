//! Micro-benchmark: Algorithm 1 itself (no network, no runtime) — full
//! supergraph assembly plus coloring construction, across supergraph
//! sizes. Separates the algorithmic cost from protocol latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_core::{Constructor, Supergraph};
use openwf_scenario::generator::GeneratedKnowledge;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction_algorithm");
    for &tasks in &[25usize, 100, 500] {
        let knowledge = GeneratedKnowledge::generate(tasks, 77);
        let sg = Supergraph::from_fragments(knowledge.fragments()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let path = knowledge
            .sample_path((tasks / 5).clamp(2, 12), &mut rng, 256)
            .expect("sampleable");
        group.bench_with_input(
            BenchmarkId::new("color_and_sweep", tasks),
            &(&sg, &path.spec),
            |b, (sg, spec)| {
                b.iter(|| {
                    Constructor::new()
                        .construct(sg, spec)
                        .expect("guaranteed satisfiable")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("supergraph_merge", tasks),
            &knowledge,
            |b, k| {
                b.iter(|| Supergraph::from_fragments(k.fragments()).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
