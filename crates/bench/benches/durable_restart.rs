//! Durable-store restart bench: cold full-history replay vs snapshot +
//! tail restart under supersede churn.
//!
//! Full mode (`cargo bench --bench durable_restart`) measures
//! 1k/10k/100k live fragments × 0%/50%/90% churn and writes the
//! trajectory file `BENCH_durable_restart.json` at the workspace root.
//! Fast mode (`OPENWF_RESTART_FAST=1`, or `--test` as used by
//! `cargo test --benches`) runs one small 90%-churn schedule with few
//! samples and does not touch the committed file — the CI bit-rot guard
//! for the snapshot-load path. Fast mode also gates the within-run
//! cold/snapshot ratio: at 90% churn the snapshot restart decodes
//! ~1.5× the live set while the cold replay decodes 10×, so the ratio
//! sits near 6× on an idle machine; a broken or ignored snapshot drops
//! it to 1× and trips the gate long before the committed numbers could
//! quietly rot.

use openwf_bench::restart::{
    churn_schedule, default_report_path, measure_schedule, run, to_json, CHURN_PERCENTS,
    RESTART_SIZES,
};

/// Fast-mode regression gate: at 90% churn, cold replay must cost at
/// least this many times a snapshot + tail restart. Theoretical record
/// ratio at a 95%-of-history snapshot is ~6.7×; the slack absorbs
/// shared-runner noise, not a real regression — a restart that ignores
/// its snapshot lands at 1×.
const COLD_SNAPSHOT_MIN_RATIO: f64 = 2.0;

/// Fast-mode live-set size: big enough that decode work dominates the
/// per-open constant costs, small enough for CI.
const FAST_LIVE: usize = 2_000;

fn samples_for(fragments: usize) -> usize {
    match fragments {
        n if n <= 1_000 => 20,
        n if n <= 10_000 => 10,
        _ => 5,
    }
}

fn main() {
    let fast = std::env::var_os("OPENWF_RESTART_FAST").is_some()
        || std::env::args().any(|a| a == "--test");
    let results = if fast {
        let schedule = churn_schedule(FAST_LIVE, 90, 0xfa57);
        measure_schedule(&schedule, openwf_wire::DEFAULT_SEGMENT_BYTES, 5)
    } else {
        run(RESTART_SIZES, CHURN_PERCENTS, samples_for)
    };
    for r in &results {
        println!(
            "restart/{}/{:<7} churn {:>2}% {:>12.0} ns mean  p50 {:>12.0}  p95 {:>12.0}  \
             ({} samples, {} records, {} bytes, {:.0} frags/s)",
            r.op,
            r.fragments,
            r.churn_percent,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.samples,
            r.records,
            r.bytes,
            r.frags_per_sec,
        );
    }
    if fast {
        let mean = |op: &str| {
            results
                .iter()
                .find(|r| r.op == op)
                .map(|r| r.mean_ns)
                .expect("op measured")
        };
        let (cold, snap) = (mean("cold_replay"), mean("snapshot_restart"));
        let ratio = cold / snap;
        println!(
            "restart/gate cold_replay/snapshot_restart ratio {ratio:.2} \
             (min {COLD_SNAPSHOT_MIN_RATIO:.1})"
        );
        assert!(
            ratio >= COLD_SNAPSHOT_MIN_RATIO,
            "snapshot restart lost its advantage: cold {cold:.0} ns vs snapshot {snap:.0} ns \
             (ratio {ratio:.2} < {COLD_SNAPSHOT_MIN_RATIO:.1})"
        );
    } else {
        let path = default_report_path();
        std::fs::write(&path, to_json(&results)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
