//! Figure 4 (wall-clock counterpart): one full construct+allocate problem
//! on a 100-task supergraph, sweeping community size. The paper's
//! observation — time grows roughly linearly with the number of hosts —
//! shows up as monotonically growing per-iteration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_scenario::{run_series, ExperimentConfig, LatencyKind};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_hosts");
    group.sample_size(10);
    for &hosts in &[2usize, 5, 10, 15] {
        let config = ExperimentConfig::new(100, hosts, LatencyKind::SimulatedLan)
            .path_lengths([10])
            .runs(3)
            .seed(4_000 + hosts as u64);
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &config, |b, cfg| {
            b.iter(|| {
                let pts = run_series(cfg);
                assert!(!pts.is_empty());
                pts
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
