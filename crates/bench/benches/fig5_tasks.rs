//! Figure 5 (wall-clock counterpart): 2 hosts, sweeping supergraph size.
//! The paper: "the rate of increase grows with the number of task nodes
//! because the Workflow Manager encounters more nodes during its search
//! through the densely connected supergraph."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_scenario::{run_series, ExperimentConfig, LatencyKind};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_tasks");
    group.sample_size(10);
    for &tasks in &[25usize, 100, 500] {
        let config = ExperimentConfig::new(tasks, 2, LatencyKind::SimulatedLan)
            .path_lengths([8])
            .runs(3)
            .seed(5_000 + tasks as u64);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &config, |b, cfg| {
            b.iter(|| run_series(cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
