//! Figure 6 (wall-clock counterpart): 4 hosts on the 802.11g ad hoc
//! wireless model (the documented substitution for the paper's laptop
//! testbed), sweeping supergraph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use openwf_scenario::{run_series, ExperimentConfig, LatencyKind};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_wireless");
    group.sample_size(10);
    for &tasks in &[25usize, 50, 100] {
        let config = ExperimentConfig::new(tasks, 4, LatencyKind::Wireless)
            .path_lengths([10])
            .runs(3)
            .seed(6_000 + tasks as u64);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &config, |b, cfg| {
            b.iter(|| run_series(cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
