//! Wall-clock scaling bench: incremental construction over 1k/10k/100k
//! fragment universes (layered and random shapes) across a frontier
//! worker-count sweep (1/2/4/max).
//!
//! Full mode (`cargo bench --bench scale`) measures every (size, threads)
//! cell and writes the trajectory file `BENCH_construction_scale.json` at
//! the workspace root. Fast mode (`OPENWF_SCALE_FAST=1`, or `--test` as
//! used by `cargo test --benches`) runs only the 1k size with few samples
//! and does not touch the committed trajectory file — this is the CI
//! bit-rot guard. In fast mode `OPENWF_SCALE_THREADS` selects the worker
//! count (`max` = one worker per hardware thread); CI runs fast mode
//! twice — single-threaded and max-threads — so the parallel frontier
//! path cannot bit-rot either.

use openwf_bench::scale::{
    default_report_path, layered_universe, measure, random_universe, thread_sweep, to_json,
    ScaleMeasurement, SCALE_SIZES,
};

fn samples_for(fragments: usize) -> usize {
    match fragments {
        n if n <= 1_000 => 20,
        n if n <= 10_000 => 10,
        // Enough samples that one noisy-neighbor stall on a shared
        // machine does not dominate the mean.
        _ => 7,
    }
}

fn fast_mode_threads() -> usize {
    match std::env::var("OPENWF_SCALE_THREADS").ok().as_deref() {
        Some("max") | Some("0") => openwf_core::hardware_parallelism(),
        Some(n) => n.parse().unwrap_or(1),
        None => 1,
    }
}

fn main() {
    let fast =
        std::env::var_os("OPENWF_SCALE_FAST").is_some() || std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if fast { &SCALE_SIZES[..1] } else { SCALE_SIZES };
    let sweep: Vec<usize> = if fast {
        vec![fast_mode_threads()]
    } else {
        thread_sweep()
    };

    let mut results: Vec<ScaleMeasurement> = Vec::new();
    for &n in sizes {
        let samples = if fast { 3 } else { samples_for(n) };
        for universe in [layered_universe(n), random_universe(n, 0xC0FFEE)] {
            for &threads in &sweep {
                let m = measure(&universe, threads, samples);
                println!(
                    "scale/{}/{:<7} threads {:>2}  mean {:>12.0} ns  p50 {:>12.0} ns  \
                     p95 {:>12.0} ns  (min {:.0} ns, {} samples, {} steps, {} fragments pulled)",
                    m.universe,
                    m.fragments,
                    m.threads,
                    m.mean_ns,
                    m.p50_ns,
                    m.p95_ns,
                    m.min_ns,
                    m.samples,
                    m.explore_steps,
                    m.fragments_merged,
                );
                results.push(m);
            }
        }
    }

    if !fast {
        let path = default_report_path();
        std::fs::write(&path, to_json(&results)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
