//! Chaos soak bench: every named fault profile at city scales, gated on
//! the per-run invariants.
//!
//! Full mode (`cargo bench --bench soak`) sweeps all five profiles over
//! [`SOAK_SCALES`] districts (~200- and ~1000-host cities), writes the
//! trajectory file `BENCH_soak.json` at the workspace root, and fails
//! if any cell violates an invariant. Fast mode (`OPENWF_SOAK_FAST=1`,
//! or `--test` as used by `cargo test --benches`) runs every profile at
//! two districts with the same gates and does not touch the committed
//! file — the CI chaos-regression guard.
//!
//! Every run prints its master seed and a one-line rerun recipe; set
//! `OPENWF_SOAK_SEED` (decimal or `0x…` hex) to replay a sweep exactly.

use openwf_bench::soak::{default_report_path, run, to_json, DEFAULT_SOAK_SEED, SOAK_SCALES};

fn seed_from_env() -> u64 {
    match std::env::var("OPENWF_SOAK_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("unparseable OPENWF_SOAK_SEED: {s:?}"))
        }
        Err(_) => DEFAULT_SOAK_SEED,
    }
}

fn main() {
    let fast =
        std::env::var_os("OPENWF_SOAK_FAST").is_some() || std::env::args().any(|a| a == "--test");
    let seed = seed_from_env();
    let mode = if fast { "fast" } else { "full" };
    println!("soak/seed {seed:#x} ({mode} mode)");
    println!("soak/rerun OPENWF_SOAK_SEED={seed:#x} cargo bench --bench soak");

    let results = if fast {
        run(&[2], seed)
    } else {
        run(SOAK_SCALES, seed)
    };
    for r in &results {
        println!("soak/{r}");
    }

    let red: Vec<String> = results
        .iter()
        .filter(|r| !r.invariants_hold())
        .map(|r| format!("{r}"))
        .collect();
    assert!(
        red.is_empty(),
        "soak invariants violated (rerun with OPENWF_SOAK_SEED={seed:#x}):\n{}",
        red.join("\n")
    );

    if !fast {
        let path = default_report_path();
        std::fs::write(&path, to_json(&results)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
