//! Socket transport bench: frame-ingest throughput and end-to-end
//! workflow latency over real localhost TCP.
//!
//! Full mode (`cargo bench --bench socket`) blasts 100k frames and
//! runs 20 workflow constructions, then writes the trajectory file
//! `BENCH_socket.json` at the workspace root. Fast mode
//! (`OPENWF_SOCKET_FAST=1`, or `--test` as used by
//! `cargo test --benches`) runs a bounded smoke — 2k frames, 3
//! workflows — with the same assertions and does not touch the
//! committed file: the CI gate that the socket path keeps working and
//! keeps its order of magnitude.

use openwf_bench::socket::{default_report_path, run_e2e, run_ingest, to_json};

fn main() {
    let fast =
        std::env::var_os("OPENWF_SOCKET_FAST").is_some() || std::env::args().any(|a| a == "--test");
    let (frames, workflows) = if fast { (2_000, 3) } else { (100_000, 20) };
    println!("socket/mode {}", if fast { "fast" } else { "full" });

    let ingest = run_ingest(frames);
    println!(
        "socket/ingest {} frames in {:.1}ms -> {:.0} frames/s, {:.2} MiB/s",
        ingest.frames,
        ingest.elapsed.as_secs_f64() * 1000.0,
        ingest.frames_per_sec(),
        ingest.mib_per_sec(),
    );
    // Order-of-magnitude floor, not a tight SLA: a debug build on a
    // loaded CI box still decodes thousands of frames a second; only a
    // broken transport (e.g. one poll per frame) falls under it.
    assert!(
        ingest.frames_per_sec() > 1_000.0,
        "socket ingest collapsed: {:.0} frames/s",
        ingest.frames_per_sec()
    );

    let e2e = run_e2e(workflows);
    println!(
        "socket/e2e {} workflows: p50 {:.0}ms p95 {:.0}ms max {:.0}ms",
        e2e.latencies.len(),
        e2e.quantile_ms(0.50),
        e2e.quantile_ms(0.95),
        e2e.quantile_ms(1.0),
    );
    // Protocol timers bound completion from below (~round + auction);
    // the ceiling catches wedges that only resolve via watchdogs.
    assert!(
        e2e.quantile_ms(1.0) < 8_000.0,
        "socket e2e latency wedged: max {:.0}ms",
        e2e.quantile_ms(1.0)
    );

    if !fast {
        let path = default_report_path();
        std::fs::write(&path, to_json(&ingest, &e2e)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
