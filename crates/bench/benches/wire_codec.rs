//! Wire codec + storage-backend bench: encode/decode throughput over
//! 1k/10k/100k fragment universes plus a memory-vs-durable construction
//! sweep.
//!
//! Full mode (`cargo bench --bench wire_codec`) measures every size and
//! writes the trajectory file `BENCH_wire_codec.json` at the workspace
//! root. Fast mode (`OPENWF_WIRE_FAST=1`, or `--test` as used by
//! `cargo test --benches`) runs only the 1k size with few samples and
//! does not touch the committed file — the CI bit-rot guard for the
//! encode/decode and durable-replay paths. Fast mode also gates the
//! decode/encode throughput ratio: steady-state decode (the identity
//! cache hit path every host runs for re-announced knowhow) must stay
//! within [`DECODE_ENCODE_SLACK`]× of encode, so the 3× decode gap this
//! path closed cannot silently reopen — a broken cache alone pushes the
//! ratio past the gate.

use openwf_bench::wirebench::{default_report_path, run, to_json, WIRE_SIZES};

/// Fast-mode regression gate: steady-state decode (`decode_cached`) mean
/// time may be at most this many times the encode mean. The measured
/// ratio is well under 1× on an idle machine; the slack absorbs
/// shared-runner noise, not a real regression — losing the identity
/// cache alone lands the ratio near 2×, past this gate.
const DECODE_ENCODE_SLACK: f64 = 1.5;

fn samples_for(fragments: usize) -> usize {
    match fragments {
        n if n <= 1_000 => 20,
        n if n <= 10_000 => 10,
        _ => 5,
    }
}

fn main() {
    let fast =
        std::env::var_os("OPENWF_WIRE_FAST").is_some() || std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if fast { &WIRE_SIZES[..1] } else { WIRE_SIZES };
    let results = run(sizes, |n| if fast { 3 } else { samples_for(n) });
    for r in &results {
        println!(
            "wire/{}/{:<7} {:>12.0} ns mean  p50 {:>12.0}  p95 {:>12.0}  ({} samples{})",
            r.op,
            r.fragments,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.samples,
            if r.bytes > 0 {
                format!(", {} bytes, {:.1} MiB/s", r.bytes, r.mibps)
            } else {
                format!(", {:.0} frags/s", r.frags_per_sec)
            },
        );
    }
    if fast {
        let mean = |op: &str| {
            results
                .iter()
                .find(|r| r.op == op)
                .map(|r| r.mean_ns)
                .expect("op measured")
        };
        let (enc, dec) = (mean("encode"), mean("decode_cached"));
        let ratio = dec / enc;
        println!("wire/gate decode_cached/encode ratio {ratio:.2} (max {DECODE_ENCODE_SLACK:.1})");
        assert!(
            ratio <= DECODE_ENCODE_SLACK,
            "steady-state decode regressed: {dec:.0} ns vs encode {enc:.0} ns \
             (ratio {ratio:.2} > {DECODE_ENCODE_SLACK:.1})"
        );
    } else {
        let path = default_report_path();
        std::fs::write(&path, to_json(&results)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
