//! Wire codec + storage-backend bench: encode/decode throughput over
//! 1k/10k/100k fragment universes plus a memory-vs-durable construction
//! sweep.
//!
//! Full mode (`cargo bench --bench wire_codec`) measures every size and
//! writes the trajectory file `BENCH_wire_codec.json` at the workspace
//! root. Fast mode (`OPENWF_WIRE_FAST=1`, or `--test` as used by
//! `cargo test --benches`) runs only the 1k size with few samples and
//! does not touch the committed file — the CI bit-rot guard for the
//! encode/decode and durable-replay paths.

use openwf_bench::wirebench::{default_report_path, run, to_json, WIRE_SIZES};

fn samples_for(fragments: usize) -> usize {
    match fragments {
        n if n <= 1_000 => 20,
        n if n <= 10_000 => 10,
        _ => 5,
    }
}

fn main() {
    let fast =
        std::env::var_os("OPENWF_WIRE_FAST").is_some() || std::env::args().any(|a| a == "--test");
    let sizes: &[usize] = if fast { &WIRE_SIZES[..1] } else { WIRE_SIZES };
    let results = run(sizes, |n| if fast { 3 } else { samples_for(n) });
    for r in &results {
        println!(
            "wire/{}/{:<7} {:>12.0} ns mean  p50 {:>12.0}  p95 {:>12.0}  ({} samples{})",
            r.op,
            r.fragments,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.samples,
            if r.bytes > 0 {
                format!(", {} bytes, {:.1} MiB/s", r.bytes, r.mibps)
            } else {
                String::new()
            },
        );
    }
    if !fast {
        let path = default_report_path();
        std::fs::write(&path, to_json(&results)).expect("write trajectory file");
        println!("wrote {}", path.display());
    }
}
