//! Ablation E5: incremental frontier collection vs full collection.
//!
//! §3.1 motivates the incremental variant: "we build the supergraph
//! incrementally, drawing from the community only the fragments that we
//! need to extend the supergraph along the boundaries of the colored
//! region." This experiment quantifies the saving: fragments transferred
//! and construction wall time, full-collection vs incremental, across
//! supergraph sizes.

use std::time::Instant;

use openwf_core::{Constructor, InMemoryFragmentStore, IncrementalConstructor, Supergraph};
use openwf_scenario::generator::GeneratedKnowledge;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One row of the ablation table.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Supergraph size (tasks).
    pub tasks: usize,
    /// Requested path length.
    pub path_length: usize,
    /// Fragments "transferred" under full collection (all of them).
    pub full_fragments: usize,
    /// Fragments pulled by incremental frontier collection.
    pub incremental_fragments: usize,
    /// Mean full-collection construction time (µs, wall clock).
    pub full_micros: f64,
    /// Mean incremental construction time (µs, wall clock).
    pub incremental_micros: f64,
    /// Runs averaged.
    pub runs: usize,
}

impl AblationRow {
    /// Fraction of community knowledge the incremental strategy avoided
    /// transferring.
    pub fn transfer_saving(&self) -> f64 {
        1.0 - self.incremental_fragments as f64 / self.full_fragments as f64
    }
}

/// Runs the ablation at one supergraph size.
///
/// # Panics
///
/// Panics if the generated supergraph cannot produce a path of
/// `path_length` (callers use lengths well under `tasks`).
pub fn run_ablation(tasks: usize, path_length: usize, runs: usize, seed: u64) -> AblationRow {
    let knowledge = GeneratedKnowledge::generate(tasks, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
    let mut full_times = Vec::with_capacity(runs);
    let mut inc_times = Vec::with_capacity(runs);
    let mut inc_fragments_total = 0usize;

    for _ in 0..runs {
        let path = knowledge
            .sample_path(path_length, &mut rng, 256)
            .expect("path length must be sampleable for the ablation");

        // Full collection: gather everything, then construct.
        let t0 = Instant::now();
        let sg = Supergraph::from_fragments(knowledge.fragments()).expect("consistent modes");
        let full = Constructor::new()
            .construct(&sg, &path.spec)
            .expect("guaranteed satisfiable");
        full_times.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(path.spec.accepts(full.workflow()));

        // Incremental: frontier-driven queries against the same store.
        let mut store: InMemoryFragmentStore = knowledge.fragments().iter().cloned().collect();
        let t0 = Instant::now();
        let (inc, partial) = IncrementalConstructor::new()
            .construct(&mut store, &path.spec)
            .expect("guaranteed satisfiable");
        inc_times.push(t0.elapsed().as_secs_f64() * 1e6);
        assert!(path.spec.accepts(inc.workflow()));
        inc_fragments_total += partial.fragment_count();
    }

    AblationRow {
        tasks,
        path_length,
        full_fragments: knowledge.fragments().len(),
        incremental_fragments: inc_fragments_total / runs.max(1),
        full_micros: mean(&full_times),
        incremental_micros: mean(&inc_times),
        runs,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_never_pulls_more_than_full() {
        let row = run_ablation(60, 6, 5, 11);
        assert!(row.incremental_fragments <= row.full_fragments);
        assert!(row.transfer_saving() >= 0.0);
        assert_eq!(row.runs, 5);
    }

    #[test]
    fn savings_exist_for_short_paths_in_large_graphs() {
        let row = run_ablation(200, 4, 3, 13);
        assert!(
            row.incremental_fragments < row.full_fragments,
            "short path in a 200-task graph should not need all fragments: {row:?}"
        );
    }
}
