//! Regenerates every figure of WUCSE-2009-14 §5 as markdown tables.
//!
//! ```text
//! figures [fig4] [fig5] [fig6] [ablation] [repair] [all] [--runs N]
//! ```
//!
//! With no figure argument, `all` is assumed. `--runs` sets the number of
//! measured runs per point (the paper used 1000; the default here is 100
//! to keep regeneration minutes-scale — means stabilize well before that).

use std::env;

use openwf_bench::{ablation, fig4_configs, fig5_configs, fig6_configs, render_markdown, repair};
use openwf_scenario::run_series;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut runs = 100usize;
    let mut figures: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--runs needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => figures.push(other.to_string()),
        }
        i += 1;
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = vec![
            "fig4".into(),
            "fig5".into(),
            "fig6".into(),
            "ablation".into(),
            "repair".into(),
        ];
    }

    // Fail fast on typos before any (expensive) series runs.
    for fig in &figures {
        if !matches!(
            fig.as_str(),
            "fig4" | "fig5" | "fig6" | "ablation" | "repair"
        ) {
            eprintln!("unknown figure `{fig}` (use fig4|fig5|fig6|ablation|repair|all)");
            std::process::exit(2);
        }
    }

    println!("# Open workflow figure regeneration ({runs} runs/point)\n");
    for fig in figures {
        match fig.as_str() {
            "fig4" => run_figure(
                "Figure 4 — simulation, 100 task nodes, varying hosts",
                fig4_configs(runs),
            ),
            "fig5" => run_figure(
                "Figure 5 — simulation, 2 hosts, varying task nodes",
                fig5_configs(runs),
            ),
            "fig6" => run_figure(
                "Figure 6 — 802.11g ad hoc wireless model, 4 hosts",
                fig6_configs(runs),
            ),
            "ablation" => run_ablation(runs),
            "repair" => run_repair(),
            other => unreachable!("figure names validated above: {other}"),
        }
    }
}

fn run_figure(title: &str, configs: Vec<(String, openwf_scenario::ExperimentConfig)>) {
    eprintln!("running: {title}");
    let series: Vec<_> = configs
        .into_iter()
        .map(|(label, cfg)| {
            eprintln!("  series {label} …");
            let pts = run_series(&cfg);
            (label, pts)
        })
        .collect();
    println!("{}", render_markdown(title, &series));
}

fn run_ablation(runs: usize) {
    eprintln!("running: ablation (incremental vs full collection)");
    println!("## Ablation E5 — incremental frontier collection vs full collection\n");
    println!("| tasks | path | full frags | incr frags | saving | full µs | incr µs |");
    println!("|---|---|---|---|---|---|---|");
    for &tasks in &[50usize, 100, 250, 500] {
        let row = ablation::run_ablation(tasks, 8, runs.clamp(5, 50), 0xE5 + tasks as u64);
        println!(
            "| {} | {} | {} | {} | {:.0}% | {:.1} | {:.1} |",
            row.tasks,
            row.path_length,
            row.full_fragments,
            row.incremental_fragments,
            row.transfer_saving() * 100.0,
            row.full_micros,
            row.incremental_micros,
        );
    }
    println!();
}

fn run_repair() {
    eprintln!("running: repair (crash → reconstruction + reallocation)");
    println!("## Repair E6 — executing host crashes after allocation\n");
    let base = repair::run_baseline();
    let rep = repair::run_repair();
    println!("| variant | completed | attempts | total (ms) | executor |");
    println!("|---|---|---|---|---|");
    println!(
        "| no fault | {} | {} | {:.3} | {:?} |",
        base.completed,
        base.attempts,
        base.total_ms.unwrap_or(f64::NAN),
        base.final_executor,
    );
    println!(
        "| winner crashes | {} | {} | {:.3} | {:?} |",
        rep.completed,
        rep.attempts,
        rep.total_ms.unwrap_or(f64::NAN),
        rep.final_executor,
    );
    println!();
}
