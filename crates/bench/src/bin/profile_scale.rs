//! Phase-level wall-clock breakdown of one incremental construction,
//! for hot-path diagnosis. Replicates `IncrementalConstructor`'s loop
//! with timers around each phase.

use std::time::{Duration, Instant};

use openwf_bench::scale::{layered_universe, random_universe};
use openwf_core::construct::explore::{explore_with, ExploreScratch};
use openwf_core::construct::{self, ColorState, ConstructStats, PickOrder};
use openwf_core::{FxHashSet, Label};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100_000);
    let merge_first = std::env::args().nth(2).as_deref() == Some("merge-first");
    for mut u in [layered_universe(n), random_universe(n, 0xC0FFEE)] {
        if merge_first {
            let all: Vec<std::sync::Arc<openwf_core::Fragment>> =
                u.store.fragments_shared().into_iter().cloned().collect();
            let t0 = Instant::now();
            let mut g = openwf_core::Graph::new();
            let mut map = Vec::new();
            for f in &all {
                let _ = g.merge_from_mapped(f.graph(), &mut map);
            }
            let graph_only = t0.elapsed();
            let t0 = Instant::now();
            let mut sg2 = openwf_core::Supergraph::new();
            let merged = sg2.merge_fragments_batch(&all);
            let batch = t0.elapsed();
            println!(
                "{}/{n} clean-process merge ({merged} fragments): graph-only {graph_only:>7.1?}  supergraph-batch {batch:>7.1?}",
                u.name
            );
            continue;
        }
        // Warm-up.
        let (c, _) = openwf_core::IncrementalConstructor::new()
            .construct(&mut u.store, &u.spec)
            .unwrap();
        assert!(u.spec.accepts(c.workflow()));

        let mut t_query = Duration::ZERO;
        let mut t_merge = Duration::ZERO;
        let mut t_explore = Duration::ZERO;
        let mut t_finish = Duration::ZERO;
        let total = Instant::now();

        let mut sg = openwf_core::Supergraph::new();
        let h = u.hints();
        sg.reserve(h.fragments, h.nodes, h.edges);
        let mut state = ColorState::with_len(0);
        state.reserve(h.nodes);
        let mut scratch = ExploreScratch::new();
        let mut queried: FxHashSet<Label> = FxHashSet::default();
        queried.reserve(h.nodes / 2);
        let mut stats = ConstructStats::default();
        let mut last = None;
        let mut frontier_candidates: Vec<Label> = u.spec.triggers().iter().cloned().collect();
        loop {
            let frontier: Vec<Label> = frontier_candidates
                .drain(..)
                .filter(|l| queried.insert(l.clone()))
                .collect();
            if frontier.is_empty() {
                break;
            }
            let t0 = Instant::now();
            let fragments = u.store.consuming(&frontier);
            t_query += t0.elapsed();
            let t0 = Instant::now();
            sg.merge_fragments_batch(&fragments);
            t_merge += t0.elapsed();
            let t0 = Instant::now();
            let outcome = explore_with(
                sg.graph(),
                &mut state,
                &u.spec,
                &mut |_| true,
                PickOrder::Fifo,
                None,
                &mut scratch,
            );
            t_explore += t0.elapsed();
            stats.explore_steps += outcome.steps;
            frontier_candidates.extend_from_slice(&outcome.new_green_labels);
            let done = outcome.unreachable_goals.is_empty();
            last = Some(outcome);
            if done {
                break;
            }
        }
        let t0 = Instant::now();
        let c = construct::finish(&sg, &u.spec, state, last.unwrap(), stats, None).unwrap();
        t_finish += t0.elapsed();
        let t_total = total.elapsed();
        assert!(u.spec.accepts(c.workflow()));
        println!(
            "{}/{n}: total {:>7.1?}  query {:>7.1?}  merge {:>7.1?}  explore {:>7.1?}  finish {:>7.1?}  (other {:>7.1?})",
            u.name,
            t_total,
            t_query,
            t_merge,
            t_explore,
            t_finish,
            t_total - t_query - t_merge - t_explore - t_finish,
        );

        // Merge-cost microbreakdown over the whole universe in one batch.
        let all: Vec<std::sync::Arc<openwf_core::Fragment>> =
            u.store.fragments_shared().into_iter().cloned().collect();
        let t0 = Instant::now();
        let mut g = openwf_core::Graph::new();
        let mut map = Vec::new();
        for f in &all {
            let _ = g.merge_from_mapped(f.graph(), &mut map);
        }
        let graph_only = t0.elapsed();
        let t0 = Instant::now();
        let mut sg2 = openwf_core::Supergraph::new();
        let merged = sg2.merge_fragments_batch(&all);
        let batch = t0.elapsed();
        let t0 = Instant::now();
        let mut sg3 = openwf_core::Supergraph::new();
        for f in &all {
            let _ = sg3.try_merge_fragment(f);
        }
        let seq = t0.elapsed();
        println!(
            "  merge breakdown ({merged} fragments): graph-only {graph_only:>7.1?}  supergraph-batch {batch:>7.1?}  supergraph-seq {seq:>7.1?}"
        );
    }
}
