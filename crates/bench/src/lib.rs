//! # openwf-bench — figure regeneration and benchmarks
//!
//! One experiment definition per figure of WUCSE-2009-14 §5, shared
//! between the `figures` binary (virtual-time series, markdown output)
//! and the Criterion benches (wall-clock micro/macro benchmarks):
//!
//! * **Figure 4** — 100-task supergraph, 2–15 hosts, path length 2–22.
//! * **Figure 5** — 2 hosts, 25–500-task supergraphs, path length 2–14.
//! * **Figure 6** — 4 hosts on the 802.11g wireless model, 25/50/100
//!   tasks (the documented substitution for the paper's four-laptop
//!   testbed).
//! * **Ablation (E5)** — incremental frontier collection vs full
//!   collection: fragments transferred and construction time.
//! * **Repair (E6)** — crash the executing host, watchdog-triggered
//!   reconstruction + reallocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use openwf_scenario::{ExperimentConfig, LatencyKind, SeriesPoint};

pub mod ablation;
pub mod repair;
pub mod restart;
pub mod scale;
pub mod soak;
pub mod socket;
pub mod wirebench;

/// Host counts of Figure 4.
pub const FIG4_HOSTS: &[usize] = &[2, 3, 4, 5, 10, 15];
/// Supergraph sizes of Figure 5.
pub const FIG5_TASKS: &[usize] = &[25, 50, 100, 250, 500];
/// Supergraph sizes of Figure 6.
pub const FIG6_TASKS: &[usize] = &[25, 50, 100];

/// Experiment configs for Figure 4 (one per host count).
pub fn fig4_configs(runs: usize) -> Vec<(String, ExperimentConfig)> {
    FIG4_HOSTS
        .iter()
        .map(|&hosts| {
            (
                format!("{hosts} host"),
                ExperimentConfig::new(100, hosts, LatencyKind::SimulatedLan)
                    .path_lengths((2..=22).step_by(2))
                    .runs(runs),
            )
        })
        .collect()
}

/// Experiment configs for Figure 5 (one per supergraph size).
pub fn fig5_configs(runs: usize) -> Vec<(String, ExperimentConfig)> {
    FIG5_TASKS
        .iter()
        .map(|&tasks| {
            (
                format!("{tasks} task"),
                ExperimentConfig::new(tasks, 2, LatencyKind::SimulatedLan)
                    .path_lengths((2..=14).step_by(2))
                    .runs(runs),
            )
        })
        .collect()
}

/// Experiment configs for Figure 6 (wireless, one per supergraph size).
pub fn fig6_configs(runs: usize) -> Vec<(String, ExperimentConfig)> {
    FIG6_TASKS
        .iter()
        .map(|&tasks| {
            (
                format!("{tasks} task"),
                ExperimentConfig::new(tasks, 4, LatencyKind::Wireless)
                    .path_lengths((2..=20).step_by(2))
                    .runs(runs),
            )
        })
        .collect()
}

/// Renders labelled series as a markdown table: rows = path lengths,
/// columns = series, cells = mean milliseconds (blank when the series has
/// no point at that length — the "max path length" cutoffs).
pub fn render_markdown(title: &str, series: &[(String, Vec<SeriesPoint>)]) -> String {
    let mut lengths: Vec<usize> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.path_length))
        .collect();
    lengths.sort_unstable();
    lengths.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let _ = write!(out, "| path length |");
    for (label, _) in series {
        let _ = write!(out, " {label} (ms) |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in series {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for len in lengths {
        let _ = write!(out, "| {len} |");
        for (_, pts) in series {
            match pts.iter().find(|p| p.path_length == len) {
                Some(p) => {
                    let _ = write!(out, " {:.3} |", p.time_ms.mean);
                }
                None => {
                    let _ = write!(out, " |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_scenario::run_series;

    #[test]
    fn configs_cover_the_papers_parameters() {
        let f4 = fig4_configs(1);
        assert_eq!(f4.len(), 6);
        assert!(f4.iter().all(|(_, c)| c.tasks == 100));
        let f5 = fig5_configs(1);
        assert_eq!(f5.len(), 5);
        assert!(f5.iter().all(|(_, c)| c.hosts == 2));
        let f6 = fig6_configs(1);
        assert_eq!(f6.len(), 3);
        assert!(f6.iter().all(|(_, c)| c.hosts == 4));
        assert!(f6.iter().all(|(_, c)| c.latency == LatencyKind::Wireless));
    }

    #[test]
    fn markdown_rendering_handles_missing_points() {
        let cfg_small = ExperimentConfig::new(10, 2, LatencyKind::SimulatedLan)
            .path_lengths([2, 30])
            .runs(2)
            .seed(1);
        let pts = run_series(&cfg_small);
        let md = render_markdown("Test", &[("small".into(), pts)]);
        assert!(md.contains("## Test"));
        assert!(md.contains("| 2 |"));
        assert!(!md.contains("| 30 | "), "length 30 has no data: {md}");
    }
}
