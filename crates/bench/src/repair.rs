//! Repair experiment E6: failure → reconstruction + reallocation.
//!
//! §5.1 names this as future work: "A failure during execution should
//! result in a revised or repaired workflow, which requires
//! reconstruction, reallocation, and compensating execution." The runtime
//! implements the watchdog-based variant: when goals are not delivered in
//! time, the initiator re-runs the whole pipeline under a fresh attempt
//! id; crashed hosts simply never answer, and round timeouts carry
//! construction forward with the surviving knowledge.
//!
//! The experiment: a three-host community where the auction winner crashes
//! right after allocation. Measured: whether the problem still completes,
//! how many attempts it took, and the end-to-end latency (which includes
//! the failure-detection wait).

use openwf_core::{Fragment, Mode, Spec};
use openwf_runtime::{
    Community, CommunityBuilder, HostConfig, ProblemStatus, RuntimeParams, ServiceDescription,
};
use openwf_simnet::{HostId, SimDuration};

/// Outcome of one repair run.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// Did the problem complete after repair?
    pub completed: bool,
    /// Repair attempts consumed (0 = no failure, 1 = one repair …).
    pub attempts: u32,
    /// Spec → all-goals-delivered, in virtual milliseconds.
    pub total_ms: Option<f64>,
    /// Spec → first allocation, in virtual milliseconds (the pre-crash
    /// baseline phase).
    pub first_allocation_ms: Option<f64>,
    /// Which host executed the task in the end.
    pub final_executor: Option<HostId>,
}

/// Builds the three-host repair community:
/// * host0 — initiator, holds the knowhow, offers no service;
/// * host1 — specialist that wins the first auction (and then crashes);
/// * host2 — equally capable backup.
fn community(watchdog: SimDuration) -> Community {
    let fragment = Fragment::single_task(
        "fix",
        "repair generator",
        Mode::Conjunctive,
        ["outage reported"],
        ["power restored"],
    )
    .expect("static fragment is valid");
    let service = || ServiceDescription::new("repair generator", SimDuration::from_secs(1));
    let params = RuntimeParams {
        execution_watchdog: watchdog,
        ..RuntimeParams::default()
    };
    CommunityBuilder::new(0xE6)
        .params(params)
        .host(HostConfig::new().with_fragment(fragment))
        .host(HostConfig::new().with_service(service()))
        .host(HostConfig::new().with_service(service()))
        .build()
}

/// Runs the crash-and-repair scenario once.
pub fn run_repair() -> RepairOutcome {
    let mut c = community(SimDuration::from_secs(5));
    let initiator = c.hosts()[0];
    let spec = Spec::new(["outage reported"], ["power restored"]);
    let handle = c.submit(initiator, spec);

    // Phase 1: run to allocation; host1 wins (tie broken by host id).
    let report = c.run_until_allocated(handle);
    let first_allocation_ms = report
        .timings
        .spec_to_allocated()
        .map(|d| d.as_millis_f64());
    let winner = report.assignments.first().map(|(_, h)| *h);
    assert_eq!(winner, Some(HostId(1)), "specialist tie-break");

    // Phase 2: the winner's device dies before it can execute.
    c.net_mut().faults_mut().crash(HostId(1));
    let report = c.run_until_complete(handle);

    RepairOutcome {
        completed: matches!(report.status, ProblemStatus::Completed),
        attempts: report.repair_attempts,
        total_ms: report.timings.total().map(|d| d.as_millis_f64()),
        first_allocation_ms,
        final_executor: report.assignments.first().map(|(_, h)| *h),
    }
}

/// Runs the no-fault baseline (same community, nobody crashes).
pub fn run_baseline() -> RepairOutcome {
    let mut c = community(SimDuration::from_secs(5));
    let initiator = c.hosts()[0];
    let spec = Spec::new(["outage reported"], ["power restored"]);
    let handle = c.submit(initiator, spec);
    let report = c.run_until_complete(handle);
    RepairOutcome {
        completed: matches!(report.status, ProblemStatus::Completed),
        attempts: report.repair_attempts,
        total_ms: report.timings.total().map(|d| d.as_millis_f64()),
        first_allocation_ms: report
            .timings
            .spec_to_allocated()
            .map(|d| d.as_millis_f64()),
        final_executor: report.assignments.first().map(|(_, h)| *h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_completes_without_repair() {
        let o = run_baseline();
        assert!(o.completed);
        assert_eq!(o.attempts, 0);
        assert_eq!(o.final_executor, Some(HostId(1)));
    }

    #[test]
    fn crash_triggers_repair_and_backup_executes() {
        let o = run_repair();
        assert!(o.completed, "repair must recover: {o:?}");
        assert_eq!(o.attempts, 1);
        assert_eq!(o.final_executor, Some(HostId(2)), "backup takes over");
        // The repaired run pays the watchdog wait: total must exceed the
        // baseline by at least the watchdog period.
        let base = run_baseline();
        assert!(o.total_ms.unwrap() > base.total_ms.unwrap() + 4_000.0);
    }
}
