//! Durable-store restart benchmark: cold replay vs snapshot + tail.
//!
//! Measures what a restarting host actually pays to get its knowhow
//! database back, at 1k/10k/100k **live** fragments under 0%/50%/90%
//! supersede churn:
//!
//! * **cold_replay** — reopening a log holding the full insert history
//!   (no snapshot): O(insert history) decode work, the PR 4 baseline.
//!   At churn `c` the history is `live / (1 − c)` records, so 90% churn
//!   replays 10× the live set.
//! * **snapshot_restart** — reopening after the store compacted at ~95%
//!   of the same history: the newest snapshot loads the live set and
//!   only the remaining ~5% tail of records replays — O(live + tail).
//!
//! Both stores index the **same** live fragments; the measured gap is
//! purely the superseded history the snapshot made irrelevant. Results
//! are emitted as `BENCH_durable_restart.json` at the workspace root
//! (same trajectory-file pattern as `BENCH_wire_codec.json`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use openwf_core::Fragment;
use openwf_wire::DurableFragmentStore;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::scale::percentile;

/// Live-set sizes of the restart suite.
pub const RESTART_SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// Supersede-churn levels: the fraction of insert history that is
/// superseded by the time the host restarts.
pub const CHURN_PERCENTS: &[u8] = &[0, 50, 90];

/// How far through the insert history the snapshot fires (percent) in
/// the `snapshot_restart` scenario — the remaining records are the tail
/// the restart still replays.
pub const SNAPSHOT_AT_PERCENT: usize = 95;

/// One insert schedule: `live` distinct fragment ids whose history is
/// stretched to `records` inserts by supersedes, shuffled so churn is
/// spread across the whole log like a long-lived community's would be.
pub struct ChurnSchedule {
    /// Distinct (live) fragment ids.
    pub live: usize,
    /// Supersede share of the history, in percent.
    pub churn_percent: u8,
    /// The full insert sequence (`live / (1 − churn)` records).
    pub inserts: Vec<Arc<Fragment>>,
}

fn churn_fragment(id: usize, version: u32) -> Arc<Fragment> {
    Arc::new(
        Fragment::single_task(
            format!("ch-f{id}"),
            format!("ch-t{id}-v{version}"),
            openwf_core::Mode::Disjunctive,
            [format!("ch-a{id}"), format!("ch-b{id}-v{version}")],
            [format!("ch-c{id}")],
        )
        .expect("valid bench fragment"),
    )
}

/// Generates a churned insert schedule: `live` fresh inserts plus
/// enough supersedes (same id, bumped content version) to make
/// superseded records `churn_percent` of the history, shuffled
/// deterministically from `seed`.
///
/// # Panics
///
/// Panics if `churn_percent >= 100` (the history would be unbounded).
pub fn churn_schedule(live: usize, churn_percent: u8, seed: u64) -> ChurnSchedule {
    assert!(churn_percent < 100, "churn must leave a live remainder");
    let history = live * 100 / (100 - usize::from(churn_percent));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6f77_665f_7265_7374);
    // One op per record: which id this insert touches. Fresh inserts
    // carry version 0; each later touch of an id bumps its version, so
    // every record has distinct content and the last write wins.
    let mut ops: Vec<usize> = (0..live).collect();
    for _ in live..history {
        ops.push(rng.random_range(0..live));
    }
    ops.shuffle(&mut rng);
    let mut versions = vec![0u32; live];
    let inserts = ops
        .into_iter()
        .map(|id| {
            let v = versions[id];
            versions[id] += 1;
            churn_fragment(id, v)
        })
        .collect();
    ChurnSchedule {
        live,
        churn_percent,
        inserts,
    }
}

/// One measured cell of the restart suite.
#[derive(Clone, Debug)]
pub struct RestartMeasurement {
    /// Operation name (`cold_replay`, `snapshot_restart`).
    pub op: &'static str,
    /// Live fragments after all supersedes.
    pub fragments: usize,
    /// Supersede share of the insert history, in percent.
    pub churn_percent: u8,
    /// Insert-history length the scenario carries.
    pub records: u64,
    /// On-disk bytes the reopened store accounts (log + snapshot).
    pub bytes: u64,
    /// Timed passes.
    pub samples: usize,
    /// Mean wall-clock nanoseconds per reopen.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile nanoseconds.
    pub p95_ns: f64,
    /// Fastest pass.
    pub min_ns: f64,
    /// Live fragments restored per second (mean).
    pub frags_per_sec: f64,
}

fn cell(
    op: &'static str,
    schedule: &ChurnSchedule,
    bytes: u64,
    times_ns: Vec<f64>,
) -> RestartMeasurement {
    let mean_ns = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
    RestartMeasurement {
        op,
        fragments: schedule.live,
        churn_percent: schedule.churn_percent,
        records: schedule.inserts.len() as u64,
        bytes,
        samples: times_ns.len(),
        mean_ns,
        p50_ns: percentile(&times_ns, 50.0),
        p95_ns: percentile(&times_ns, 95.0),
        min_ns: times_ns[0],
        frags_per_sec: schedule.live as f64 / (mean_ns / 1e9),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("openwf-restartbench-{tag}-{}", std::process::id()))
}

/// Populates `dir` with the schedule; when `compact_at` is set, runs a
/// compaction after that many inserts so the log carries a snapshot
/// plus the remaining tail.
fn populate(
    dir: &PathBuf,
    schedule: &ChurnSchedule,
    segment_bytes: u64,
    compact_at: Option<usize>,
) -> u64 {
    let _ = std::fs::remove_dir_all(dir);
    let mut store =
        DurableFragmentStore::open_with(dir, 1, segment_bytes).expect("open scratch log");
    for (i, f) in schedule.inserts.iter().enumerate() {
        store.insert(Arc::clone(f)).expect("append");
        if compact_at == Some(i + 1) {
            store.compact().expect("compact");
        }
    }
    store.sync().expect("sync");
    assert_eq!(store.len(), schedule.live);
    store.log_bytes() + store.snapshot_bytes()
}

/// Measures one schedule's restart pair: cold full-history replay vs
/// snapshot + tail. Both reopened stores must restore the identical
/// live count; the snapshot store asserts its snapshot was actually
/// used (a snapshot file exists and the tail is the post-compaction
/// remainder). The two scenarios' passes interleave (cold, snapshot,
/// cold, snapshot, …) so clock drift on a shared/throttled runner lands
/// on both sides equally instead of biasing whichever ran last.
///
/// # Panics
///
/// Panics on I/O failure in the scratch directory (harness bugs, not
/// measurement outcomes).
pub fn measure_schedule(
    schedule: &ChurnSchedule,
    segment_bytes: u64,
    samples: usize,
) -> Vec<RestartMeasurement> {
    let tag = format!("{}-{}", schedule.live, schedule.churn_percent);
    let cold_dir = scratch_dir(&format!("cold-{tag}"));
    let cold_bytes = populate(&cold_dir, schedule, segment_bytes, None);
    let snap_dir = scratch_dir(&format!("snap-{tag}"));
    let compact_at = schedule.inserts.len() * SNAPSHOT_AT_PERCENT / 100;
    let snap_bytes = populate(&snap_dir, schedule, segment_bytes, Some(compact_at));

    let mut cold_times = Vec::with_capacity(samples);
    let mut snap_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let store =
            DurableFragmentStore::open_with(&cold_dir, 1, segment_bytes).expect("cold replay");
        cold_times.push(t0.elapsed().as_secs_f64() * 1e9);
        assert_eq!(store.len(), schedule.live);
        std::hint::black_box(&store);
        drop(store);

        let t0 = Instant::now();
        let store =
            DurableFragmentStore::open_with(&snap_dir, 1, segment_bytes).expect("snapshot restart");
        snap_times.push(t0.elapsed().as_secs_f64() * 1e9);
        assert_eq!(store.len(), schedule.live);
        assert!(
            store.snapshot_segment().is_some(),
            "restart must come from a snapshot"
        );
        std::hint::black_box(&store);
    }
    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
    cold_times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    snap_times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));

    vec![
        cell("cold_replay", schedule, cold_bytes, cold_times),
        cell("snapshot_restart", schedule, snap_bytes, snap_times),
    ]
}

/// Runs the full suite over `sizes` × `churns`.
pub fn run(
    sizes: &[usize],
    churns: &[u8],
    samples_for: impl Fn(usize) -> usize,
) -> Vec<RestartMeasurement> {
    let mut results = Vec::new();
    for &live in sizes {
        for &churn in churns {
            let schedule = churn_schedule(live, churn, 0xc0ff_ee00 + live as u64);
            results.extend(measure_schedule(
                &schedule,
                openwf_wire::DEFAULT_SEGMENT_BYTES,
                samples_for(live),
            ));
        }
    }
    results
}

/// Renders the measurements in the committed `BENCH_durable_restart.json`
/// schema (see README § Wire format & durable storage).
pub fn to_json(results: &[RestartMeasurement]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"durable_restart\",\n  \"unit\": \"ns\",\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"fragments\": {}, \"churn_percent\": {}, \
             \"records\": {}, \"bytes\": {}, \"samples\": {}, \"mean_ns\": {:.0}, \
             \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"min_ns\": {:.0}, \
             \"frags_per_sec\": {:.0}}}{comma}\n",
            r.op,
            r.fragments,
            r.churn_percent,
            r.records,
            r.bytes,
            r.samples,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.min_ns,
            r.frags_per_sec,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed location of the restart trajectory file: the workspace
/// root's `BENCH_durable_restart.json`.
pub fn default_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_durable_restart.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_hits_live_and_history_targets() {
        let s = churn_schedule(64, 50, 7);
        assert_eq!(s.live, 64);
        assert_eq!(s.inserts.len(), 128, "50% churn doubles the history");
        let distinct: std::collections::BTreeSet<&str> =
            s.inserts.iter().map(|f| f.id().as_str()).collect();
        assert_eq!(distinct.len(), 64, "every live id appears");
        let zero = churn_schedule(64, 0, 7);
        assert_eq!(zero.inserts.len(), 64, "0% churn has no supersedes");
    }

    #[test]
    fn small_schedule_measures_both_ops() {
        let s = churn_schedule(96, 50, 11);
        let results = measure_schedule(&s, 2048, 2);
        let ops: Vec<&str> = results.iter().map(|r| r.op).collect();
        assert_eq!(ops, ["cold_replay", "snapshot_restart"]);
        assert!(results.iter().all(|r| r.mean_ns > 0.0));
        assert!(results.iter().all(|r| r.records == 192));
        assert!(results.iter().all(|r| r.bytes > 0));
        let json = to_json(&results);
        assert!(json.contains("\"bench\": \"durable_restart\""));
        assert!(json.contains("\"churn_percent\": 50"));
    }
}
