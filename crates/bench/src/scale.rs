//! Wall-clock scaling harness for incremental construction.
//!
//! The paper's construction latency claims (§3.1) are exercised by the
//! virtual-time figures; this module measures the *real* hot path: how
//! long `IncrementalConstructor` takes against synthetic fragment
//! universes of 1k/10k/100k fragments, across a frontier worker-count
//! sweep. Two universe shapes bracket the workload space:
//!
//! * **layered** — `depth × width` grid; each task consumes labels of the
//!   previous layer and produces one label of its own layer. Construction
//!   must walk every layer, so the frontier advances one layer per query
//!   round (deep, narrow frontiers).
//! * **random** — every task consumes a handful of labels produced by
//!   earlier tasks within a sliding window. Shallow, wide frontiers with
//!   irregular fan-in.
//!
//! Universes are stored in a [`ShardedFragmentStore`] (shard count fixed
//! per universe so the database layout is identical across the thread
//! sweep) and timed through `construct_parallel`, which is the
//! single-worker inline fast path at `threads == 1`.
//!
//! Results are emitted as `BENCH_construction_scale.json` at the
//! workspace root (schema documented in the README's Performance
//! section) so the perf trajectory is tracked across PRs.

use std::path::PathBuf;
use std::time::Instant;

use openwf_core::{
    Fragment, IncrementalConstructor, Label, Mode, ShardedFragmentStore, SizeHints, Spec,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fragment-universe sizes of the scaling suite.
pub const SCALE_SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// Width (labels per layer) of the layered universe.
pub const LAYER_WIDTH: usize = 64;

/// Shards per universe store: one per hardware thread, so the database
/// layout matches what the worker pool can actually exploit. On a
/// single-core machine this is one shard — the monolithic fast path —
/// so the committed trajectory never pays a fan-out tax it cannot
/// recoup (multi-shard correctness is covered by unit and property
/// tests regardless).
pub fn universe_shards() -> usize {
    openwf_core::hardware_parallelism()
}

/// The worker counts of the sweep — 1/2/4/max, deduplicated and sorted
/// (on a machine with ≤ 4 hardware threads "max" collapses into the
/// fixed points).
pub fn thread_sweep() -> Vec<usize> {
    let max = openwf_core::hardware_parallelism();
    let mut sweep = vec![1usize, 2, 4, max];
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

/// A synthetic community knowledge base plus a spec that forces the
/// constructor to traverse it.
pub struct ScaleUniverse {
    /// Universe shape name (`layered` / `random`).
    pub name: &'static str,
    /// The community fragment store (sharded; single-worker queries use
    /// the inline fan-out).
    pub store: ShardedFragmentStore,
    /// A satisfiable specification spanning the universe.
    pub spec: Spec,
}

impl std::fmt::Debug for ScaleUniverse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScaleUniverse")
            .field("name", &self.name)
            .field("fragments", &self.store.len())
            .finish()
    }
}

impl ScaleUniverse {
    /// Size hints for pre-sizing construction state over this universe.
    pub fn hints(&self) -> SizeHints {
        SizeHints::for_fragments(self.store.len())
    }
}

/// Builds the layered universe: `ceil(n_fragments / LAYER_WIDTH)` layers
/// of up to [`LAYER_WIDTH`] disjunctive tasks — exactly `n_fragments`
/// fragments, the final layer partial if needed. The task at
/// `(layer, slot)` consumes the previous layer's `slot` and `slot + 1`
/// labels and produces its own `(layer + 1, slot)` label, so every query
/// round advances exactly one layer.
pub fn layered_universe(n_fragments: usize) -> ScaleUniverse {
    let width = LAYER_WIDTH.min(n_fragments);
    let layers = n_fragments.div_ceil(width);
    let label = |layer: usize, slot: usize| format!("L{layer}x{slot}");
    let mut store = ShardedFragmentStore::with_shards(universe_shards());
    let mut made = 0usize;
    for layer in 0..layers {
        for slot in 0..width {
            if made == n_fragments {
                break;
            }
            let f = Fragment::single_task(
                format!("lf{layer}x{slot}"),
                format!("lt{layer}x{slot}"),
                Mode::Disjunctive,
                [label(layer, slot), label(layer, (slot + 1) % width)],
                [label(layer + 1, slot)],
            )
            .expect("layered fragment is valid");
            store.insert(f);
            made += 1;
        }
    }
    let triggers: Vec<Label> = (0..width).map(|s| Label::new(label(0, s))).collect();
    // Slot 0 exists in every layer (partial layers fill from slot 0), so
    // the last layer's slot-0 output is always produced.
    let spec = Spec::new(triggers, [Label::new(label(layers, 0))]);
    ScaleUniverse {
        name: "layered",
        store,
        spec,
    }
}

/// Builds the random universe: task `i` consumes 1–3 labels produced by
/// earlier tasks within a 500-task sliding window and produces `r{i}`.
/// Task 0 consumes the trigger label; the goal is the last task's output,
/// so satisfying the spec requires chaining through the whole index range.
pub fn random_universe(n_fragments: usize, seed: u64) -> ScaleUniverse {
    assert!(n_fragments >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ShardedFragmentStore::with_shards(universe_shards());
    let out = |i: usize| format!("r{i}");
    for i in 0..n_fragments {
        let mut inputs: Vec<String> = Vec::with_capacity(3);
        if i == 0 {
            inputs.push("r-src".to_string());
        } else {
            let lo = i.saturating_sub(500);
            // Backbone edge guaranteeing the goal stays reachable.
            inputs.push(out(i - 1));
            for _ in 0..rng.random_range(0..3usize) {
                inputs.push(out(rng.random_range(lo..i)));
            }
            inputs.sort_unstable();
            inputs.dedup();
        }
        let f = Fragment::single_task(
            format!("rf{i}"),
            format!("rt{i}"),
            Mode::Disjunctive,
            inputs,
            [out(i)],
        )
        .expect("random fragment is valid");
        store.insert(f);
    }
    let spec = Spec::new(["r-src"], [out(n_fragments - 1)]);
    ScaleUniverse {
        name: "random",
        store,
        spec,
    }
}

/// One measured `(universe, size, threads)` cell of the scaling suite.
#[derive(Clone, Debug)]
pub struct ScaleMeasurement {
    /// Universe shape (`layered` / `random`).
    pub universe: String,
    /// Fragments in the universe.
    pub fragments: usize,
    /// Frontier worker threads used by the constructor.
    pub threads: usize,
    /// Timed construction runs.
    pub samples: usize,
    /// Mean wall-clock nanoseconds per construction.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile wall-clock nanoseconds.
    pub p95_ns: f64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Exploration worklist pops of one construction.
    pub explore_steps: u64,
    /// Fragments the incremental frontier actually pulled.
    pub fragments_merged: usize,
}

/// Times `samples` incremental constructions over the universe with the
/// given frontier worker count.
///
/// # Panics
///
/// Panics if the universe's spec is not satisfiable (a harness bug).
pub fn measure(universe: &ScaleUniverse, threads: usize, samples: usize) -> ScaleMeasurement {
    let constructor = IncrementalConstructor::new()
        .workers(threads)
        .pre_size(universe.hints());
    // Warm-up + stats run (not timed).
    let (c, sg) = constructor
        .construct_parallel(&universe.store, &universe.spec)
        .expect("scale universes are satisfiable");
    assert!(universe.spec.accepts(c.workflow()));
    let explore_steps = c.stats().explore_steps;
    let fragments_merged = sg.fragment_count();

    let mut times_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        let built = constructor
            .construct_parallel(&universe.store, &universe.spec)
            .expect("scale universes are satisfiable");
        times_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        std::hint::black_box(built);
    }
    times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));

    ScaleMeasurement {
        universe: universe.name.to_string(),
        fragments: universe.store.len(),
        threads,
        samples,
        mean_ns: times_ns.iter().sum::<f64>() / times_ns.len() as f64,
        p50_ns: percentile(&times_ns, 50.0),
        p95_ns: percentile(&times_ns, 95.0),
        min_ns: times_ns[0],
        explore_steps,
        fragments_merged,
    }
}

/// Nearest-rank percentile over ascending-sorted samples (shared with
/// the wire-codec harness so the committed trajectory files stay
/// statistically comparable).
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Renders the measurements in the committed `BENCH_construction_scale.json`
/// schema (see README § Performance).
pub fn to_json(results: &[ScaleMeasurement]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"construction_scale\",\n  \"unit\": \"ns\",\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"universe\": \"{}\", \"fragments\": {}, \"threads\": {}, \"samples\": {}, \
             \"mean_ns\": {:.0}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"min_ns\": {:.0}, \
             \"explore_steps\": {}, \"fragments_merged\": {}}}{comma}\n",
            r.universe,
            r.fragments,
            r.threads,
            r.samples,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.min_ns,
            r.explore_steps,
            r.fragments_merged,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed location of the scaling trajectory file: the workspace
/// root's `BENCH_construction_scale.json`.
pub fn default_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_construction_scale.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_universe_is_satisfiable() {
        let u = layered_universe(256);
        assert_eq!(u.store.len(), 256);
        let (c, _) = IncrementalConstructor::new()
            .construct_parallel(&u.store, &u.spec)
            .unwrap();
        assert!(u.spec.accepts(c.workflow()));
    }

    #[test]
    fn layered_universe_hits_exact_sizes_with_partial_layers() {
        // 100 is not a multiple of LAYER_WIDTH: the last layer is partial
        // but the universe still holds exactly 100 fragments and the goal
        // stays reachable through the partial layer's slot 0.
        for n in [100usize, 1000, 65] {
            let u = layered_universe(n);
            assert_eq!(u.store.len(), n, "exact size for n={n}");
            let (c, _) = IncrementalConstructor::new()
                .construct_parallel(&u.store, &u.spec)
                .unwrap();
            assert!(u.spec.accepts(c.workflow()), "satisfiable for n={n}");
        }
    }

    #[test]
    fn random_universe_is_satisfiable() {
        let u = random_universe(300, 42);
        assert_eq!(u.store.len(), 300);
        let (c, _) = IncrementalConstructor::new()
            .construct_parallel(&u.store, &u.spec)
            .unwrap();
        assert!(u.spec.accepts(c.workflow()));
    }

    #[test]
    fn measure_produces_ordered_percentiles() {
        let u = layered_universe(128);
        let m = measure(&u, 1, 5);
        assert_eq!(m.samples, 5);
        assert_eq!(m.threads, 1);
        assert!(m.min_ns <= m.p50_ns);
        assert!(m.p50_ns <= m.p95_ns);
        assert!(m.mean_ns > 0.0);
        assert!(m.fragments_merged > 0);
    }

    #[test]
    fn measure_is_thread_count_invariant() {
        // The constructed workflow (and thus explore_steps and fragments
        // pulled) must not depend on the worker count.
        let u = layered_universe(192);
        let m1 = measure(&u, 1, 1);
        let m2 = measure(&u, 2, 1);
        assert_eq!(m1.explore_steps, m2.explore_steps);
        assert_eq!(m1.fragments_merged, m2.fragments_merged);
    }

    #[test]
    fn thread_sweep_is_sorted_and_deduplicated() {
        let sweep = thread_sweep();
        assert!(sweep.contains(&1));
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn json_schema_is_stable() {
        let m = ScaleMeasurement {
            universe: "layered".into(),
            fragments: 1000,
            threads: 4,
            samples: 3,
            mean_ns: 1.0,
            p50_ns: 1.0,
            p95_ns: 2.0,
            min_ns: 0.5,
            explore_steps: 7,
            fragments_merged: 9,
        };
        let j = to_json(&[m]);
        assert!(j.contains("\"bench\": \"construction_scale\""));
        assert!(j.contains("\"fragments\": 1000"));
        assert!(j.contains("\"threads\": 4"));
        assert!(j.contains("\"p95_ns\": 2"));
        assert!(!j.contains(",\n  ]"), "no trailing comma: {j}");
    }
}
