//! Chaos soak suite: every named fault profile at city scales, with the
//! invariant verdicts rendered into the committed trajectory file.
//!
//! A cell of this suite is one [`run_soak`] call: a profile (lossy
//! links, healing partitions, crash churn, vocabulary flooding,
//! duplicate delivery) over `districts` independent ~10-host
//! communities sharing one deterministic simulator. The suite sweeps
//! all profiles over [`SOAK_SCALES`] — hundreds to a thousand-plus
//! simulated hosts — and emits `BENCH_soak.json` at the workspace root
//! (same trajectory-file pattern as `BENCH_durable_restart.json`).
//! Every cell carries its `pass` verdict and the exact seed, so any red
//! cell reproduces with a one-line rerun.

use std::path::PathBuf;

use openwf_scenario::{run_soak, ChaosProfile, SoakConfig, SoakOutcome};

/// District counts of the soak suite. At ~10 hosts per district these
/// are ~200- and ~1000-host cities.
pub const SOAK_SCALES: &[usize] = &[20, 100];

/// Default master seed when `OPENWF_SOAK_SEED` is unset.
pub const DEFAULT_SOAK_SEED: u64 = 0x50AC_C17E;

/// Runs every profile at every scale. One seed drives the whole sweep;
/// each cell derives its own stream from (seed, profile, scale), so
/// cells reproduce independently.
pub fn run(scales: &[usize], seed: u64) -> Vec<SoakOutcome> {
    let mut results = Vec::new();
    for &districts in scales {
        for profile in ChaosProfile::all() {
            let config = SoakConfig::new(
                profile,
                districts,
                seed ^ (districts as u64) << 8 ^ profile.name().len() as u64,
            );
            results.push(run_soak(&config));
        }
    }
    results
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("[{}]", quoted.join(", "))
}

/// Renders the outcomes in the committed `BENCH_soak.json` schema (see
/// README § Chaos & soak).
pub fn to_json(results: &[SoakOutcome]) -> String {
    let mut out = String::from("{\n  \"bench\": \"chaos_soak\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"profile\": \"{}\", \"districts\": {}, \"hosts\": {}, \
             \"seed\": {}, \"problems\": {}, \"completed\": {}, \"failed\": {}, \
             \"stuck\": {}, \"validated\": {}, \"quarantined\": {}, \
             \"restarts\": {}, \"restart_matches\": {}, \"delivered\": {}, \
             \"dropped\": {}, \"duplicated\": {}, \"decode_cache_hits\": {}, \
             \"decode_cache_misses\": {}, \"cache_hit_rate_percent\": {:.2}, \
             \"message_budget\": {}, \"end_virtual_ms\": {}, \"pass\": {}, \
             \"violations\": {}}}{comma}\n",
            r.profile,
            r.districts,
            r.hosts,
            r.seed,
            r.problems,
            r.completed,
            r.failed,
            r.stuck,
            r.validated,
            r.quarantined,
            r.restarts,
            r.restart_matches,
            r.delivered,
            r.dropped,
            r.duplicated,
            r.decode_cache_hits,
            r.decode_cache_misses,
            r.cache_hit_rate_percent(),
            r.message_budget,
            r.end_virtual_ms,
            r.invariants_hold(),
            json_str_list(&r.violations),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed location of the soak trajectory file: the workspace
/// root's `BENCH_soak.json`.
pub fn default_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_soak.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_covers_every_profile_and_renders_json() {
        let results = run(&[2], 0xFEED);
        assert_eq!(results.len(), ChaosProfile::all().len());
        for r in &results {
            assert!(r.invariants_hold(), "{r}");
        }
        let json = to_json(&results);
        assert!(json.contains("\"bench\": \"chaos_soak\""));
        assert!(json.contains("\"profile\": \"lossy-urban\""));
        assert!(json.contains("\"pass\": true"));
        assert!(!json.contains("\"pass\": false"));
        assert!(json.contains("\"decode_cache_hits\""));
        assert!(json.contains("\"cache_hit_rate_percent\""));
    }

    #[test]
    fn violations_render_as_escaped_strings() {
        assert_eq!(json_str_list(&["a \"b\"".to_string()]), r#"["a \"b\""]"#);
    }
}
