//! Socket transport benchmarks: raw frame-ingest throughput through a
//! live [`NetServer`] and end-to-end workflow-construction latency over
//! real localhost TCP.
//!
//! Two measurements, rendered into the committed trajectory file
//! `BENCH_socket.json` (same pattern as `BENCH_soak.json`):
//!
//! * **ingest** — a client socket blasts a pre-encoded batch of
//!   envelope frames at one server; the measured path is kernel TCP →
//!   reader thread → streaming [`openwf_wire::FrameDecoder`] → envelope
//!   parse → fragment decode → store. Reported as frames/sec and
//!   MiB/sec.
//! * **e2e** — a two-host [`TcpCommunityDriver`] community constructs
//!   the same workflow repeatedly; each construction's wall-clock
//!   submit→complete latency is recorded and summarized (p50/p95/max).
//!   Timer-driven protocol phases dominate this number, so it measures
//!   the serving tier's *responsiveness floor*, not raw socket speed.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use openwf_core::{Fragment, Mode, Spec};
use openwf_net::proto::{encode_envelope, encode_hello, Hello, NET_PROTO_VERSION};
use openwf_net::{NetServer, ServerConfig, TcpCommunityDriver, WallClock};
use openwf_obs::Obs;
use openwf_runtime::{Driver, HostConfig, ProblemStatus, RuntimeParams, ServiceDescription};
use openwf_simnet::{HostId, SimDuration};

/// One ingest run's raw numbers.
pub struct IngestOutcome {
    /// Frames the server decoded (the envelope batch plus one hello).
    pub frames: u64,
    /// Bytes that crossed the socket.
    pub bytes: u64,
    /// Wall-clock time from first write to last frame decoded.
    pub elapsed: Duration,
}

impl IngestOutcome {
    /// Decoded frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        self.frames as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Socket throughput in MiB per second.
    pub fn mib_per_sec(&self) -> f64 {
        (self.bytes as f64 / (1024.0 * 1024.0)) / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Blasts `frames` envelope frames (each carrying one encoded fragment)
/// at a single-core server over a real socket and measures the decode
/// pipeline draining them.
pub fn run_ingest(frames: u64) -> IngestOutcome {
    let obs = Obs::enabled();
    let mut server = NetServer::new(ServerConfig {
        name: "ingest-bench".into(),
        obs: obs.clone(),
        clock: WallClock::new(),
        ..ServerConfig::default()
    })
    .expect("bind");
    server.add_core(0, HostId(0), HostConfig::new(), RuntimeParams::default());
    let addr = server.listen_addr().expect("listening");

    // Pre-encode the whole batch so the measured loop is transport +
    // decode, not encode. The repeated fragment dedupes in the store,
    // keeping memory flat while every frame still pays full decode.
    let fragment =
        Fragment::single_task("skb-f1", "skb-t1", Mode::Disjunctive, ["skb-a"], ["skb-b"])
            .expect("valid fragment");
    let mut inner = Vec::new();
    openwf_wire::encode_fragment(&fragment, &mut inner);
    let mut batch = Vec::new();
    encode_hello(
        &Hello {
            proto: NET_PROTO_VERSION,
            name: "blaster".into(),
            listen: String::new(),
            hosts: vec![(0, HostId(7))],
        },
        &mut batch,
    );
    let mut envelope = Vec::new();
    encode_envelope(0, HostId(7), HostId(0), None, &inner, &mut envelope);
    for _ in 0..frames {
        batch.extend_from_slice(&envelope);
    }
    let bytes = batch.len() as u64;

    let started = Instant::now();
    let writer = std::thread::spawn(move || {
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(&batch).expect("blast");
        client.flush().expect("flush");
        client // keep the socket open until the server drained it
    });
    let rx_frames = obs.metrics.counter("net.rx_frames");
    let total = frames + 1; // the hello counts too
    while rx_frames.get() < total {
        server.poll(Duration::from_millis(2));
    }
    let elapsed = started.elapsed();
    drop(writer.join().expect("writer thread"));
    server.shutdown();
    IngestOutcome {
        frames: total,
        bytes,
        elapsed,
    }
}

/// One end-to-end run's per-workflow latencies.
pub struct E2eOutcome {
    /// Submit→complete wall-clock latency of each workflow, in order.
    pub latencies: Vec<Duration>,
}

impl E2eOutcome {
    fn sorted_ms(&self) -> Vec<f64> {
        let mut ms: Vec<f64> = self
            .latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1000.0)
            .collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ms
    }

    /// The `q`-quantile (0..=1) of the latencies, in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let ms = self.sorted_ms();
        let idx = ((ms.len() as f64 - 1.0) * q).round() as usize;
        ms[idx]
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        let ms = self.sorted_ms();
        ms.iter().sum::<f64>() / ms.len() as f64
    }
}

/// Constructs the same two-host workflow `workflows` times over real
/// TCP and records each submit→complete latency.
pub fn run_e2e(workflows: usize) -> E2eOutcome {
    let params = RuntimeParams {
        round_timeout: SimDuration::from_millis(150),
        bid_patience: SimDuration::from_millis(30),
        auction_timeout: SimDuration::from_millis(400),
        execution_watchdog: SimDuration::from_secs(10),
        ..RuntimeParams::default()
    };
    let mut tcp = TcpCommunityDriver::build(
        params,
        vec![
            HostConfig::new()
                .with_fragment(
                    Fragment::single_task(
                        "ske-f1",
                        "ske-t1",
                        Mode::Disjunctive,
                        ["ske-a"],
                        ["ske-b"],
                    )
                    .expect("valid"),
                )
                .with_service(ServiceDescription::new(
                    "ske-t2",
                    SimDuration::from_millis(5),
                )),
            HostConfig::new()
                .with_fragment(
                    Fragment::single_task(
                        "ske-f2",
                        "ske-t2",
                        Mode::Disjunctive,
                        ["ske-b"],
                        ["ske-c"],
                    )
                    .expect("valid"),
                )
                .with_service(ServiceDescription::new(
                    "ske-t1",
                    SimDuration::from_millis(5),
                )),
        ],
    )
    .expect("bind");
    let initiator = tcp.hosts()[0];
    let mut latencies = Vec::with_capacity(workflows);
    for _ in 0..workflows {
        let started = Instant::now();
        let handle = tcp.submit(initiator, Spec::new(["ske-a"], ["ske-c"]));
        let report = tcp.run_until_complete(handle);
        assert!(
            matches!(report.status, ProblemStatus::Completed),
            "bench workflow must complete: {report}"
        );
        latencies.push(started.elapsed());
    }
    tcp.shutdown();
    E2eOutcome { latencies }
}

/// Renders both outcomes in the committed `BENCH_socket.json` schema.
pub fn to_json(ingest: &IngestOutcome, e2e: &E2eOutcome) -> String {
    format!(
        "{{\n  \"bench\": \"socket\",\n  \"ingest\": {{\"frames\": {}, \"bytes\": {}, \
         \"elapsed_ms\": {:.2}, \"frames_per_sec\": {:.0}, \"mib_per_sec\": {:.2}}},\n  \
         \"e2e\": {{\"workflows\": {}, \"hosts\": 2, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \
         \"max_ms\": {:.2}, \"mean_ms\": {:.2}}}\n}}\n",
        ingest.frames,
        ingest.bytes,
        ingest.elapsed.as_secs_f64() * 1000.0,
        ingest.frames_per_sec(),
        ingest.mib_per_sec(),
        e2e.latencies.len(),
        e2e.quantile_ms(0.50),
        e2e.quantile_ms(0.95),
        e2e.quantile_ms(1.0),
        e2e.mean_ms(),
    )
}

/// `<workspace root>/BENCH_socket.json`.
pub fn default_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_socket.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_json_render() {
        let e2e = E2eOutcome {
            latencies: vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(30),
            ],
        };
        assert_eq!(e2e.quantile_ms(0.5), 20.0);
        assert_eq!(e2e.quantile_ms(1.0), 30.0);
        let ingest = IngestOutcome {
            frames: 100,
            bytes: 5000,
            elapsed: Duration::from_millis(50),
        };
        assert!(ingest.frames_per_sec() > 1900.0);
        let json = to_json(&ingest, &e2e);
        assert!(json.contains("\"frames_per_sec\": 2000"));
        assert!(json.contains("\"p95_ms\": 30.00"));
    }
}
