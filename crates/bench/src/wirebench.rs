//! Wire codec and storage-backend benchmark harness.
//!
//! Measures the `openwf-wire` hot paths over the layered scale universes
//! (see [`crate::scale`]) at 1k/10k/100k fragments:
//!
//! * **encode** / **decode** — fragment-frame throughput (the cost of
//!   shipping a knowhow database across the wire, and of replaying a
//!   durable log);
//! * **construct_memory** vs **construct_durable** — incremental
//!   construction over the in-memory backend and over a durable store's
//!   replayed index (identical answers, measured side by side so the
//!   "durability tax" on the query path stays visibly zero);
//! * **durable_populate** / **durable_replay** — appending the universe
//!   to a fresh segment log, and reopening it from disk.
//!
//! Results are emitted as `BENCH_wire_codec.json` at the workspace root
//! (same trajectory-file pattern as `BENCH_construction_scale.json`).

use std::path::PathBuf;
use std::time::Instant;

use openwf_core::IncrementalConstructor;
use openwf_wire::{
    decode_fragment_with, encode_fragment, DecodeScratch, DurableFragmentStore, VocabularyBudget,
};

use crate::scale::{layered_universe, ScaleUniverse};

/// Universe sizes of the codec suite (shared with the scale bench).
pub const WIRE_SIZES: &[usize] = &[1_000, 10_000, 100_000];

/// One measured cell of the codec/storage suite.
#[derive(Clone, Debug)]
pub struct WireMeasurement {
    /// Operation name (`encode`, `decode`, `decode_cached`,
    /// `construct_memory`, `construct_durable`, `durable_populate`,
    /// `durable_replay`).
    pub op: &'static str,
    /// Fragments in the universe.
    pub fragments: usize,
    /// Bytes processed per pass (encoded stream / log size; 0 when the
    /// operation is not byte-oriented).
    pub bytes: u64,
    /// Timed passes.
    pub samples: usize,
    /// Mean wall-clock nanoseconds per pass.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile nanoseconds.
    pub p95_ns: f64,
    /// Fastest pass.
    pub min_ns: f64,
    /// Mean throughput in MiB/s (0 when `bytes` is 0 — such rows are
    /// reported as `frags_per_sec` only in the JSON).
    pub mibps: f64,
    /// Mean throughput in fragments/second — meaningful for every op,
    /// including the non-byte-oriented construction rows.
    pub frags_per_sec: f64,
}

use crate::scale::percentile;

fn measure_ns(samples: usize, mut pass: impl FnMut()) -> Vec<f64> {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        pass();
        times.push(t0.elapsed().as_secs_f64() * 1e9);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times
}

fn cell(op: &'static str, fragments: usize, bytes: u64, times_ns: Vec<f64>) -> WireMeasurement {
    let mean_ns = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
    let mibps = if bytes == 0 {
        0.0
    } else {
        (bytes as f64 / (1024.0 * 1024.0)) / (mean_ns / 1e9)
    };
    WireMeasurement {
        op,
        fragments,
        bytes,
        samples: times_ns.len(),
        mean_ns,
        p50_ns: percentile(&times_ns, 50.0),
        p95_ns: percentile(&times_ns, 95.0),
        min_ns: times_ns[0],
        mibps,
        frags_per_sec: fragments as f64 / (mean_ns / 1e9),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("openwf-wirebench-{tag}-{}", std::process::id()))
}

/// Encodes every fragment of the universe into one buffer.
fn encode_universe(universe: &ScaleUniverse, out: &mut Vec<u8>) {
    out.clear();
    for f in universe.store.fragments_shared() {
        encode_fragment(f, out);
    }
}

/// Runs the codec + storage suite over one universe with `samples`
/// timed passes per operation.
///
/// # Panics
///
/// Panics on I/O failure in the scratch directory or if a universe is
/// unsatisfiable (harness bugs, not measurement outcomes).
pub fn measure_universe(universe: &ScaleUniverse, samples: usize) -> Vec<WireMeasurement> {
    let n = universe.store.len();
    let mut results = Vec::new();

    // Encode throughput.
    let mut stream = Vec::new();
    encode_universe(universe, &mut stream); // warm-up + size probe
    let bytes = stream.len() as u64;
    let times = measure_ns(samples, || {
        encode_universe(universe, &mut stream);
        std::hint::black_box(stream.len());
    });
    results.push(cell("encode", n, bytes, times));

    // Decode throughput (unlimited budget: the trusted-community path),
    // via the zero-copy scratch decoder. Cold: a fresh scratch per pass
    // with the identity cache disabled, so every frame pays the full
    // rebuild — the number comparable to `encode`.
    let decode_all = |stream: &[u8], scratch: &mut DecodeScratch| {
        let mut pos = 0;
        let mut budget = VocabularyBudget::unlimited();
        let mut count = 0usize;
        while pos < stream.len() {
            let (f, used) =
                decode_fragment_with(&stream[pos..], &mut budget, scratch).expect("valid stream");
            std::hint::black_box(f);
            pos += used;
            count += 1;
        }
        count
    };
    assert_eq!(
        decode_all(&stream, &mut DecodeScratch::with_cache_capacity(0)),
        n
    );
    let times = measure_ns(samples, || {
        let mut scratch = DecodeScratch::with_cache_capacity(0);
        std::hint::black_box(decode_all(&stream, &mut scratch));
    });
    results.push(cell("decode", n, bytes, times));

    // Identity-cache hit path: one warm per-connection scratch whose
    // cache holds the whole universe — the steady state of a host
    // receiving re-announced knowhow.
    let mut warm = DecodeScratch::with_cache_capacity(n.max(1) * 2);
    assert_eq!(decode_all(&stream, &mut warm), n); // fill the cache
    let times = measure_ns(samples, || {
        std::hint::black_box(decode_all(&stream, &mut warm));
    });
    results.push(cell("decode_cached", n, bytes, times));

    // Construction: in-memory backend.
    let constructor = IncrementalConstructor::new().pre_size(universe.hints());
    let times = measure_ns(samples, || {
        let built = constructor
            .construct_parallel(&universe.store, &universe.spec)
            .expect("satisfiable");
        std::hint::black_box(built);
    });
    results.push(cell("construct_memory", n, 0, times));

    // Durable backend: populate, replay, construct.
    let dir = scratch_dir(&format!("{}-{n}", universe.name));
    let _ = std::fs::remove_dir_all(&dir);
    let shards = universe.store.shard_count();
    let mut log_bytes = 0u64;
    let times = measure_ns(samples, || {
        let _ = std::fs::remove_dir_all(&dir);
        let mut durable =
            DurableFragmentStore::open_with(&dir, shards, u64::MAX).expect("open scratch log");
        for f in universe.store.fragments_shared() {
            durable.insert(std::sync::Arc::clone(f)).expect("append");
        }
        durable.sync().expect("sync");
        log_bytes = durable.log_bytes();
    });
    results.push(cell("durable_populate", n, log_bytes, times));

    let times = measure_ns(samples, || {
        let durable =
            DurableFragmentStore::open_with(&dir, shards, u64::MAX).expect("replay scratch log");
        assert_eq!(durable.len(), n);
        std::hint::black_box(&durable);
    });
    results.push(cell("durable_replay", n, log_bytes, times));

    let durable =
        DurableFragmentStore::open_with(&dir, shards, u64::MAX).expect("replay scratch log");
    let times = measure_ns(samples, || {
        let built = constructor
            .construct_parallel(&durable, &universe.spec)
            .expect("satisfiable");
        std::hint::black_box(built);
    });
    results.push(cell("construct_durable", n, 0, times));
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);

    results
}

/// Runs the full suite over the layered universes at `sizes`.
pub fn run(sizes: &[usize], samples_for: impl Fn(usize) -> usize) -> Vec<WireMeasurement> {
    let mut results = Vec::new();
    for &n in sizes {
        let universe = layered_universe(n);
        results.extend(measure_universe(&universe, samples_for(n)));
    }
    results
}

/// Renders the measurements in the committed `BENCH_wire_codec.json`
/// schema (see README § Wire format & durable storage).
pub fn to_json(results: &[WireMeasurement]) -> String {
    let mut out =
        String::from("{\n  \"bench\": \"wire_codec\",\n  \"unit\": \"ns\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        // `mibps` is only meaningful for byte-oriented ops; rows with
        // `bytes: 0` report `frags_per_sec` alone instead of a bogus 0.0.
        let mibps = if r.bytes == 0 {
            String::new()
        } else {
            format!("\"mibps\": {:.1}, ", r.mibps)
        };
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"fragments\": {}, \"bytes\": {}, \"samples\": {}, \
             \"mean_ns\": {:.0}, \"p50_ns\": {:.0}, \"p95_ns\": {:.0}, \"min_ns\": {:.0}, \
             {mibps}\"frags_per_sec\": {:.0}}}{comma}\n",
            r.op,
            r.fragments,
            r.bytes,
            r.samples,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.min_ns,
            r.frags_per_sec,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The committed location of the codec trajectory file: the workspace
/// root's `BENCH_wire_codec.json`.
pub fn default_report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_wire_codec.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_universe_measures_every_op() {
        let u = layered_universe(128);
        let results = measure_universe(&u, 2);
        let ops: Vec<&str> = results.iter().map(|r| r.op).collect();
        assert_eq!(
            ops,
            [
                "encode",
                "decode",
                "decode_cached",
                "construct_memory",
                "durable_populate",
                "durable_replay",
                "construct_durable"
            ]
        );
        assert!(results.iter().all(|r| r.mean_ns > 0.0));
        assert!(results.iter().all(|r| r.frags_per_sec > 0.0));
        assert!(results[0].bytes > 0, "encode reports stream size");
        let json = to_json(&results);
        assert!(json.contains("\"bench\": \"wire_codec\""));
        assert!(json.contains("construct_durable"));
        assert!(json.contains("\"frags_per_sec\""));
        // Non-byte rows must not carry a meaningless 0.0 MiB/s figure.
        for line in json.lines().filter(|l| l.contains("\"bytes\": 0,")) {
            assert!(!line.contains("\"mibps\""), "bytes:0 row has mibps: {line}");
        }
    }
}
