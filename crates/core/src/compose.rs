//! Workflow composition.
//!
//! §2.2: "This definition allows us to compose two workflows by merging
//! (a) identical sinks from one workflow with the corresponding sources from
//! the other workflow and (b) identical sources in both workflows. Two
//! workflows are composable if and only if matching sinks and sources yields
//! a valid workflow."
//!
//! Because nodes are identified semantically, composition is simply graph
//! union followed by validation: equal labels/tasks collapse into one node,
//! which realizes exactly the sink/source merging described in the paper,
//! and the validity check rejects unions that would give a label two
//! producers or create a cycle.

use crate::error::ComposeError;
use crate::graph::Graph;
use crate::workflow::Workflow;

/// Composes two workflows by semantic-identity union.
///
/// The paper's example: `W1` with sources `{a, b, c}` and sinks `{d, e, f}`
/// composed with `W2` with sources `{c, d, e}` and sinks `{g, h}` yields a
/// workflow with sources `{a, b, c}` and sinks `{f, g, h}`.
///
/// # Errors
///
/// Returns [`ComposeError::NotComposable`] when the union violates a
/// workflow constraint (most commonly: both operands produce the same label,
/// or the union creates a cycle), and
/// [`ComposeError::ConflictingTaskMode`] when a task appears in both with
/// different modes.
pub fn compose(left: &Workflow, right: &Workflow) -> Result<Workflow, ComposeError> {
    let mut g: Graph = left.graph().clone();
    g.merge_from(right.graph()).map_err(|e| match e {
        crate::error::ModelError::ConflictingTaskMode {
            task,
            existing,
            requested,
        } => ComposeError::ConflictingTaskMode {
            task,
            existing,
            requested,
        },
        // merge_from only returns mode conflicts; anything else is a bug.
        other => unreachable!("unexpected merge error: {other}"),
    })?;
    Workflow::from_graph(g).map_err(ComposeError::NotComposable)
}

/// Composes any number of workflows left-to-right.
///
/// The empty iterator yields [`Workflow::empty`]. Composition by semantic
/// union is associative and commutative (when defined), so the order only
/// affects internal node numbering, never the result's shape.
///
/// # Errors
///
/// Returns the first composition failure encountered.
pub fn compose_all<'a, I>(workflows: I) -> Result<Workflow, ComposeError>
where
    I: IntoIterator<Item = &'a Workflow>,
{
    let mut g = Graph::new();
    for w in workflows {
        g.merge_from(w.graph()).map_err(|e| match e {
            crate::error::ModelError::ConflictingTaskMode {
                task,
                existing,
                requested,
            } => ComposeError::ConflictingTaskMode {
                task,
                existing,
                requested,
            },
            other => unreachable!("unexpected merge error: {other}"),
        })?;
    }
    Workflow::from_graph(g).map_err(ComposeError::NotComposable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::ids::{Label, Mode, TaskId};

    fn wf(
        id: &str,
        tasks: &[(&str, &[&str], &[&str])], // (task, inputs, outputs)
    ) -> Workflow {
        let mut b = Fragment::builder(id);
        for (t, ins, outs) in tasks {
            b = b
                .task(*t, Mode::Conjunctive)
                .inputs(ins.iter().copied())
                .outputs(outs.iter().copied())
                .done();
        }
        b.build().unwrap().into()
    }

    #[test]
    fn paper_example_w1_w2() {
        // W1: sources {a,b,c}, sinks {d,e,f}
        let w1 = wf("w1", &[("t1", &["a", "b", "c"], &["d", "e", "f"])]);
        // W2: sources {c,d,e}, sinks {g,h}
        let w2 = wf("w2", &[("t2", &["c", "d", "e"], &["g", "h"])]);
        let w = compose(&w1, &w2).unwrap();
        let ins: Vec<&str> = w.inset().iter().map(|l| l.as_str()).collect();
        let outs: Vec<&str> = w.outset().iter().map(|l| l.as_str()).collect();
        assert_eq!(ins, ["a", "b", "c"]);
        assert_eq!(outs, ["f", "g", "h"]);
    }

    #[test]
    fn composition_is_commutative_in_shape() {
        let w1 = wf("w1", &[("t1", &["a"], &["b"])]);
        let w2 = wf("w2", &[("t2", &["b"], &["c"])]);
        let lr = compose(&w1, &w2).unwrap();
        let rl = compose(&w2, &w1).unwrap();
        assert_eq!(lr.inset(), rl.inset());
        assert_eq!(lr.outset(), rl.outset());
        assert_eq!(lr.task_count(), rl.task_count());
    }

    #[test]
    fn double_production_is_not_composable() {
        let w1 = wf("w1", &[("t1", &["a"], &["x"])]);
        let w2 = wf("w2", &[("t2", &["b"], &["x"])]);
        let err = compose(&w1, &w2).unwrap_err();
        assert!(matches!(err, ComposeError::NotComposable(_)), "{err}");
    }

    #[test]
    fn cycle_is_not_composable() {
        let w1 = wf("w1", &[("t1", &["a"], &["b"])]);
        let w2 = wf("w2", &[("t2", &["b"], &["a"])]);
        let err = compose(&w1, &w2).unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn shared_task_is_merged_not_duplicated() {
        let w1 = wf("w1", &[("t", &["a"], &["b"])]);
        let w2 = wf("w2", &[("t", &["a"], &["b"])]);
        let w = compose(&w1, &w2).unwrap();
        assert_eq!(w.task_count(), 1);
        assert!(w.contains_task(&TaskId::new("t")));
    }

    #[test]
    fn mode_conflict_is_reported() {
        let w1: Workflow = Fragment::single_task("f1", "t", Mode::Conjunctive, ["a"], ["b"])
            .unwrap()
            .into();
        let w2: Workflow = Fragment::single_task("f2", "t", Mode::Disjunctive, ["a"], ["b"])
            .unwrap()
            .into();
        let err = compose(&w1, &w2).unwrap_err();
        assert!(matches!(err, ComposeError::ConflictingTaskMode { .. }));
    }

    #[test]
    fn compose_all_chains_many() {
        let parts: Vec<Workflow> = (0..5)
            .map(|i| {
                wf(
                    &format!("w{i}"),
                    &[(
                        &format!("t{i}") as &str,
                        &[&format!("l{i}") as &str],
                        &[&format!("l{}", i + 1) as &str],
                    )],
                )
            })
            .collect();
        let w = compose_all(parts.iter()).unwrap();
        assert_eq!(w.task_count(), 5);
        assert_eq!(w.inset().iter().next().unwrap(), &Label::new("l0"));
        assert_eq!(w.outset().iter().next().unwrap(), &Label::new("l5"));
    }

    #[test]
    fn compose_all_empty_is_empty_workflow() {
        let w = compose_all(std::iter::empty()).unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn compose_with_empty_is_identity() {
        let w1 = wf("w1", &[("t1", &["a"], &["b"])]);
        let e = Workflow::empty();
        let w = compose(&w1, &e).unwrap();
        assert_eq!(w.inset(), w1.inset());
        assert_eq!(w.outset(), w1.outset());
    }
}
