//! Richer specifications (§5.1 future work, implemented).
//!
//! "Weakening our initial assumption that a specification only involves
//! the inset and outset would allow specifications that include
//! constraints on all aspects of the workflow graph, such as path length
//! and task preferences."
//!
//! [`SpecConstraints`] adds exactly those two families on top of the
//! canonical [`Spec`]:
//!
//! * **task preferences** — forbidden tasks are excluded during
//!   construction (they compose with the capability filter), and avoided
//!   tasks are used only when no alternative exists;
//! * **graph-shape limits** — a maximum task count for the constructed
//!   workflow, checked after construction.

use std::collections::BTreeSet;
use std::fmt;

use crate::construct::{ConstructError, Construction, Constructor};
use crate::ids::TaskId;
use crate::spec::Spec;
use crate::supergraph::Supergraph;

/// Additional constraints layered over a canonical [`Spec`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpecConstraints {
    /// Tasks that must not appear in the workflow.
    pub forbidden_tasks: BTreeSet<TaskId>,
    /// Tasks to avoid when alternatives exist (soft preference).
    pub avoided_tasks: BTreeSet<TaskId>,
    /// Upper bound on the number of tasks in the result.
    pub max_tasks: Option<usize>,
}

impl SpecConstraints {
    /// No constraints.
    pub fn none() -> Self {
        SpecConstraints::default()
    }

    /// Forbids a task outright.
    pub fn forbidding(mut self, task: impl Into<TaskId>) -> Self {
        self.forbidden_tasks.insert(task.into());
        self
    }

    /// Prefers to avoid a task (used only if nothing else works).
    pub fn avoiding(mut self, task: impl Into<TaskId>) -> Self {
        self.avoided_tasks.insert(task.into());
        self
    }

    /// Caps the constructed workflow's task count.
    pub fn with_max_tasks(mut self, max: usize) -> Self {
        self.max_tasks = Some(max);
        self
    }

    /// True if no constraint is set.
    pub fn is_empty(&self) -> bool {
        self.forbidden_tasks.is_empty() && self.avoided_tasks.is_empty() && self.max_tasks.is_none()
    }
}

impl fmt::Display for SpecConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraints(forbid={}, avoid={}, max_tasks={:?})",
            self.forbidden_tasks.len(),
            self.avoided_tasks.len(),
            self.max_tasks
        )
    }
}

/// Failure modes of constrained construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstrainedError {
    /// The underlying construction failed.
    Construct(ConstructError),
    /// A workflow was found but exceeds `max_tasks`.
    TooManyTasks {
        /// Tasks in the best workflow found.
        found: usize,
        /// The configured bound.
        limit: usize,
    },
}

impl fmt::Display for ConstrainedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstrainedError::Construct(e) => write!(f, "{e}"),
            ConstrainedError::TooManyTasks { found, limit } => write!(
                f,
                "constructed workflow has {found} tasks, exceeding the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for ConstrainedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConstrainedError::Construct(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConstructError> for ConstrainedError {
    fn from(e: ConstructError) -> Self {
        ConstrainedError::Construct(e)
    }
}

/// Constructs a workflow satisfying `spec` under `constraints`, with an
/// additional capability oracle (pass `|_| true` when every task is
/// feasible).
///
/// Strategy: first try with forbidden **and** avoided tasks excluded
/// (the preferred world); if that fails, retry with only the forbidden
/// tasks excluded. Finally enforce `max_tasks`.
///
/// # Errors
///
/// [`ConstrainedError::Construct`] when no workflow exists within the
/// hard constraints; [`ConstrainedError::TooManyTasks`] when the best
/// workflow found exceeds the task budget.
pub fn construct_constrained(
    constructor: &Constructor,
    supergraph: &Supergraph,
    spec: &Spec,
    constraints: &SpecConstraints,
    mut feasible: impl FnMut(&TaskId) -> bool,
) -> Result<Construction, ConstrainedError> {
    // Preferred attempt: avoid soft-avoided tasks too.
    let preferred = constructor.construct_filtered(supergraph, spec, |t| {
        feasible(t)
            && !constraints.forbidden_tasks.contains(t)
            && !constraints.avoided_tasks.contains(t)
    });
    let construction = match preferred {
        Ok(c) => c,
        Err(_) if !constraints.avoided_tasks.is_empty() => {
            // Fall back: avoided tasks allowed, forbidden still excluded.
            constructor.construct_filtered(supergraph, spec, |t| {
                feasible(t) && !constraints.forbidden_tasks.contains(t)
            })?
        }
        Err(e) => return Err(e.into()),
    };
    if let Some(limit) = constraints.max_tasks {
        let found = construction.workflow().task_count();
        if found > limit {
            return Err(ConstrainedError::TooManyTasks { found, limit });
        }
    }
    Ok(construction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::ids::Mode;

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    /// Direct route (1 task) and scenic route (2 tasks) to the goal.
    fn two_route_supergraph() -> Supergraph {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("d", "direct", "a", "goal"));
        sg.merge_fragment(&frag("s1", "step1", "a", "mid"));
        sg.merge_fragment(&frag("s2", "step2", "mid", "goal"));
        sg
    }

    #[test]
    fn unconstrained_behaves_like_plain_construction() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        let c = construct_constrained(
            &Constructor::new(),
            &sg,
            &spec,
            &SpecConstraints::none(),
            |_| true,
        )
        .unwrap();
        assert!(spec.accepts(c.workflow()));
    }

    #[test]
    fn forbidden_task_forces_alternative() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        let constraints = SpecConstraints::none().forbidding("direct");
        let c =
            construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |_| true).unwrap();
        assert!(!c.workflow().contains_task(&TaskId::new("direct")));
        assert!(c.workflow().contains_task(&TaskId::new("step1")));
    }

    #[test]
    fn forbidding_all_routes_fails() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        let constraints = SpecConstraints::none()
            .forbidding("direct")
            .forbidding("step1");
        let err = construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |_| true)
            .unwrap_err();
        assert!(matches!(err, ConstrainedError::Construct(_)));
    }

    #[test]
    fn avoided_task_is_soft() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        // Avoiding the direct route picks the scenic one…
        let constraints = SpecConstraints::none().avoiding("direct");
        let c =
            construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |_| true).unwrap();
        assert!(!c.workflow().contains_task(&TaskId::new("direct")));
        // …but avoiding everything still succeeds via fallback.
        let constraints = SpecConstraints::none()
            .avoiding("direct")
            .avoiding("step1")
            .avoiding("step2");
        let c =
            construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |_| true).unwrap();
        assert!(spec.accepts(c.workflow()));
    }

    #[test]
    fn max_tasks_rejects_long_workflows() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        // Forbid the short route, cap at 1 task: impossible.
        let constraints = SpecConstraints::none()
            .forbidding("direct")
            .with_max_tasks(1);
        let err = construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |_| true)
            .unwrap_err();
        assert_eq!(err, ConstrainedError::TooManyTasks { found: 2, limit: 1 });
        assert!(err.to_string().contains("exceeding"));
    }

    #[test]
    fn constraints_compose_with_capability_oracle() {
        let sg = two_route_supergraph();
        let spec = Spec::new(["a"], ["goal"]);
        // Capability excludes the scenic route; constraint forbids the
        // direct one: nothing remains.
        let constraints = SpecConstraints::none().forbidding("direct");
        let err = construct_constrained(&Constructor::new(), &sg, &spec, &constraints, |t| {
            t != &TaskId::new("step2")
        })
        .unwrap_err();
        assert!(matches!(err, ConstrainedError::Construct(_)));
    }

    #[test]
    fn builder_and_display() {
        let c = SpecConstraints::none()
            .forbidding("x")
            .avoiding("y")
            .with_max_tasks(5);
        assert!(!c.is_empty());
        assert!(SpecConstraints::none().is_empty());
        assert_eq!(
            c.to_string(),
            "constraints(forbid=1, avoid=1, max_tasks=Some(5))"
        );
    }
}
