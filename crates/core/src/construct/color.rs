//! Node/edge coloring state for Algorithm 1.
//!
//! "For purposes of the algorithm, we annotate every node and edge in G
//! with a color (initially uncolored) and every node with a distance
//! (initially ∞) from a source on the graph. Nodes are marked green for
//! reachability during the exploration phase and blue for workflow
//! membership during the pruning phase; purple identifies nodes on the
//! boundary of the blue region." (§3.1)

use std::fmt;

use crate::graph::NodeIdx;

/// Distance from a trigger (ι) node; `Distance::INFINITY` = unreached.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Distance(pub u32);

impl Distance {
    /// The initial, unreached distance (the paper's ∞).
    pub const INFINITY: Distance = Distance(u32::MAX);
    /// Distance of trigger nodes.
    pub const ZERO: Distance = Distance(0);

    /// True if this distance is finite (the node has been reached).
    pub fn is_finite(self) -> bool {
        self != Distance::INFINITY
    }

    /// This distance plus one edge step.
    ///
    /// # Panics
    ///
    /// Panics when called on an infinite distance: only reached parents may
    /// propagate distance.
    pub fn succ(self) -> Distance {
        assert!(self.is_finite(), "cannot step from an unreached node");
        Distance(self.0 + 1)
    }
}

impl fmt::Debug for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            f.write_str("∞")
        }
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The four node colors of Algorithm 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Color {
    /// Not yet reached.
    #[default]
    Uncolored,
    /// Reachable from ι (exploration phase).
    Green,
    /// On the boundary of the blue region (pruning phase worklist).
    Purple,
    /// Member of the constructed workflow.
    Blue,
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Color::Uncolored => "uncolored",
            Color::Green => "green",
            Color::Purple => "purple",
            Color::Blue => "blue",
        };
        f.write_str(s)
    }
}

/// Per-node colors and distances plus the set of blue edges.
///
/// The state is sized for a graph of `len` nodes and can be *grown* (never
/// shrunk) as the supergraph acquires nodes during incremental
/// construction; existing annotations are preserved, which is what makes
/// resumable exploration correct (coloring is monotone).
#[derive(Clone, Debug, Default)]
pub struct ColorState {
    colors: Vec<Color>,
    distances: Vec<Distance>,
    blue_edges: Vec<(NodeIdx, NodeIdx)>,
    /// Per-color node tallies, maintained by [`ColorState::set_color`] so
    /// [`ColorState::count`] is O(1). Incremental construction asks for
    /// the green count after *every* resumed exploration round; scanning
    /// the color array each time was quadratic in supergraph size.
    tallies: [usize; 4],
}

fn tally_slot(color: Color) -> usize {
    match color {
        Color::Uncolored => 0,
        Color::Green => 1,
        Color::Purple => 2,
        Color::Blue => 3,
    }
}

impl ColorState {
    /// Creates state for a graph with `len` nodes, all uncolored at ∞.
    pub fn with_len(len: usize) -> Self {
        ColorState {
            colors: vec![Color::Uncolored; len],
            distances: vec![Distance::INFINITY; len],
            blue_edges: Vec::new(),
            tallies: [len, 0, 0, 0],
        }
    }

    /// Grows the state to cover at least `len` nodes.
    pub fn ensure_len(&mut self, len: usize) {
        if self.colors.len() < len {
            self.tallies[tally_slot(Color::Uncolored)] += len - self.colors.len();
            self.colors.resize(len, Color::Uncolored);
            self.distances.resize(len, Distance::INFINITY);
        }
    }

    /// Reserves capacity for a graph of at least `len` nodes without
    /// changing the covered length (a universe-size hint: the backing
    /// vectors then grow without reallocating).
    pub fn reserve(&mut self, len: usize) {
        if len > self.colors.len() {
            let extra = len - self.colors.len();
            self.colors.reserve(extra);
            self.distances.reserve(extra);
        }
    }

    /// Number of covered nodes.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// True if the state covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of a node.
    pub fn color(&self, idx: NodeIdx) -> Color {
        self.colors[idx.index()]
    }

    /// Sets the color of a node.
    pub fn set_color(&mut self, idx: NodeIdx, color: Color) {
        let old = std::mem::replace(&mut self.colors[idx.index()], color);
        self.tallies[tally_slot(old)] -= 1;
        self.tallies[tally_slot(color)] += 1;
    }

    /// The distance of a node.
    pub fn distance(&self, idx: NodeIdx) -> Distance {
        self.distances[idx.index()]
    }

    /// Sets the distance of a node.
    pub fn set_distance(&mut self, idx: NodeIdx, d: Distance) {
        self.distances[idx.index()] = d;
    }

    /// Marks an edge blue (workflow membership).
    pub fn color_edge_blue(&mut self, from: NodeIdx, to: NodeIdx) {
        self.blue_edges.push((from, to));
    }

    /// All blue edges, in coloring order.
    pub fn blue_edges(&self) -> &[(NodeIdx, NodeIdx)] {
        &self.blue_edges
    }

    /// Count of nodes currently colored `color` (O(1): tallied on every
    /// color change).
    pub fn count(&self, color: Color) -> usize {
        self.tallies[tally_slot(color)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_order_and_step() {
        assert!(Distance::ZERO < Distance(5));
        assert!(Distance(5) < Distance::INFINITY);
        assert_eq!(Distance::ZERO.succ(), Distance(1));
        assert!(Distance::INFINITY > Distance(u32::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "cannot step")]
    fn infinite_distance_cannot_step() {
        let _ = Distance::INFINITY.succ();
    }

    #[test]
    fn state_defaults_and_updates() {
        let mut s = ColorState::with_len(3);
        let n = NodeIdx(1);
        assert_eq!(s.color(n), Color::Uncolored);
        assert_eq!(s.distance(n), Distance::INFINITY);
        s.set_color(n, Color::Green);
        s.set_distance(n, Distance(2));
        assert_eq!(s.color(n), Color::Green);
        assert_eq!(s.distance(n), Distance(2));
        assert_eq!(s.count(Color::Green), 1);
        assert_eq!(s.count(Color::Uncolored), 2);
    }

    #[test]
    fn counts_track_color_transitions() {
        let mut s = ColorState::with_len(4);
        assert_eq!(s.count(Color::Uncolored), 4);
        s.set_color(NodeIdx(0), Color::Green);
        s.set_color(NodeIdx(1), Color::Green);
        s.set_color(NodeIdx(1), Color::Purple);
        s.set_color(NodeIdx(1), Color::Blue);
        assert_eq!(s.count(Color::Green), 1);
        assert_eq!(s.count(Color::Purple), 0);
        assert_eq!(s.count(Color::Blue), 1);
        assert_eq!(s.count(Color::Uncolored), 2);
        s.ensure_len(6);
        assert_eq!(s.count(Color::Uncolored), 4);
        s.reserve(1000);
        assert_eq!(s.len(), 6, "reserve must not grow the covered length");
    }

    #[test]
    fn growth_preserves_annotations() {
        let mut s = ColorState::with_len(2);
        s.set_color(NodeIdx(0), Color::Blue);
        s.ensure_len(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.color(NodeIdx(0)), Color::Blue);
        assert_eq!(s.color(NodeIdx(4)), Color::Uncolored);
        // shrinking is not a thing
        s.ensure_len(1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn blue_edges_accumulate_in_order() {
        let mut s = ColorState::with_len(3);
        s.color_edge_blue(NodeIdx(0), NodeIdx(1));
        s.color_edge_blue(NodeIdx(1), NodeIdx(2));
        assert_eq!(
            s.blue_edges(),
            &[(NodeIdx(0), NodeIdx(1)), (NodeIdx(1), NodeIdx(2))]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Distance(3).to_string(), "3");
        assert_eq!(Distance::INFINITY.to_string(), "∞");
        assert_eq!(Color::Green.to_string(), "green");
    }
}
