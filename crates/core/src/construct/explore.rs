//! The exploration phase of Algorithm 1.
//!
//! "We start by coloring the nodes corresponding to set ι of the
//! specification S. Following the data flows, we explore the graph, growing
//! the colored section as we identify which tasks and labels are reachable
//! from ι. We call a label reachable when it is in ι or when it denotes the
//! output of a reachable task; a task is reachable when all necessary input
//! labels are available for its execution via some path starting from ι."
//!
//! The implementation is worklist-driven but preserves the paper's
//! nondeterministic-choice semantics: any eligible node may be processed
//! next ([`crate::construct::PickOrder`]), and a node is (re)examined
//! whenever one of its parents changed. The key invariant — *every green
//! node's required parents are green with strictly smaller distance* — is
//! maintained by construction and checked by `debug_assert!`.

use std::collections::VecDeque;

use crate::construct::color::{Color, ColorState, Distance};
use crate::construct::trace::{Trace, TraceEvent};
use crate::construct::PickOrder;
use crate::graph::{Graph, NodeIdx};
use crate::ids::{Label, Mode, NodeKind, TaskId};
use crate::spec::Spec;

/// Result of one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Worklist pops (guard evaluations).
    pub steps: u64,
    /// Number of green nodes after the run.
    pub colored_green: usize,
    /// Goals that are not reachable; empty means ω ⊆ green (success).
    pub unreachable_goals: Vec<Label>,
    /// Labels that turned green *during this run* (triggers included on
    /// the first run), in coloring order. Incremental drivers derive the
    /// next frontier from this instead of re-scanning every node of the
    /// supergraph after every query round.
    pub new_green_labels: Vec<Label>,
}

/// A deterministic splitmix/xorshift-style PRNG so the core crate stays
/// dependency-free while still offering randomized pick orders.
#[derive(Clone, Debug)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        // Zero state would be a fixed point; nudge it.
        XorShift(seed | 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Worklist honoring a [`PickOrder`], with duplicate suppression.
#[derive(Debug)]
pub(crate) struct Worklist {
    order: PickOrder,
    queue: VecDeque<NodeIdx>,
    queued: Vec<bool>,
    rng: XorShift,
}

impl Worklist {
    pub(crate) fn new(order: PickOrder, len: usize) -> Self {
        let seed = match order {
            PickOrder::Random(s) => s,
            _ => 0,
        };
        Worklist {
            order,
            queue: VecDeque::new(),
            queued: vec![false; len],
            rng: XorShift::new(seed),
        }
    }

    pub(crate) fn ensure_len(&mut self, len: usize) {
        if self.queued.len() < len {
            self.queued.resize(len, false);
        }
    }

    pub(crate) fn push(&mut self, n: NodeIdx) {
        if !self.queued[n.index()] {
            self.queued[n.index()] = true;
            self.queue.push_back(n);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<NodeIdx> {
        if self.queue.is_empty() {
            return None;
        }
        let n = match self.order {
            PickOrder::Fifo => self.queue.pop_front().expect("non-empty"),
            PickOrder::Lifo => self.queue.pop_back().expect("non-empty"),
            PickOrder::Random(_) => {
                let i = self.rng.below(self.queue.len());
                self.queue.swap(0, i);
                self.queue.pop_front().expect("non-empty")
            }
        };
        self.queued[n.index()] = false;
        Some(n)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Switches the pick order, keeping every queued node. The PRNG is
    /// re-seeded from the new order so `Random(s)` stays deterministic.
    pub(crate) fn reconfigure(&mut self, order: PickOrder) {
        if self.order == order {
            return;
        }
        self.order = order;
        let seed = match order {
            PickOrder::Random(s) => s,
            _ => 0,
        };
        self.rng = XorShift::new(seed);
    }
}

/// Reusable state carried across resumed [`explore_with`] runs on one
/// growing graph.
///
/// Holds the worklist (allocated once, grown as the graph grows) and an
/// *edge cursor*: the number of graph edges already seeded. Because
/// [`Graph`] is append-only, a resumed run only needs to consider edges
/// appended since the previous run — re-seeding from every green node
/// (and re-popping all of their children) made resumed exploration
/// quadratic in supergraph size.
///
/// A scratch belongs to one `(graph, state)` pair for the lifetime of a
/// construction; use a fresh scratch for a new construction.
#[derive(Debug, Default)]
pub struct ExploreScratch {
    worklist: Option<Worklist>,
    edges_seen: usize,
    /// Task nodes skipped as infeasible in an earlier run. The feasibility
    /// oracle is a caller-supplied `FnMut` whose answers may change
    /// between resumes (the runtime's capability rounds do exactly that),
    /// so each resumed run re-examines them.
    infeasible_skipped: Vec<NodeIdx>,
    /// Epoch-stamped feasibility memo, one slot per node: the oracle is
    /// consulted at most once per node per run, and bumping the epoch
    /// invalidates the whole memo in O(1) between resumed runs (whose
    /// oracle may answer differently).
    feas_stamp: Vec<u32>,
    feas_value: Vec<bool>,
    feas_epoch: u32,
}

impl ExploreScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        ExploreScratch::default()
    }

    /// Prepares the scratch for one (resumed) run: worklist sized and
    /// reconfigured, feasibility memo sized and epoch-bumped.
    fn begin_run(&mut self, order: PickOrder, len: usize) {
        match &mut self.worklist {
            Some(w) => {
                // Keep queued nodes across an order change; dropping them
                // would silently lose frontier work.
                w.reconfigure(order);
                w.ensure_len(len);
            }
            slot => *slot = Some(Worklist::new(order, len)),
        }
        if self.feas_epoch == u32::MAX {
            // Epoch wrap: stale stamps could alias the new epoch.
            self.feas_stamp.iter_mut().for_each(|s| *s = 0);
            self.feas_epoch = 0;
        }
        self.feas_epoch += 1;
        if self.feas_stamp.len() < len {
            self.feas_stamp.resize(len, 0);
            self.feas_value.resize(len, false);
        }
    }
}

/// Runs one exploration pass with fresh scratch state.
///
/// For resumable, incremental use (the graph grows between calls) prefer
/// [`explore_with`], which skips re-seeding the already-explored region.
pub fn explore(
    g: &Graph,
    state: &mut ColorState,
    spec: &Spec,
    feasible: &mut dyn FnMut(&TaskId) -> bool,
    order: PickOrder,
    trace: Option<&mut Trace>,
) -> ExploreOutcome {
    let mut scratch = ExploreScratch::new();
    explore_with(g, state, spec, feasible, order, trace, &mut scratch)
}

/// Runs (or resumes) the exploration phase.
///
/// The function is *resumable*: calling it again with the same `state` and
/// `scratch` after the graph gained nodes/edges (incremental construction)
/// continues from the existing coloring — green coloring is monotone, so
/// seeding from the newly appended edges is sound and complete: any newly
/// reachable node is reached through a new edge, through a coloring this
/// run performs, or — for tasks a previous run skipped as infeasible —
/// through the scratch's re-examination list (the feasibility oracle may
/// answer differently on a later resume).
pub fn explore_with(
    g: &Graph,
    state: &mut ColorState,
    spec: &Spec,
    feasible: &mut dyn FnMut(&TaskId) -> bool,
    order: PickOrder,
    mut trace: Option<&mut Trace>,
    scratch: &mut ExploreScratch,
) -> ExploreOutcome {
    state.ensure_len(g.node_count());
    let mut new_green_labels: Vec<Label> = Vec::new();

    // Color ι (distance 0).
    for label in spec.triggers() {
        if let Some(idx) = g.find_label(label) {
            if state.color(idx) == Color::Uncolored {
                state.set_color(idx, Color::Green);
                state.set_distance(idx, Distance::ZERO);
                new_green_labels.push(label.clone());
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::Colored {
                        node: g.key(idx).clone(),
                        color: Color::Green,
                        distance: Distance::ZERO,
                    });
                }
            }
        }
    }
    // Seed the frontier from edges appended since the last run (all edges
    // on the first run): the target of any green-sourced edge may now be
    // reachable. Previously-examined nodes whose neighborhood did not
    // change need no re-examination.
    let edges_seen = scratch.edges_seen;
    scratch.edges_seen = g.edge_count();
    let mut retry_infeasible = std::mem::take(&mut scratch.infeasible_skipped);
    scratch.begin_run(order, g.node_count());
    let epoch = scratch.feas_epoch;
    let ExploreScratch {
        worklist,
        feas_stamp,
        feas_value,
        ..
    } = &mut *scratch;
    let worklist = worklist.as_mut().expect("worklist prepared");
    for &(f, t) in g.edges_from(edges_seen) {
        if state.color(f) == Color::Green {
            worklist.push(t);
        }
    }
    // Tasks skipped as infeasible earlier get one fresh look per resume.
    for n in retry_infeasible.drain(..) {
        worklist.push(n);
    }
    // Reuse the drained buffer to record this run's infeasible skips.
    let mut infeasible_skipped = retry_infeasible;

    // Goal accounting. Goals absent from the graph can never be colored;
    // they are trivially satisfied when they are triggers (handled by the
    // caller), otherwise unreachable.
    let mut goals_remaining = 0usize;
    for goal in spec.goals() {
        match g.find_label(goal) {
            Some(idx) if state.color(idx) != Color::Green => goals_remaining += 1,
            _ => {}
        }
    }

    let mut steps = 0u64;
    while goals_remaining > 0 || !worklist.is_empty() {
        let Some(n) = worklist.pop() else { break };
        steps += 1;

        if !node_feasible(g, n, feas_stamp, feas_value, epoch, feasible) {
            infeasible_skipped.push(n);
            continue;
        }

        let mode = effective_mode(g, n);
        let new_distance = match mode {
            Mode::Disjunctive => {
                // "d ← min over green parents of p.distance"
                g.parents(n)
                    .iter()
                    .filter(|&&p| state.color(p) == Color::Green)
                    .map(|&p| state.distance(p))
                    .min()
                    .map(Distance::succ)
            }
            Mode::Conjunctive => {
                // "all of n's parents are green" → d = max distance
                let parents = g.parents(n);
                if !parents.is_empty() && parents.iter().all(|&p| state.color(p) == Color::Green) {
                    parents
                        .iter()
                        .map(|&p| state.distance(p))
                        .max()
                        .map(Distance::succ)
                } else {
                    None
                }
            }
        };

        let Some(d) = new_distance else { continue };

        let improved = match state.color(n) {
            Color::Uncolored => true,
            Color::Green => state.distance(n) > d,
            // Exploration never runs after the back-sweep started.
            other => unreachable!("exploration saw {other} node"),
        };
        if !improved {
            continue;
        }

        debug_assert!(
            required_parents_are_closer(g, state, n, d),
            "green invariant violated at {:?}",
            g.key(n)
        );

        let was_uncolored = state.color(n) == Color::Uncolored;
        state.set_color(n, Color::Green);
        state.set_distance(n, d);
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::Colored {
                node: g.key(n).clone(),
                color: Color::Green,
                distance: d,
            });
        }

        if was_uncolored && g.kind(n) == NodeKind::Label {
            if let Some(label) = g.key(n).as_label() {
                let is_goal = spec.goals().contains(&label);
                new_green_labels.push(label);
                if is_goal {
                    goals_remaining -= 1;
                    if goals_remaining == 0 {
                        // "until ω ⊆ greenNodes": stop as soon as every
                        // goal is reached, like the paper's loop guard.
                        break;
                    }
                }
            }
        }

        for &c in g.children(n) {
            worklist.push(c);
        }
    }

    let unreachable_goals: Vec<Label> = spec
        .goals()
        .iter()
        .filter(|goal| match g.find_label(goal) {
            Some(idx) => state.color(idx) != Color::Green,
            // Absent from the supergraph: fine iff trivially satisfied.
            None => !spec.triggers().contains(*goal),
        })
        .cloned()
        .collect();

    scratch.infeasible_skipped = infeasible_skipped;

    ExploreOutcome {
        steps,
        colored_green: state.count(Color::Green),
        unreachable_goals,
        new_green_labels,
    }
}

/// Labels behave disjunctively; tasks use their declared mode.
pub(crate) fn effective_mode(g: &Graph, n: NodeIdx) -> Mode {
    match g.kind(n) {
        NodeKind::Label => Mode::Disjunctive,
        NodeKind::Task => g.mode(n),
    }
}

fn node_feasible(
    g: &Graph,
    n: NodeIdx,
    stamps: &mut [u32],
    values: &mut [bool],
    epoch: u32,
    feasible: &mut dyn FnMut(&TaskId) -> bool,
) -> bool {
    if g.kind(n) != NodeKind::Task {
        return true;
    }
    let i = n.index();
    if stamps[i] == epoch {
        return values[i];
    }
    let task = g.key(n).as_task().expect("task kind");
    let f = feasible(&task);
    stamps[i] = epoch;
    values[i] = f;
    f
}

/// Debug invariant: for the distance `d` about to be assigned to `n`, the
/// required parents are green and strictly closer.
fn required_parents_are_closer(g: &Graph, state: &ColorState, n: NodeIdx, d: Distance) -> bool {
    match effective_mode(g, n) {
        Mode::Disjunctive => g
            .parents(n)
            .iter()
            .any(|&p| state.color(p) == Color::Green && state.distance(p) < d),
        Mode::Conjunctive => g
            .parents(n)
            .iter()
            .all(|&p| state.color(p) == Color::Green && state.distance(p) < d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::supergraph::Supergraph;

    fn explore_all(sg: &Supergraph, spec: &Spec) -> (ColorState, ExploreOutcome) {
        let mut state = ColorState::with_len(sg.graph().node_count());
        let out = explore(
            sg.graph(),
            &mut state,
            spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        (state, out)
    }

    fn frag(id: &str, task: &str, mode: Mode, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(id, task, mode, ins.iter().copied(), outs.iter().copied()).unwrap()
    }

    #[test]
    fn triggers_get_distance_zero() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f", "t", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["b"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let a = sg.graph().find_label(&Label::new("a")).unwrap();
        assert_eq!(state.distance(a), Distance::ZERO);
        assert_eq!(state.color(a), Color::Green);
    }

    #[test]
    fn distances_increase_along_chain() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let spec = Spec::new(["a"], ["c"]);
        let (state, _) = explore_all(&sg, &spec);
        let g = sg.graph();
        let d = |name: &str| state.distance(g.find_label(&Label::new(name)).unwrap());
        assert_eq!(d("a"), Distance(0));
        assert_eq!(d("b"), Distance(2)); // a(0) -> t1(1) -> b(2)
        assert_eq!(d("c"), Distance(4));
    }

    #[test]
    fn conjunctive_waits_for_all_parents() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("fj", "join", Mode::Conjunctive, &["x", "y"], &["z"]));
        let spec = Spec::new(["a"], ["z"]);
        let (state, out) = explore_all(&sg, &spec);
        assert_eq!(out.unreachable_goals, vec![Label::new("z")]);
        let j = sg.graph().find_task(&TaskId::new("join")).unwrap();
        assert_eq!(state.color(j), Color::Uncolored);
    }

    #[test]
    fn conjunctive_distance_is_max_plus_one() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("fj", "join", Mode::Conjunctive, &["x", "a"], &["z"]));
        let spec = Spec::new(["a"], ["z"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let g = sg.graph();
        let j = g.find_task(&TaskId::new("join")).unwrap();
        // parents: x at distance 2, a at 0 -> max 2, so join is 3.
        assert_eq!(state.distance(j), Distance(3));
    }

    #[test]
    fn early_exit_stops_at_goal() {
        // Long chain, goal early: exploration should not color the far end.
        let mut sg = Supergraph::new();
        for i in 0..10 {
            sg.merge_fragment(&frag(
                &format!("f{i}"),
                &format!("t{i}"),
                Mode::Disjunctive,
                &[&format!("l{i}")],
                &[&format!("l{}", i + 1)],
            ));
        }
        let spec = Spec::new(["l0"], ["l1"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let far = sg.graph().find_label(&Label::new("l10")).unwrap();
        assert_eq!(state.color(far), Color::Uncolored, "must stop early");
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["a"]));
        let spec = Spec::new(["a"], ["missing"]);
        let (_, out) = explore_all(&sg, &spec);
        assert_eq!(out.unreachable_goals, vec![Label::new("missing")]);
        assert!(out.steps < 100, "bounded work on cyclic graphs");
    }

    #[test]
    fn resumed_exploration_picks_up_new_edges() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["c"]);
        let mut state = ColorState::with_len(sg.graph().node_count());
        let out = explore(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert_eq!(out.unreachable_goals, vec![Label::new("c")]);

        // Community supplies another fragment; resume.
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let out = explore(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert!(out.unreachable_goals.is_empty());
    }

    #[test]
    fn resumed_exploration_with_scratch_matches_fresh() {
        // Grow a supergraph fragment by fragment, resuming with a shared
        // scratch; the final coloring must match a from-scratch run, and
        // the edge cursor must keep resumed step counts near-linear.
        let mut sg = Supergraph::new();
        let spec = Spec::new(["c0"], ["c6"]);
        let mut state = ColorState::with_len(0);
        let mut scratch = ExploreScratch::new();
        let mut resumed_steps = 0;
        let mut new_green_total = 0usize;
        for i in 0..6 {
            sg.merge_fragment(&frag(
                &format!("f{i}"),
                &format!("t{i}"),
                Mode::Disjunctive,
                &[&format!("c{i}")],
                &[&format!("c{}", i + 1)],
            ));
            let out = explore_with(
                sg.graph(),
                &mut state,
                &spec,
                &mut |_| true,
                PickOrder::Fifo,
                None,
                &mut scratch,
            );
            resumed_steps += out.steps;
            new_green_total += out.new_green_labels.len();
        }
        let mut fresh = ColorState::with_len(sg.graph().node_count());
        let out = explore(
            sg.graph(),
            &mut fresh,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert!(out.unreachable_goals.is_empty());
        for i in sg.graph().node_indices() {
            assert_eq!(state.color(i), fresh.color(i), "node {i:?}");
            assert_eq!(state.distance(i), fresh.distance(i), "node {i:?}");
        }
        // Labels c0..=c6 each reported green exactly once across resumes.
        assert_eq!(new_green_total, 7);
        // Edge-cursor seeding: resumed total work stays within a small
        // factor of the from-scratch run instead of growing quadratically.
        assert!(
            resumed_steps <= 3 * out.steps.max(1),
            "resumed {resumed_steps} vs fresh {}",
            out.steps
        );
    }

    #[test]
    fn resumed_exploration_revisits_previously_infeasible_tasks() {
        // The oracle changes its mind between resumes (as the runtime's
        // capability rounds can): a task skipped as infeasible must get
        // re-examined even though no edge or parent coloring changed.
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f", "t", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["b"]);
        let mut state = ColorState::with_len(sg.graph().node_count());
        let mut scratch = ExploreScratch::new();
        let out = explore_with(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| false,
            PickOrder::Fifo,
            None,
            &mut scratch,
        );
        assert_eq!(out.unreachable_goals, vec![Label::new("b")]);

        let out = explore_with(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
            &mut scratch,
        );
        assert!(out.unreachable_goals.is_empty(), "oracle flipped to true");
    }

    #[test]
    fn changing_pick_order_keeps_queued_work() {
        // Worklist entries survive an order switch between resumes.
        let mut wl = Worklist::new(PickOrder::Fifo, 4);
        wl.push(NodeIdx(2));
        wl.push(NodeIdx(0));
        wl.reconfigure(PickOrder::Lifo);
        let mut popped = Vec::new();
        while let Some(n) = wl.pop() {
            popped.push(n.index());
        }
        assert_eq!(popped, vec![0, 2], "LIFO over preserved queue");
    }

    #[test]
    fn new_green_labels_report_triggers_once() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f", "t", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["b"]);
        let mut state = ColorState::with_len(sg.graph().node_count());
        let mut scratch = ExploreScratch::new();
        let out = explore_with(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
            &mut scratch,
        );
        assert_eq!(out.new_green_labels, vec![Label::new("a"), Label::new("b")]);
        // Nothing changed: resuming reports nothing new.
        let out = explore_with(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
            &mut scratch,
        );
        assert!(out.new_green_labels.is_empty());
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn worklist_orders_pop_all_nodes() {
        for order in [PickOrder::Fifo, PickOrder::Lifo, PickOrder::Random(7)] {
            let mut wl = Worklist::new(order, 10);
            for i in 0..10u32 {
                wl.push(NodeIdx(i));
                wl.push(NodeIdx(i)); // duplicate suppressed
            }
            let mut seen = Vec::new();
            while let Some(n) = wl.pop() {
                seen.push(n.index());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "order {order:?}");
        }
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() >= 7);
    }
}
