//! The exploration phase of Algorithm 1.
//!
//! "We start by coloring the nodes corresponding to set ι of the
//! specification S. Following the data flows, we explore the graph, growing
//! the colored section as we identify which tasks and labels are reachable
//! from ι. We call a label reachable when it is in ι or when it denotes the
//! output of a reachable task; a task is reachable when all necessary input
//! labels are available for its execution via some path starting from ι."
//!
//! The implementation is worklist-driven but preserves the paper's
//! nondeterministic-choice semantics: any eligible node may be processed
//! next ([`crate::construct::PickOrder`]), and a node is (re)examined
//! whenever one of its parents changed. The key invariant — *every green
//! node's required parents are green with strictly smaller distance* — is
//! maintained by construction and checked by `debug_assert!`.

use std::collections::HashMap;
use std::collections::VecDeque;

use crate::construct::color::{Color, ColorState, Distance};
use crate::construct::trace::{Trace, TraceEvent};
use crate::construct::PickOrder;
use crate::graph::{Graph, NodeIdx};
use crate::ids::{Label, Mode, NodeKind, TaskId};
use crate::spec::Spec;

/// Result of one exploration run.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Worklist pops (guard evaluations).
    pub steps: u64,
    /// Number of green nodes after the run.
    pub colored_green: usize,
    /// Goals that are not reachable; empty means ω ⊆ green (success).
    pub unreachable_goals: Vec<Label>,
}

/// A deterministic splitmix/xorshift-style PRNG so the core crate stays
/// dependency-free while still offering randomized pick orders.
#[derive(Clone, Debug)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        // Zero state would be a fixed point; nudge it.
        XorShift(seed | 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Worklist honoring a [`PickOrder`], with duplicate suppression.
#[derive(Debug)]
pub(crate) struct Worklist {
    order: PickOrder,
    queue: VecDeque<NodeIdx>,
    queued: Vec<bool>,
    rng: XorShift,
}

impl Worklist {
    pub(crate) fn new(order: PickOrder, len: usize) -> Self {
        let seed = match order {
            PickOrder::Random(s) => s,
            _ => 0,
        };
        Worklist {
            order,
            queue: VecDeque::new(),
            queued: vec![false; len],
            rng: XorShift::new(seed),
        }
    }

    #[allow(dead_code)] // used by resumable exploration when graphs grow
    pub(crate) fn ensure_len(&mut self, len: usize) {
        if self.queued.len() < len {
            self.queued.resize(len, false);
        }
    }

    pub(crate) fn push(&mut self, n: NodeIdx) {
        if !self.queued[n.index()] {
            self.queued[n.index()] = true;
            self.queue.push_back(n);
        }
    }

    pub(crate) fn pop(&mut self) -> Option<NodeIdx> {
        if self.queue.is_empty() {
            return None;
        }
        let n = match self.order {
            PickOrder::Fifo => self.queue.pop_front().expect("non-empty"),
            PickOrder::Lifo => self.queue.pop_back().expect("non-empty"),
            PickOrder::Random(_) => {
                let i = self.rng.below(self.queue.len());
                self.queue.swap(0, i);
                self.queue.pop_front().expect("non-empty")
            }
        };
        self.queued[n.index()] = false;
        Some(n)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Runs (or resumes) the exploration phase.
///
/// The function is *resumable*: calling it again after the graph gained
/// nodes/edges (incremental construction) continues from the existing
/// coloring — green coloring is monotone, so re-seeding from the current
/// green region is sound.
pub fn explore(
    g: &Graph,
    state: &mut ColorState,
    spec: &Spec,
    feasible: &mut dyn FnMut(&TaskId) -> bool,
    order: PickOrder,
    mut trace: Option<&mut Trace>,
) -> ExploreOutcome {
    state.ensure_len(g.node_count());
    let mut worklist = Worklist::new(order, g.node_count());
    let mut feasibility: HashMap<NodeIdx, bool> = HashMap::new();

    // Color ι (distance 0) and seed the frontier: children of every green
    // node. Seeding from *all* green nodes (not just ι) makes resumed runs
    // pick up edges added since the last round.
    for label in spec.triggers() {
        if let Some(idx) = g.find_label(label) {
            if state.color(idx) == Color::Uncolored {
                state.set_color(idx, Color::Green);
                state.set_distance(idx, Distance::ZERO);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::Colored {
                        node: g.key(idx).clone(),
                        color: Color::Green,
                        distance: Distance::ZERO,
                    });
                }
            }
        }
    }
    for idx in g.node_indices() {
        if state.color(idx) == Color::Green {
            for &c in g.children(idx) {
                worklist.push(c);
            }
        }
    }

    // Goal accounting. Goals absent from the graph can never be colored;
    // they are trivially satisfied when they are triggers (handled by the
    // caller), otherwise unreachable.
    let mut goals_remaining = 0usize;
    for goal in spec.goals() {
        match g.find_label(goal) {
            Some(idx) if state.color(idx) != Color::Green => goals_remaining += 1,
            _ => {}
        }
    }

    let mut steps = 0u64;
    while goals_remaining > 0 || !worklist.is_empty() {
        let Some(n) = worklist.pop() else { break };
        steps += 1;

        if !node_feasible(g, n, &mut feasibility, feasible) {
            continue;
        }

        let mode = effective_mode(g, n);
        let new_distance = match mode {
            Mode::Disjunctive => {
                // "d ← min over green parents of p.distance"
                g.parents(n)
                    .iter()
                    .filter(|&&p| state.color(p) == Color::Green)
                    .map(|&p| state.distance(p))
                    .min()
                    .map(Distance::succ)
            }
            Mode::Conjunctive => {
                // "all of n's parents are green" → d = max distance
                let parents = g.parents(n);
                if !parents.is_empty() && parents.iter().all(|&p| state.color(p) == Color::Green) {
                    parents
                        .iter()
                        .map(|&p| state.distance(p))
                        .max()
                        .map(Distance::succ)
                } else {
                    None
                }
            }
        };

        let Some(d) = new_distance else { continue };

        let improved = match state.color(n) {
            Color::Uncolored => true,
            Color::Green => state.distance(n) > d,
            // Exploration never runs after the back-sweep started.
            other => unreachable!("exploration saw {other} node"),
        };
        if !improved {
            continue;
        }

        debug_assert!(
            required_parents_are_closer(g, state, n, d),
            "green invariant violated at {:?}",
            g.key(n)
        );

        let was_uncolored = state.color(n) == Color::Uncolored;
        state.set_color(n, Color::Green);
        state.set_distance(n, d);
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::Colored {
                node: g.key(n).clone(),
                color: Color::Green,
                distance: d,
            });
        }

        if was_uncolored && g.kind(n) == NodeKind::Label {
            if let Some(label) = g.key(n).as_label() {
                if spec.goals().contains(&label) {
                    goals_remaining -= 1;
                    if goals_remaining == 0 {
                        // "until ω ⊆ greenNodes": stop as soon as every
                        // goal is reached, like the paper's loop guard.
                        break;
                    }
                }
            }
        }

        for &c in g.children(n) {
            worklist.push(c);
        }
    }

    let unreachable_goals: Vec<Label> = spec
        .goals()
        .iter()
        .filter(|goal| match g.find_label(goal) {
            Some(idx) => state.color(idx) != Color::Green,
            // Absent from the supergraph: fine iff trivially satisfied.
            None => !spec.triggers().contains(*goal),
        })
        .cloned()
        .collect();

    ExploreOutcome {
        steps,
        colored_green: state.count(Color::Green),
        unreachable_goals,
    }
}

/// Labels behave disjunctively; tasks use their declared mode.
pub(crate) fn effective_mode(g: &Graph, n: NodeIdx) -> Mode {
    match g.kind(n) {
        NodeKind::Label => Mode::Disjunctive,
        NodeKind::Task => g.mode(n),
    }
}

fn node_feasible(
    g: &Graph,
    n: NodeIdx,
    memo: &mut HashMap<NodeIdx, bool>,
    feasible: &mut dyn FnMut(&TaskId) -> bool,
) -> bool {
    if g.kind(n) != NodeKind::Task {
        return true;
    }
    if let Some(&f) = memo.get(&n) {
        return f;
    }
    let task = g.key(n).as_task().expect("task kind");
    let f = feasible(&task);
    memo.insert(n, f);
    f
}

/// Debug invariant: for the distance `d` about to be assigned to `n`, the
/// required parents are green and strictly closer.
fn required_parents_are_closer(g: &Graph, state: &ColorState, n: NodeIdx, d: Distance) -> bool {
    match effective_mode(g, n) {
        Mode::Disjunctive => g
            .parents(n)
            .iter()
            .any(|&p| state.color(p) == Color::Green && state.distance(p) < d),
        Mode::Conjunctive => g
            .parents(n)
            .iter()
            .all(|&p| state.color(p) == Color::Green && state.distance(p) < d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::supergraph::Supergraph;

    fn explore_all(sg: &Supergraph, spec: &Spec) -> (ColorState, ExploreOutcome) {
        let mut state = ColorState::with_len(sg.graph().node_count());
        let out = explore(
            sg.graph(),
            &mut state,
            spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        (state, out)
    }

    fn frag(id: &str, task: &str, mode: Mode, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(id, task, mode, ins.iter().copied(), outs.iter().copied()).unwrap()
    }

    #[test]
    fn triggers_get_distance_zero() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f", "t", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["b"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let a = sg.graph().find_label(&Label::new("a")).unwrap();
        assert_eq!(state.distance(a), Distance::ZERO);
        assert_eq!(state.color(a), Color::Green);
    }

    #[test]
    fn distances_increase_along_chain() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let spec = Spec::new(["a"], ["c"]);
        let (state, _) = explore_all(&sg, &spec);
        let g = sg.graph();
        let d = |name: &str| state.distance(g.find_label(&Label::new(name)).unwrap());
        assert_eq!(d("a"), Distance(0));
        assert_eq!(d("b"), Distance(2)); // a(0) -> t1(1) -> b(2)
        assert_eq!(d("c"), Distance(4));
    }

    #[test]
    fn conjunctive_waits_for_all_parents() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("fj", "join", Mode::Conjunctive, &["x", "y"], &["z"]));
        let spec = Spec::new(["a"], ["z"]);
        let (state, out) = explore_all(&sg, &spec);
        assert_eq!(out.unreachable_goals, vec![Label::new("z")]);
        let j = sg.graph().find_task(&TaskId::new("join")).unwrap();
        assert_eq!(state.color(j), Color::Uncolored);
    }

    #[test]
    fn conjunctive_distance_is_max_plus_one() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("fj", "join", Mode::Conjunctive, &["x", "a"], &["z"]));
        let spec = Spec::new(["a"], ["z"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let g = sg.graph();
        let j = g.find_task(&TaskId::new("join")).unwrap();
        // parents: x at distance 2, a at 0 -> max 2, so join is 3.
        assert_eq!(state.distance(j), Distance(3));
    }

    #[test]
    fn early_exit_stops_at_goal() {
        // Long chain, goal early: exploration should not color the far end.
        let mut sg = Supergraph::new();
        for i in 0..10 {
            sg.merge_fragment(&frag(
                &format!("f{i}"),
                &format!("t{i}"),
                Mode::Disjunctive,
                &[&format!("l{i}")],
                &[&format!("l{}", i + 1)],
            ));
        }
        let spec = Spec::new(["l0"], ["l1"]);
        let (state, out) = explore_all(&sg, &spec);
        assert!(out.unreachable_goals.is_empty());
        let far = sg.graph().find_label(&Label::new("l10")).unwrap();
        assert_eq!(state.color(far), Color::Uncolored, "must stop early");
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["a"]));
        let spec = Spec::new(["a"], ["missing"]);
        let (_, out) = explore_all(&sg, &spec);
        assert_eq!(out.unreachable_goals, vec![Label::new("missing")]);
        assert!(out.steps < 100, "bounded work on cyclic graphs");
    }

    #[test]
    fn resumed_exploration_picks_up_new_edges() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["c"]);
        let mut state = ColorState::with_len(sg.graph().node_count());
        let out = explore(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert_eq!(out.unreachable_goals, vec![Label::new("c")]);

        // Community supplies another fragment; resume.
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let out = explore(
            sg.graph(),
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert!(out.unreachable_goals.is_empty());
    }

    #[test]
    fn worklist_orders_pop_all_nodes() {
        for order in [PickOrder::Fifo, PickOrder::Lifo, PickOrder::Random(7)] {
            let mut wl = Worklist::new(order, 10);
            for i in 0..10u32 {
                wl.push(NodeIdx(i));
                wl.push(NodeIdx(i)); // duplicate suppressed
            }
            let mut seen = Vec::new();
            while let Some(n) = wl.pop() {
                seen.push(n.index());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "order {order:?}");
        }
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() >= 7);
    }
}
