//! Incremental, frontier-driven construction.
//!
//! "We extend the basic algorithm by relaxing the assumption that all of
//! the workflow fragments are collected from the community before the
//! coloring process begins. The coloring of nodes requires only local
//! knowledge. In our implementation, we build the supergraph incrementally,
//! drawing from the community only the fragments that we need to extend the
//! supergraph along the boundaries of the colored region." (§3.1)
//!
//! The driver alternates between (a) querying a [`FragmentSource`] for
//! fragments whose tasks consume the labels on the green frontier and
//! (b) resuming the exploration coloring over the grown supergraph, until
//! every goal is green or the frontier stops growing. Green coloring is
//! monotone, so resuming is sound; completeness relative to full collection
//! follows by induction on distance (every prerequisite of a reachable node
//! is reachable at a smaller distance, so its fragments are eventually
//! queried).

use std::sync::Arc;

use crate::construct::color::{Color, ColorState};
use crate::construct::explore::{explore_with, ExploreOutcome, ExploreScratch};
use crate::construct::trace::{Trace, TraceEvent};
use crate::construct::{finish, ConstructError, ConstructStats, Construction, PickOrder};
use crate::fragment::Fragment;
use crate::fx::FxHashSet;
use crate::ids::{Label, TaskId};
use crate::spec::Spec;
use crate::supergraph::Supergraph;

/// A queryable source of community knowhow.
///
/// In the distributed runtime this is backed by fragment queries over the
/// network (each host's Fragment Manager answers from its local database);
/// [`crate::store::InMemoryFragmentStore`] provides the local equivalent.
///
/// Fragments are handed out as shared [`Arc`]s: a frontier query returns
/// handles to the community's stored knowhow rather than deep copies of
/// whole workflow graphs.
pub trait FragmentSource {
    /// Returns fragments containing at least one task that **consumes** any
    /// of the given labels. Implementations may return duplicates or
    /// already-known fragments; merging is idempotent.
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>>;
}

impl<T: FragmentSource + ?Sized> FragmentSource for &mut T {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        (**self).fragments_consuming(labels)
    }
}

/// Drives Algorithm 1 while collecting fragments on demand.
#[derive(Clone, Debug, Default)]
pub struct IncrementalConstructor {
    order: PickOrder,
    record_trace: bool,
}

impl IncrementalConstructor {
    /// Creates an incremental constructor with FIFO pick order.
    pub fn new() -> Self {
        IncrementalConstructor::default()
    }

    /// Sets the node pick order used during coloring.
    pub fn pick_order(mut self, order: PickOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables trace recording.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Constructs a workflow satisfying `spec`, pulling fragments from
    /// `source` only as the colored frontier grows. Returns the
    /// construction together with the (partial) supergraph that was
    /// actually assembled.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals stay unreachable after
    /// the frontier stops producing new knowledge.
    pub fn construct(
        &self,
        mut source: impl FragmentSource,
        spec: &Spec,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        self.construct_filtered(&mut source, spec, |_| true)
    }

    /// Like [`IncrementalConstructor::construct`], restricted to tasks the
    /// capability oracle deems feasible.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals are unreachable with
    /// feasible tasks only.
    pub fn construct_filtered(
        &self,
        mut source: impl FragmentSource,
        spec: &Spec,
        mut feasible: impl FnMut(&TaskId) -> bool,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        let mut sg = Supergraph::new();
        let mut state = ColorState::with_len(0);
        let mut scratch = ExploreScratch::new();
        let mut trace = self.record_trace.then(Trace::new);
        let mut queried: FxHashSet<Label> = FxHashSet::default();
        let mut stats = ConstructStats::default();
        let mut last_outcome: Option<ExploreOutcome> = None;
        // Labels turned green by the latest explore pass — the candidate
        // frontier of the next round. Seeded with the triggers; afterwards
        // maintained from `ExploreOutcome::new_green_labels`, so a round
        // costs O(newly green) instead of a full supergraph scan.
        let mut frontier_candidates: Vec<Label> = spec.triggers().iter().cloned().collect();

        loop {
            // Frontier = newly green labels (plus, initially, the
            // triggers) whose consumers we have not asked the community
            // about yet, deduplicated across rounds.
            let frontier: Vec<Label> = frontier_candidates
                .drain(..)
                .filter(|l| queried.insert(l.clone()))
                .collect();

            if frontier.is_empty() {
                break;
            }

            let fragments = source.fragments_consuming(&frontier);
            stats.query_rounds += 1;
            let mut new_fragments = 0usize;
            for f in &fragments {
                match sg.try_merge_fragment(f) {
                    Ok(true) => new_fragments += 1,
                    Ok(false) => {}
                    Err(_) => {
                        // Conflicting knowhow from different hosts: skip the
                        // conflicting fragment rather than failing the whole
                        // construction; the first-merged definition wins.
                        continue;
                    }
                }
            }
            stats.fragments_pulled += new_fragments;
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent::QueryRound {
                    labels: frontier.len(),
                    fragments: new_fragments,
                });
            }

            let outcome = explore_with(
                sg.graph(),
                &mut state,
                spec,
                &mut feasible,
                self.order,
                trace.as_mut(),
                &mut scratch,
            );
            stats.explore_steps += outcome.steps;
            frontier_candidates.extend_from_slice(&outcome.new_green_labels);
            let done = outcome.unreachable_goals.is_empty();
            last_outcome = Some(outcome);
            if done {
                break;
            }
        }

        let outcome = match last_outcome {
            Some(o) => o,
            None => {
                // No queries at all (no triggers): only trivial specs can
                // succeed. Run one explore pass over the empty graph to get
                // a well-formed outcome.
                explore_with(
                    sg.graph(),
                    &mut state,
                    spec,
                    &mut feasible,
                    self.order,
                    trace.as_mut(),
                    &mut scratch,
                )
            }
        };

        stats.colored_green = state.count(Color::Green);
        stats.supergraph_nodes = sg.graph().node_count();
        stats.supergraph_edges = sg.graph().edge_count();

        let construction = finish(&sg, spec, state, outcome, stats, trace)?;
        Ok((construction, sg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;
    use crate::store::InMemoryFragmentStore;

    fn frag(id: &str, task: &str, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(
            id,
            task,
            Mode::Disjunctive,
            ins.iter().copied(),
            outs.iter().copied(),
        )
        .unwrap()
    }

    fn chain_store(n: usize) -> InMemoryFragmentStore {
        let mut store = InMemoryFragmentStore::new();
        for i in 0..n {
            store.insert(frag(
                &format!("f{i}"),
                &format!("t{i}"),
                &[&format!("l{i}")],
                &[&format!("l{}", i + 1)],
            ));
        }
        store
    }

    #[test]
    fn incremental_solves_chain() {
        let mut store = chain_store(5);
        let spec = Spec::new(["l0"], ["l5"]);
        let (c, sg) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.is_satisfied_strict(c.workflow()));
        assert_eq!(c.workflow().task_count(), 5);
        assert_eq!(sg.fragment_count(), 5);
        assert_eq!(c.stats().query_rounds, 5, "one round per frontier step");
    }

    #[test]
    fn incremental_pulls_only_needed_fragments() {
        // A 10-step chain plus an unrelated island: the island is never
        // queried because its labels never become green.
        let mut store = chain_store(10);
        for i in 0..20 {
            store.insert(frag(
                &format!("island{i}"),
                &format!("it{i}"),
                &[&format!("ix{i}")],
                &[&format!("iy{i}")],
            ));
        }
        let spec = Spec::new(["l0"], ["l3"]);
        let (c, sg) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.accepts(c.workflow()));
        assert!(
            sg.fragment_count() <= 5,
            "pulled {} fragments, expected only the prefix of the chain",
            sg.fragment_count()
        );
        assert_eq!(c.stats().fragments_pulled, sg.fragment_count());
    }

    #[test]
    fn incremental_detects_no_solution() {
        let mut store = chain_store(3);
        let spec = Spec::new(["l0"], ["unknown goal"]);
        let err = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap_err();
        assert!(matches!(err, ConstructError::NoSolution { .. }));
    }

    #[test]
    fn incremental_matches_full_construction_feasibility() {
        // Same knowledge, both strategies: both must succeed with
        // equivalent insets/outsets.
        let store = chain_store(6);
        let spec = Spec::new(["l1"], ["l4"]);

        let sg = Supergraph::from_fragments(store.fragments()).unwrap();
        let full = crate::construct::Constructor::new()
            .construct(&sg, &spec)
            .unwrap();

        let mut store = store;
        let (inc, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();

        assert_eq!(full.workflow().inset(), inc.workflow().inset());
        assert_eq!(full.workflow().outset(), inc.workflow().outset());
        assert_eq!(full.workflow().task_count(), inc.workflow().task_count());
    }

    #[test]
    fn trivial_spec_with_no_knowledge() {
        let mut store = InMemoryFragmentStore::new();
        let spec = Spec::new(["a"], ["a"]);
        let (c, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert_eq!(c.workflow().task_count(), 0);
        assert!(c.workflow().contains_label(&Label::new("a")));
    }

    #[test]
    fn conjunctive_join_needs_second_round_of_queries() {
        // join needs x and y; y's producer is only discoverable from b,
        // which is a separate trigger.
        let mut store = InMemoryFragmentStore::new();
        store.insert(
            Fragment::single_task("fx", "make x", Mode::Disjunctive, ["a"], ["x"]).unwrap(),
        );
        store.insert(
            Fragment::single_task("fy", "make y", Mode::Disjunctive, ["b"], ["y"]).unwrap(),
        );
        store.insert(
            Fragment::single_task("fj", "join", Mode::Conjunctive, ["x", "y"], ["z"]).unwrap(),
        );
        let spec = Spec::new(["a", "b"], ["z"]);
        let (c, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.accepts(c.workflow()));
        assert_eq!(c.workflow().task_count(), 3);
    }

    #[test]
    fn infeasible_task_blocks_and_alternative_wins() {
        let mut store = InMemoryFragmentStore::new();
        store.insert(frag("f1", "infeasible", &["a"], &["goal"]));
        store.insert(frag("f2", "step1", &["a"], &["mid"]));
        store.insert(frag("f3", "step2", &["mid"], &["goal"]));
        let spec = Spec::new(["a"], ["goal"]);
        let (c, _) = IncrementalConstructor::new()
            .construct_filtered(&mut store, &spec, |t| t != &TaskId::new("infeasible"))
            .unwrap();
        assert!(c.workflow().contains_task(&TaskId::new("step1")));
        assert!(!c.workflow().contains_task(&TaskId::new("infeasible")));
    }

    #[test]
    fn trace_records_query_rounds() {
        let mut store = chain_store(3);
        let spec = Spec::new(["l0"], ["l3"]);
        let (c, _) = IncrementalConstructor::new()
            .record_trace(true)
            .construct(&mut store, &spec)
            .unwrap();
        let trace = c.trace().unwrap();
        let rounds = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::QueryRound { .. }))
            .count();
        assert_eq!(rounds, c.stats().query_rounds);
    }
}
