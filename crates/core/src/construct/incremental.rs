//! Incremental, frontier-driven construction.
//!
//! "We extend the basic algorithm by relaxing the assumption that all of
//! the workflow fragments are collected from the community before the
//! coloring process begins. The coloring of nodes requires only local
//! knowledge. In our implementation, we build the supergraph incrementally,
//! drawing from the community only the fragments that we need to extend the
//! supergraph along the boundaries of the colored region." (§3.1)
//!
//! The driver alternates between (a) querying a [`FragmentSource`] for
//! fragments whose tasks consume the labels on the green frontier and
//! (b) resuming the exploration coloring over the grown supergraph, until
//! every goal is green or the frontier stops growing. Green coloring is
//! monotone, so resuming is sound; completeness relative to full collection
//! follows by induction on distance (every prerequisite of a reachable node
//! is reachable at a smaller distance, so its fragments are eventually
//! queried).
//!
//! ## Parallel frontier exploration
//!
//! Each open label's candidate query is independent of every other — the
//! frontier is embarrassingly parallel even though the coloring itself is
//! sequential. [`IncrementalConstructor::workers`] enables a worker-pool
//! mode over a [`ParallelFragmentSource`] (a sharded store): scoped worker
//! threads drain a shared frontier of open labels through an atomic
//! cursor, query the store's shards for each label they claim, and emit
//! `(sequence, fragment)` candidates back over a channel. The driver
//! sorts each round's candidates by global insertion sequence and merges
//! them through one batched supergraph pass, so the constructed
//! supergraph is **identical** to the sequential one regardless of worker
//! count or thread scheduling — order restored by sort, not by luck.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::construct::color::{Color, ColorState};
use crate::construct::explore::{explore_with, ExploreOutcome, ExploreScratch};
use crate::construct::trace::{Trace, TraceEvent};
use crate::construct::{finish, ConstructError, ConstructStats, Construction, PickOrder};
use crate::fragment::Fragment;
use crate::fx::FxHashSet;
use crate::ids::{Label, TaskId};
use crate::spec::Spec;
use crate::store::{finish_hits, ParallelFragmentSource};
use crate::supergraph::Supergraph;

/// A queryable source of community knowhow.
///
/// In the distributed runtime this is backed by fragment queries over the
/// network (each host's Fragment Manager answers from its local database);
/// [`crate::store::InMemoryFragmentStore`] provides the local equivalent.
///
/// Fragments are handed out as shared [`Arc`]s: a frontier query returns
/// handles to the community's stored knowhow rather than deep copies of
/// whole workflow graphs.
pub trait FragmentSource {
    /// Returns fragments containing at least one task that **consumes** any
    /// of the given labels. Implementations may return duplicates or
    /// already-known fragments; merging is idempotent.
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>>;
}

impl<T: FragmentSource + ?Sized> FragmentSource for &mut T {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        (**self).fragments_consuming(labels)
    }
}

/// Expected final construction size, used to pre-size the supergraph's
/// node/edge indexes and the coloring scratch so large constructions do
/// not pay for incremental rehash/regrow (see
/// [`IncrementalConstructor::pre_size`]). Upper bounds are fine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeHints {
    /// Expected fragments merged.
    pub fragments: usize,
    /// Expected supergraph nodes.
    pub nodes: usize,
    /// Expected supergraph edges.
    pub edges: usize,
}

impl SizeHints {
    /// Hints for a universe of `fragments` fragments of typical shape
    /// (single task, a few labels): ~4 nodes and ~4 edges per fragment.
    pub fn for_fragments(fragments: usize) -> Self {
        SizeHints {
            fragments,
            nodes: fragments.saturating_mul(4),
            edges: fragments.saturating_mul(4),
        }
    }
}

/// Drives Algorithm 1 while collecting fragments on demand.
#[derive(Clone, Debug, Default)]
pub struct IncrementalConstructor {
    order: PickOrder,
    record_trace: bool,
    workers: usize,
    hints: Option<SizeHints>,
}

impl IncrementalConstructor {
    /// Creates an incremental constructor with FIFO pick order.
    pub fn new() -> Self {
        IncrementalConstructor::default()
    }

    /// Sets the node pick order used during coloring.
    pub fn pick_order(mut self, order: PickOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables trace recording.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Sets the frontier worker count for the parallel entry points
    /// ([`IncrementalConstructor::construct_parallel`]): `0` means one
    /// worker per hardware thread, `1` (the default) stays on the calling
    /// thread with no pool at all — the single-shard/single-worker fast
    /// path, so small universes don't regress.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Pre-sizes construction state from universe hints (see
    /// [`SizeHints`]).
    pub fn pre_size(mut self, hints: SizeHints) -> Self {
        self.hints = Some(hints);
        self
    }

    /// The effective worker count: `workers(0)` resolves to the machine's
    /// hardware parallelism.
    fn effective_workers(&self) -> usize {
        match self.workers {
            0 => crate::hardware_parallelism(),
            n => n,
        }
    }

    /// Constructs a workflow satisfying `spec`, pulling fragments from
    /// `source` only as the colored frontier grows. Returns the
    /// construction together with the (partial) supergraph that was
    /// actually assembled.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals stay unreachable after
    /// the frontier stops producing new knowledge.
    pub fn construct(
        &self,
        mut source: impl FragmentSource,
        spec: &Spec,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        self.construct_filtered(&mut source, spec, |_| true)
    }

    /// Like [`IncrementalConstructor::construct`], restricted to tasks the
    /// capability oracle deems feasible.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals are unreachable with
    /// feasible tasks only.
    pub fn construct_filtered(
        &self,
        mut source: impl FragmentSource,
        spec: &Spec,
        mut feasible: impl FnMut(&TaskId) -> bool,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        self.drive(spec, &mut feasible, |labels| {
            source.fragments_consuming(labels)
        })
    }

    /// Constructs a workflow from a sharded source, fanning each round's
    /// frontier queries out over the configured worker pool (see
    /// [`IncrementalConstructor::workers`]). With one worker (the
    /// default) no threads are spawned and the shards are queried inline.
    ///
    /// The result is deterministic: identical to
    /// [`IncrementalConstructor::construct`] over the same database for
    /// every worker count and shard count.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals stay unreachable after
    /// the frontier stops producing new knowledge.
    pub fn construct_parallel<S: ParallelFragmentSource>(
        &self,
        source: &S,
        spec: &Spec,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        self.construct_parallel_filtered(source, spec, |_| true)
    }

    /// Like [`IncrementalConstructor::construct_parallel`], restricted to
    /// tasks the capability oracle deems feasible.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] when the goals are unreachable with
    /// feasible tasks only.
    pub fn construct_parallel_filtered<S: ParallelFragmentSource>(
        &self,
        source: &S,
        spec: &Spec,
        mut feasible: impl FnMut(&TaskId) -> bool,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        let workers = self.effective_workers();
        if workers <= 1 {
            // Single-worker fast path: query the shards inline.
            return self.drive(spec, &mut feasible, |labels| {
                let mut hits = Vec::new();
                for shard in 0..source.shard_count() {
                    source.shard_consuming(shard, labels, &mut hits);
                }
                finish_hits(hits)
            });
        }
        // Worker-pool mode. The pool lives for the whole construction;
        // each round broadcasts one job (the shared frontier plus an
        // atomic cursor the workers drain), and the driver collects one
        // candidate batch per worker before merging.
        crossbeam::thread::scope(|scope| {
            // A batch of `None` is a poison marker: the worker's query
            // closure panicked. Making the failure an explicit message
            // keeps the driver from blocking forever on a batch that
            // will never arrive (the other workers hold the channel
            // open, so mere sender-drop would not disconnect it).
            let (result_tx, result_rx) =
                crossbeam::channel::unbounded::<Option<Vec<(u64, Arc<Fragment>)>>>();
            let mut job_txs = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (job_tx, job_rx) = crossbeam::channel::unbounded::<FrontierJob>();
                let result_tx = result_tx.clone();
                job_txs.push(job_tx);
                scope.spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut out = Vec::new();
                            loop {
                                // Drain the shared frontier: claim the
                                // next open label and query every shard
                                // for its candidate fragments.
                                let i = job.cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(label) = job.frontier.get(i) else {
                                    break;
                                };
                                let label = std::slice::from_ref(label);
                                for shard in 0..source.shard_count() {
                                    source.shard_consuming(shard, label, &mut out);
                                }
                            }
                            out
                        }));
                        match batch {
                            Ok(out) => {
                                if result_tx.send(Some(out)).is_err() {
                                    break;
                                }
                            }
                            Err(_) => {
                                let _ = result_tx.send(None);
                                break;
                            }
                        }
                    }
                });
            }
            drop(result_tx);
            let result = self.drive(spec, &mut feasible, |labels| {
                let job = FrontierJob {
                    frontier: Arc::new(labels.to_vec()),
                    cursor: Arc::new(AtomicUsize::new(0)),
                };
                for tx in &job_txs {
                    tx.send(job.clone()).expect("frontier worker alive");
                }
                let mut hits = Vec::new();
                for _ in 0..workers {
                    let batch = result_rx
                        .recv()
                        .expect("frontier worker reply")
                        .expect("frontier worker panicked during shard query");
                    hits.extend(batch);
                }
                finish_hits(hits)
            });
            // Dropping the job senders disconnects the workers' receive
            // loops; the scope then joins them.
            drop(job_txs);
            result
        })
    }

    /// The shared round loop: query the frontier (however the caller
    /// realizes the query), batch-merge the candidates, resume the
    /// coloring, repeat until the goals are green or the frontier dries
    /// up.
    fn drive(
        &self,
        spec: &Spec,
        feasible: &mut dyn FnMut(&TaskId) -> bool,
        mut query: impl FnMut(&[Label]) -> Vec<Arc<Fragment>>,
    ) -> Result<(Construction, Supergraph), ConstructError> {
        let mut sg = Supergraph::new();
        let mut state = ColorState::with_len(0);
        let mut scratch = ExploreScratch::new();
        let mut queried: FxHashSet<Label> = FxHashSet::default();
        if let Some(h) = self.hints {
            sg.reserve(h.fragments, h.nodes, h.edges);
            state.reserve(h.nodes);
            queried.reserve(h.nodes / 2);
        }
        let mut trace = self.record_trace.then(Trace::new);
        let mut stats = ConstructStats::default();
        let mut last_outcome: Option<ExploreOutcome> = None;
        // Labels turned green by the latest explore pass — the candidate
        // frontier of the next round. Seeded with the triggers; afterwards
        // maintained from `ExploreOutcome::new_green_labels`, so a round
        // costs O(newly green) instead of a full supergraph scan.
        let mut frontier_candidates: Vec<Label> = spec.triggers().iter().cloned().collect();

        loop {
            // Frontier = newly green labels (plus, initially, the
            // triggers) whose consumers we have not asked the community
            // about yet, deduplicated across rounds.
            let frontier: Vec<Label> = frontier_candidates
                .drain(..)
                .filter(|l| queried.insert(l.clone()))
                .collect();

            if frontier.is_empty() {
                break;
            }

            let fragments = query(&frontier);
            stats.query_rounds += 1;
            // Batched merge: conflicting knowhow from different hosts is
            // skipped rather than failing the whole construction; the
            // first-merged definition wins.
            let new_fragments = sg.merge_fragments_batch(&fragments);
            stats.fragments_pulled += new_fragments;
            if let Some(t) = trace.as_mut() {
                t.push(TraceEvent::QueryRound {
                    labels: frontier.len(),
                    fragments: new_fragments,
                });
            }

            let outcome = explore_with(
                sg.graph(),
                &mut state,
                spec,
                feasible,
                self.order,
                trace.as_mut(),
                &mut scratch,
            );
            stats.explore_steps += outcome.steps;
            frontier_candidates.extend_from_slice(&outcome.new_green_labels);
            let done = outcome.unreachable_goals.is_empty();
            last_outcome = Some(outcome);
            if done {
                break;
            }
        }

        let outcome = match last_outcome {
            Some(o) => o,
            None => {
                // No queries at all (no triggers): only trivial specs can
                // succeed. Run one explore pass over the empty graph to get
                // a well-formed outcome.
                explore_with(
                    sg.graph(),
                    &mut state,
                    spec,
                    feasible,
                    self.order,
                    trace.as_mut(),
                    &mut scratch,
                )
            }
        };

        stats.colored_green = state.count(Color::Green);
        stats.supergraph_nodes = sg.graph().node_count();
        stats.supergraph_edges = sg.graph().edge_count();

        let construction = finish(&sg, spec, state, outcome, stats, trace)?;
        Ok((construction, sg))
    }
}

/// One round's worth of work for the frontier worker pool: the open
/// labels of the round and the shared cursor the workers drain them
/// through.
#[derive(Clone, Debug)]
struct FrontierJob {
    frontier: Arc<Vec<Label>>,
    cursor: Arc<AtomicUsize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;
    use crate::store::InMemoryFragmentStore;

    fn frag(id: &str, task: &str, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(
            id,
            task,
            Mode::Disjunctive,
            ins.iter().copied(),
            outs.iter().copied(),
        )
        .unwrap()
    }

    fn chain_store(n: usize) -> InMemoryFragmentStore {
        let mut store = InMemoryFragmentStore::new();
        for i in 0..n {
            store.insert(frag(
                &format!("f{i}"),
                &format!("t{i}"),
                &[&format!("l{i}")],
                &[&format!("l{}", i + 1)],
            ));
        }
        store
    }

    #[test]
    fn incremental_solves_chain() {
        let mut store = chain_store(5);
        let spec = Spec::new(["l0"], ["l5"]);
        let (c, sg) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.is_satisfied_strict(c.workflow()));
        assert_eq!(c.workflow().task_count(), 5);
        assert_eq!(sg.fragment_count(), 5);
        assert_eq!(c.stats().query_rounds, 5, "one round per frontier step");
    }

    #[test]
    fn incremental_pulls_only_needed_fragments() {
        // A 10-step chain plus an unrelated island: the island is never
        // queried because its labels never become green.
        let mut store = chain_store(10);
        for i in 0..20 {
            store.insert(frag(
                &format!("island{i}"),
                &format!("it{i}"),
                &[&format!("ix{i}")],
                &[&format!("iy{i}")],
            ));
        }
        let spec = Spec::new(["l0"], ["l3"]);
        let (c, sg) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.accepts(c.workflow()));
        assert!(
            sg.fragment_count() <= 5,
            "pulled {} fragments, expected only the prefix of the chain",
            sg.fragment_count()
        );
        assert_eq!(c.stats().fragments_pulled, sg.fragment_count());
    }

    #[test]
    fn incremental_detects_no_solution() {
        let mut store = chain_store(3);
        let spec = Spec::new(["l0"], ["unknown goal"]);
        let err = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap_err();
        assert!(matches!(err, ConstructError::NoSolution { .. }));
    }

    #[test]
    fn incremental_matches_full_construction_feasibility() {
        // Same knowledge, both strategies: both must succeed with
        // equivalent insets/outsets.
        let store = chain_store(6);
        let spec = Spec::new(["l1"], ["l4"]);

        let sg = Supergraph::from_fragments(store.fragments()).unwrap();
        let full = crate::construct::Constructor::new()
            .construct(&sg, &spec)
            .unwrap();

        let mut store = store;
        let (inc, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();

        assert_eq!(full.workflow().inset(), inc.workflow().inset());
        assert_eq!(full.workflow().outset(), inc.workflow().outset());
        assert_eq!(full.workflow().task_count(), inc.workflow().task_count());
    }

    #[test]
    fn trivial_spec_with_no_knowledge() {
        let mut store = InMemoryFragmentStore::new();
        let spec = Spec::new(["a"], ["a"]);
        let (c, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert_eq!(c.workflow().task_count(), 0);
        assert!(c.workflow().contains_label(&Label::new("a")));
    }

    #[test]
    fn conjunctive_join_needs_second_round_of_queries() {
        // join needs x and y; y's producer is only discoverable from b,
        // which is a separate trigger.
        let mut store = InMemoryFragmentStore::new();
        store.insert(
            Fragment::single_task("fx", "make x", Mode::Disjunctive, ["a"], ["x"]).unwrap(),
        );
        store.insert(
            Fragment::single_task("fy", "make y", Mode::Disjunctive, ["b"], ["y"]).unwrap(),
        );
        store.insert(
            Fragment::single_task("fj", "join", Mode::Conjunctive, ["x", "y"], ["z"]).unwrap(),
        );
        let spec = Spec::new(["a", "b"], ["z"]);
        let (c, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert!(spec.accepts(c.workflow()));
        assert_eq!(c.workflow().task_count(), 3);
    }

    #[test]
    fn infeasible_task_blocks_and_alternative_wins() {
        let mut store = InMemoryFragmentStore::new();
        store.insert(frag("f1", "infeasible", &["a"], &["goal"]));
        store.insert(frag("f2", "step1", &["a"], &["mid"]));
        store.insert(frag("f3", "step2", &["mid"], &["goal"]));
        let spec = Spec::new(["a"], ["goal"]);
        let (c, _) = IncrementalConstructor::new()
            .construct_filtered(&mut store, &spec, |t| t != &TaskId::new("infeasible"))
            .unwrap();
        assert!(c.workflow().contains_task(&TaskId::new("step1")));
        assert!(!c.workflow().contains_task(&TaskId::new("infeasible")));
    }

    #[test]
    fn parallel_construction_matches_sequential_on_chain() {
        use crate::store::ShardedFragmentStore;
        let fragments: Vec<Fragment> = (0..24)
            .map(|i| {
                frag(
                    &format!("f{i}"),
                    &format!("t{i}"),
                    &[&format!("l{i}")],
                    &[&format!("l{}", i + 1)],
                )
            })
            .collect();
        let spec = Spec::new(["l0"], ["l24"]);
        let mut seq_store: InMemoryFragmentStore = fragments.iter().cloned().collect();
        let (seq, seq_sg) = IncrementalConstructor::new()
            .construct(&mut seq_store, &spec)
            .unwrap();
        for workers in [1usize, 2, 4] {
            for shards in [1usize, 3] {
                let mut store = ShardedFragmentStore::with_shards(shards);
                store.extend(fragments.iter().cloned());
                let (par, par_sg) = IncrementalConstructor::new()
                    .workers(workers)
                    .construct_parallel(&store, &spec)
                    .unwrap();
                assert!(spec.accepts(par.workflow()));
                let seq_tasks: Vec<TaskId> = seq.workflow().tasks().collect();
                let par_tasks: Vec<TaskId> = par.workflow().tasks().collect();
                assert_eq!(seq_tasks, par_tasks, "workers={workers} shards={shards}");
                assert_eq!(
                    seq_sg.fragment_count(),
                    par_sg.fragment_count(),
                    "workers={workers} shards={shards}"
                );
                assert_eq!(
                    seq.stats(),
                    par.stats(),
                    "workers={workers} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn parallel_construction_detects_no_solution() {
        use crate::store::ShardedFragmentStore;
        let store: ShardedFragmentStore = (0..3)
            .map(|i| {
                frag(
                    &format!("f{i}"),
                    &format!("t{i}"),
                    &[&format!("l{i}")],
                    &[&format!("l{}", i + 1)],
                )
            })
            .collect();
        let spec = Spec::new(["l0"], ["unknown goal"]);
        let err = IncrementalConstructor::new()
            .workers(2)
            .construct_parallel(&store, &spec)
            .unwrap_err();
        assert!(matches!(err, ConstructError::NoSolution { .. }));
    }

    #[test]
    fn parallel_construction_respects_feasibility_filter() {
        use crate::store::ShardedFragmentStore;
        let mut store = ShardedFragmentStore::with_shards(2);
        store.insert(frag("f1", "infeasible", &["a"], &["goal"]));
        store.insert(frag("f2", "step1", &["a"], &["mid"]));
        store.insert(frag("f3", "step2", &["mid"], &["goal"]));
        let spec = Spec::new(["a"], ["goal"]);
        let (c, _) = IncrementalConstructor::new()
            .workers(2)
            .construct_parallel_filtered(&store, &spec, |t| t != &TaskId::new("infeasible"))
            .unwrap();
        assert!(c.workflow().contains_task(&TaskId::new("step1")));
        assert!(!c.workflow().contains_task(&TaskId::new("infeasible")));
    }

    #[test]
    fn pre_sized_construction_matches_unsized() {
        let mut store = chain_store(12);
        let spec = Spec::new(["l0"], ["l12"]);
        let (sized, _) = IncrementalConstructor::new()
            .pre_size(SizeHints::for_fragments(12))
            .construct(&mut store, &spec)
            .unwrap();
        let (plain, _) = IncrementalConstructor::new()
            .construct(&mut store, &spec)
            .unwrap();
        assert_eq!(sized.stats(), plain.stats());
        assert_eq!(
            sized.workflow().tasks().collect::<Vec<_>>(),
            plain.workflow().tasks().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_records_query_rounds() {
        let mut store = chain_store(3);
        let spec = Spec::new(["l0"], ["l3"]);
        let (c, _) = IncrementalConstructor::new()
            .record_trace(true)
            .construct(&mut store, &spec)
            .unwrap();
        let trace = c.trace().unwrap();
        let rounds = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::QueryRound { .. }))
            .count();
        assert_eq!(rounds, c.stats().query_rounds);
    }
}
