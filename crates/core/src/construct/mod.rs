//! Algorithm 1: workflow construction by supergraph coloring (§3.1).
//!
//! Construction proceeds in two phases over the supergraph `G` built from
//! the fragment set `K`:
//!
//! 1. **Exploration** — starting from the triggering conditions ι, nodes are
//!    colored *green* and annotated with a distance. A disjunctive node
//!    (labels, and disjunctive tasks) is reachable as soon as any parent is
//!    green; a conjunctive task requires all parents green. The phase stops
//!    as soon as every goal label in ω is green, or no coloring rule
//!    applies (no solution).
//! 2. **Pruning (back-sweep)** — the goals are colored *purple* and the
//!    sweep walks backwards: each purple node selects its *required
//!    parents* (none if distance 0; the minimum-distance parent if
//!    disjunctive; all parents if conjunctive), colors the connecting edges
//!    *blue*, turns green parents purple, and finally becomes *blue*
//!    itself. The blue nodes and edges are the constructed workflow.
//!
//! The paper's pseudo-code picks nodes nondeterministically; [`PickOrder`]
//! exposes that freedom (FIFO, LIFO, or seeded-random) so tests can check
//! that every admissible order yields a valid result.

pub mod color;
pub mod explore;
pub mod incremental;
pub mod sweep;
pub mod trace;

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use crate::fragment::FragmentId;
use crate::graph::NodeIdx;
use crate::ids::{Label, TaskId};
use crate::spec::Spec;
use crate::supergraph::Supergraph;
use crate::validate::ValidityError;
use crate::workflow::Workflow;

pub use color::{Color, ColorState, Distance};
pub use trace::{Trace, TraceEvent};

/// The order in which the "nondeterministic" node choices of Algorithm 1
/// are resolved.
///
/// All orders produce *a* feasible workflow; they may produce different
/// ones when the knowledge base admits alternatives, exactly as the paper's
/// nondeterministic semantics allows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PickOrder {
    /// Breadth-first: process nodes in the order they become eligible.
    #[default]
    Fifo,
    /// Depth-first: process the most recently eligible node first.
    Lifo,
    /// Shuffle eligible nodes with a deterministic xorshift PRNG seeded by
    /// the given value.
    Random(u64),
}

/// Statistics describing one construction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstructStats {
    /// Worklist pops (guard evaluations) during exploration.
    pub explore_steps: u64,
    /// Nodes colored green by the exploration phase.
    pub colored_green: usize,
    /// Nodes in the final (blue) workflow.
    pub blue_nodes: usize,
    /// Edges in the final (blue) workflow.
    pub blue_edges: usize,
    /// Supergraph size when construction finished.
    pub supergraph_nodes: usize,
    /// Supergraph edge count when construction finished.
    pub supergraph_edges: usize,
    /// Frontier query rounds (incremental construction only).
    pub query_rounds: usize,
    /// Fragments pulled from the community (incremental construction only).
    pub fragments_pulled: usize,
}

/// A successfully constructed workflow with provenance and statistics.
#[derive(Clone, Debug)]
pub struct Construction {
    workflow: Workflow,
    fragments_used: Vec<FragmentId>,
    stats: ConstructStats,
    trace: Option<Trace>,
}

impl Construction {
    /// The constructed, valid workflow satisfying the specification.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Consumes the construction, returning the workflow.
    pub fn into_workflow(self) -> Workflow {
        self.workflow
    }

    /// Fragments from the community knowledge that contributed a node or
    /// edge to the final workflow, sorted by id.
    pub fn fragments_used(&self) -> &[FragmentId] {
        &self.fragments_used
    }

    /// Statistics about the run.
    pub fn stats(&self) -> &ConstructStats {
        &self.stats
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

/// Failure to construct a workflow.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstructError {
    /// Exploration terminated without reaching every goal: "there is no
    /// solution" (Algorithm 1).
    NoSolution {
        /// Goals that were not reachable from ι with the available
        /// knowledge and capabilities.
        unreachable_goals: Vec<Label>,
    },
    /// The blue subgraph failed validation. This indicates a bug in the
    /// algorithm (the paper proves it cannot happen) and is surfaced
    /// instead of panicking so that it can be reported.
    InvalidResult(ValidityError),
}

impl fmt::Display for ConstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstructError::NoSolution { unreachable_goals } => {
                let gs: Vec<&str> = unreachable_goals.iter().map(|l| l.as_str()).collect();
                write!(
                    f,
                    "no feasible workflow: unreachable goals {{{}}}",
                    gs.join(", ")
                )
            }
            ConstructError::InvalidResult(e) => {
                write!(f, "constructed subgraph is not a valid workflow: {e}")
            }
        }
    }
}

impl Error for ConstructError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConstructError::InvalidResult(e) => Some(e),
            _ => None,
        }
    }
}

/// Runs Algorithm 1 over a fully collected supergraph.
///
/// A `Constructor` is a small configuration object: choose a [`PickOrder`],
/// optionally enable tracing, then call [`Constructor::construct`] (all
/// tasks assumed feasible) or [`Constructor::construct_filtered`] (tasks
/// filtered by a capability oracle, realizing the architecture's "service
/// feasibility messages" — see §2.1's wait-staff example).
#[derive(Clone, Debug, Default)]
pub struct Constructor {
    order: PickOrder,
    record_trace: bool,
}

impl Constructor {
    /// Creates a constructor with FIFO pick order and no tracing.
    pub fn new() -> Self {
        Constructor::default()
    }

    /// Sets the node pick order.
    pub fn pick_order(mut self, order: PickOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables trace recording (see [`Construction::trace`]).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Constructs a workflow satisfying `spec` from the supergraph,
    /// assuming every task is feasible.
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] if the goals are not reachable.
    pub fn construct(
        &self,
        supergraph: &Supergraph,
        spec: &Spec,
    ) -> Result<Construction, ConstructError> {
        self.construct_filtered(supergraph, spec, |_| true)
    }

    /// Constructs a workflow, considering only tasks for which
    /// `feasible` returns `true` (i.e. some community member offers a
    /// matching service).
    ///
    /// # Errors
    ///
    /// [`ConstructError::NoSolution`] if the goals are not reachable using
    /// feasible tasks only.
    pub fn construct_filtered(
        &self,
        supergraph: &Supergraph,
        spec: &Spec,
        mut feasible: impl FnMut(&TaskId) -> bool,
    ) -> Result<Construction, ConstructError> {
        let g = supergraph.graph();
        let mut state = ColorState::with_len(g.node_count());
        let mut trace = self.record_trace.then(Trace::new);

        let outcome = explore::explore(
            g,
            &mut state,
            spec,
            &mut feasible,
            self.order,
            trace.as_mut(),
        );

        let mut stats = ConstructStats {
            explore_steps: outcome.steps,
            colored_green: outcome.colored_green,
            supergraph_nodes: g.node_count(),
            supergraph_edges: g.edge_count(),
            ..ConstructStats::default()
        };

        finish(
            supergraph,
            spec,
            state,
            outcome,
            stats_take(&mut stats),
            trace,
        )
    }
}

/// Shared tail of full and incremental construction: check goal
/// reachability, run the back-sweep, extract and validate the blue
/// workflow, and assemble the [`Construction`].
///
/// This is public so that *distributed* drivers (the runtime's Workflow
/// Manager, which interleaves network fragment queries with resumed
/// [`explore::explore`] rounds) can finish a construction exactly like the
/// local constructors do.
///
/// # Errors
///
/// [`ConstructError::NoSolution`] when `outcome` reports unreachable goals;
/// [`ConstructError::InvalidResult`] if the blue subgraph fails validation
/// (an algorithm-bug guard that the paper's proof says cannot trigger).
pub fn finish(
    supergraph: &Supergraph,
    spec: &Spec,
    mut state: ColorState,
    outcome: explore::ExploreOutcome,
    mut stats: ConstructStats,
    mut trace: Option<Trace>,
) -> Result<Construction, ConstructError> {
    let g = supergraph.graph();

    if !outcome.unreachable_goals.is_empty() {
        return Err(ConstructError::NoSolution {
            unreachable_goals: outcome.unreachable_goals,
        });
    }

    // Goal nodes present in the graph (goals that are triggers but absent
    // from the graph are handled below as isolated trivial labels).
    let goal_nodes: Vec<NodeIdx> = spec
        .goals()
        .iter()
        .filter_map(|l| g.find_label(l))
        .collect();

    sweep::back_sweep(g, &mut state, &goal_nodes, trace.as_mut());

    // Extract blue nodes/edges.
    let blue_nodes: HashSet<NodeIdx> = g
        .node_indices()
        .filter(|&i| state.color(i) == Color::Blue)
        .collect();
    let blue_edges: HashSet<(NodeIdx, NodeIdx)> = state.blue_edges().iter().copied().collect();
    stats.blue_nodes = blue_nodes.len();
    stats.blue_edges = blue_edges.len();

    let mut result_graph = g.subgraph(&blue_nodes, &blue_edges);
    // Trivially satisfied goals that do not appear in the supergraph at
    // all: deliverable directly from the triggers; represent them as
    // isolated label nodes (a single label is a valid workflow).
    for goal in spec.goals() {
        if g.find_label(goal).is_none() {
            debug_assert!(spec.triggers().contains(goal), "explore checked this");
            result_graph.add_label(goal.clone());
        }
    }

    let workflow = Workflow::from_graph(result_graph).map_err(ConstructError::InvalidResult)?;
    debug_assert!(
        spec.accepts(&workflow),
        "constructed workflow must satisfy its spec: {workflow} vs {spec}"
    );

    let fragments_used =
        supergraph.covering_fragments(blue_nodes.iter().copied(), blue_edges.iter().copied());

    Ok(Construction {
        workflow,
        fragments_used,
        stats,
        trace,
    })
}

fn stats_take(stats: &mut ConstructStats) -> ConstructStats {
    std::mem::take(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::ids::Mode;

    fn frag(id: &str, task: &str, mode: Mode, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(id, task, mode, ins.iter().copied(), outs.iter().copied()).unwrap()
    }

    fn chain_supergraph() -> Supergraph {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        sg.merge_fragment(&frag("f3", "t3", Mode::Disjunctive, &["c"], &["d"]));
        sg
    }

    #[test]
    fn constructs_simple_chain() {
        let sg = chain_supergraph();
        let spec = Spec::new(["a"], ["d"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert!(spec.is_satisfied_strict(c.workflow()));
        assert_eq!(c.workflow().task_count(), 3);
        assert_eq!(
            c.fragments_used(),
            &[
                FragmentId::new("f1"),
                FragmentId::new("f2"),
                FragmentId::new("f3")
            ]
        );
    }

    #[test]
    fn partial_chain_from_middle_trigger() {
        let sg = chain_supergraph();
        let spec = Spec::new(["c"], ["d"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert_eq!(c.workflow().task_count(), 1);
        assert!(c.workflow().contains_task(&TaskId::new("t3")));
    }

    #[test]
    fn unreachable_goal_is_no_solution() {
        let sg = chain_supergraph();
        let spec = Spec::new(["b"], ["a"]); // nothing produces a
        let err = Constructor::new().construct(&sg, &spec).unwrap_err();
        match err {
            ConstructError::NoSolution { unreachable_goals } => {
                assert_eq!(unreachable_goals, vec![Label::new("a")]);
            }
            other => panic!("expected NoSolution, got {other:?}"),
        }
    }

    #[test]
    fn goal_equal_to_trigger_is_trivial() {
        let sg = chain_supergraph();
        let spec = Spec::new(["a"], ["a"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert_eq!(c.workflow().task_count(), 0);
        assert!(c.workflow().contains_label(&Label::new("a")));
        assert!(spec.accepts(c.workflow()));
    }

    #[test]
    fn goal_trigger_absent_from_supergraph_is_still_trivial() {
        let sg = chain_supergraph();
        let spec = Spec::new(["zz"], ["zz"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert!(c.workflow().contains_label(&Label::new("zz")));
        assert_eq!(c.workflow().task_count(), 0);
    }

    #[test]
    fn disjunctive_alternatives_pick_one_producer() {
        // Two ways to produce x; the result must keep exactly one (a label
        // may have at most one incoming edge).
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["a"], &["x"]));
        let spec = Spec::new(["a"], ["x"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert_eq!(c.workflow().task_count(), 1);
        assert!(spec.is_satisfied_strict(c.workflow()));
    }

    #[test]
    fn conjunctive_task_requires_all_inputs() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["y"]));
        sg.merge_fragment(&frag("f3", "join", Mode::Conjunctive, &["x", "y"], &["z"]));

        // Both a and b available: solvable, and the workflow must contain
        // both producing chains.
        let spec = Spec::new(["a", "b"], ["z"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert_eq!(c.workflow().task_count(), 3);

        // Only a available: x reachable but z is not (y missing).
        let spec = Spec::new(["a"], ["z"]);
        assert!(matches!(
            Constructor::new().construct(&sg, &spec),
            Err(ConstructError::NoSolution { .. })
        ));
    }

    #[test]
    fn cycle_in_supergraph_is_handled() {
        // a -> t1 -> b -> t2 -> a  (cycle), plus b -> t3 -> goal
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["a"]));
        sg.merge_fragment(&frag("f3", "t3", Mode::Disjunctive, &["b"], &["goal"]));
        let spec = Spec::new(["a"], ["goal"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        assert!(c.workflow().graph().is_acyclic());
        assert!(spec.accepts(c.workflow()));
        // t2 (the back-edge) must not appear: it would re-produce `a`.
        assert!(!c.workflow().contains_task(&TaskId::new("t2")));
    }

    #[test]
    fn infeasible_tasks_are_avoided() {
        // Two producers for x; t1 infeasible -> t2 must be chosen.
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["a"], &["x"]));
        let spec = Spec::new(["a"], ["x"]);
        let c = Constructor::new()
            .construct_filtered(&sg, &spec, |t| t != &TaskId::new("t1"))
            .unwrap();
        assert!(c.workflow().contains_task(&TaskId::new("t2")));
        assert!(!c.workflow().contains_task(&TaskId::new("t1")));

        // Neither feasible -> no solution.
        let err = Constructor::new()
            .construct_filtered(&sg, &spec, |_| false)
            .unwrap_err();
        assert!(matches!(err, ConstructError::NoSolution { .. }));
    }

    #[test]
    fn all_pick_orders_yield_valid_workflows() {
        let sg = chain_supergraph();
        let spec = Spec::new(["a"], ["d"]);
        for order in [
            PickOrder::Fifo,
            PickOrder::Lifo,
            PickOrder::Random(1),
            PickOrder::Random(42),
            PickOrder::Random(0xdead_beef),
        ] {
            let c = Constructor::new()
                .pick_order(order)
                .construct(&sg, &spec)
                .unwrap();
            assert!(spec.is_satisfied_strict(c.workflow()), "order {order:?}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let sg = chain_supergraph();
        let spec = Spec::new(["a"], ["d"]);
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        let s = c.stats();
        assert!(s.explore_steps > 0);
        assert_eq!(s.supergraph_nodes, sg.graph().node_count());
        assert_eq!(s.blue_nodes, 7); // 4 labels + 3 tasks
        assert_eq!(s.blue_edges, 6);
    }

    #[test]
    fn trace_is_recorded_when_enabled() {
        let sg = chain_supergraph();
        let spec = Spec::new(["a"], ["d"]);
        let c = Constructor::new()
            .record_trace(true)
            .construct(&sg, &spec)
            .unwrap();
        let trace = c.trace().expect("trace enabled");
        assert!(!trace.events().is_empty());
        let c2 = Constructor::new().construct(&sg, &spec).unwrap();
        assert!(c2.trace().is_none());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConstructError::NoSolution {
            unreachable_goals: vec![Label::new("g1"), Label::new("g2")],
        };
        assert_eq!(
            e.to_string(),
            "no feasible workflow: unreachable goals {g1, g2}"
        );
    }
}
