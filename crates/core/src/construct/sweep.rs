//! The pruning (back-sweep) phase of Algorithm 1.
//!
//! "Once we have reached all the elements of ω, we prune the reachable set
//! down to a valid workflow. Working backwards with a new color, we
//! identify only those paths which are actually required to reach ω. The
//! pruning phase removes cycles, ensures only one task produces each
//! output, and excludes undesirable outputs."
//!
//! Each purple node picks its required parents — none if it is a trigger
//! (distance 0), the minimum-distance parent if disjunctive, all parents if
//! conjunctive — colors those edges blue, promotes green parents to purple,
//! and becomes blue. Termination follows from distances strictly
//! decreasing towards ι.

use crate::construct::color::{Color, ColorState, Distance};
use crate::construct::explore::effective_mode;
use crate::construct::trace::{Trace, TraceEvent};
use crate::graph::{Graph, NodeIdx};
use crate::ids::Mode;

/// Runs the back-sweep from the goal nodes, which must all be green (or be
/// goal labels that are also triggers, i.e. green at distance 0).
///
/// On return, the blue nodes plus [`ColorState::blue_edges`] form the
/// constructed workflow.
///
/// # Panics
///
/// Panics (debug assertions) if invoked on a state where some goal is not
/// green — the exploration phase must succeed first.
pub fn back_sweep(
    g: &Graph,
    state: &mut ColorState,
    goals: &[NodeIdx],
    mut trace: Option<&mut Trace>,
) {
    let mut purple: Vec<NodeIdx> = Vec::new();
    for &n in goals {
        debug_assert_eq!(
            state.color(n),
            Color::Green,
            "goal {:?} must be green before pruning",
            g.key(n)
        );
        if state.color(n) == Color::Green {
            state.set_color(n, Color::Purple);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::Colored {
                    node: g.key(n).clone(),
                    color: Color::Purple,
                    distance: state.distance(n),
                });
            }
            purple.push(n);
        }
    }

    // "until purpleNodes = ∅ for some n ∈ purpleNodes do …"
    while let Some(n) = purple.pop() {
        let d = state.distance(n);
        debug_assert!(d.is_finite(), "purple node {:?} must be reached", g.key(n));

        let required: Vec<NodeIdx> = if d == Distance::ZERO {
            //

            // Triggers need no parents: they are supplied by the
            // environment.
            Vec::new()
        } else {
            match effective_mode(g, n) {
                Mode::Disjunctive => vec![min_distance_parent(g, state, n)],
                Mode::Conjunctive => g.parents(n).to_vec(),
            }
        };

        for p in required {
            state.color_edge_blue(p, n);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::EdgeBlue {
                    from: g.key(p).clone(),
                    to: g.key(n).clone(),
                });
            }
            debug_assert!(
                state.distance(p) < d || effective_mode(g, n) == Mode::Conjunctive,
                "required parent must be strictly closer for disjunctive nodes"
            );
            if state.color(p) == Color::Green {
                state.set_color(p, Color::Purple);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::Colored {
                        node: g.key(p).clone(),
                        color: Color::Purple,
                        distance: state.distance(p),
                    });
                }
                purple.push(p);
            }
        }

        state.set_color(n, Color::Blue);
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::Colored {
                node: g.key(n).clone(),
                color: Color::Blue,
                distance: state.distance(n),
            });
        }
    }
}

/// "requiredParents ← {the parent of n with minimum distance}".
///
/// Uncolored parents carry distance ∞, so any green/purple/blue parent wins
/// over them; ties break on the lower node index for determinism.
fn min_distance_parent(g: &Graph, state: &ColorState, n: NodeIdx) -> NodeIdx {
    let mut best: Option<(Distance, NodeIdx)> = None;
    for &p in g.parents(n) {
        let d = state.distance(p);
        let better = match best {
            None => true,
            Some((bd, bi)) => d < bd || (d == bd && p < bi),
        };
        if better {
            best = Some((d, p));
        }
    }
    let (d, p) = best.expect("reached non-trigger node must have parents");
    debug_assert!(d.is_finite(), "required parent must be reached");
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::explore::explore;
    use crate::construct::PickOrder;
    use crate::fragment::Fragment;
    use crate::ids::{Label, TaskId};
    use crate::spec::Spec;
    use crate::supergraph::Supergraph;

    fn frag(id: &str, task: &str, mode: Mode, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(id, task, mode, ins.iter().copied(), outs.iter().copied()).unwrap()
    }

    fn run(sg: &Supergraph, spec: &Spec) -> ColorState {
        let g = sg.graph();
        let mut state = ColorState::with_len(g.node_count());
        let out = explore(g, &mut state, spec, &mut |_| true, PickOrder::Fifo, None);
        assert!(out.unreachable_goals.is_empty(), "setup must be solvable");
        let goals: Vec<NodeIdx> = spec
            .goals()
            .iter()
            .filter_map(|l| g.find_label(l))
            .collect();
        back_sweep(g, &mut state, &goals, None);
        state
    }

    #[test]
    fn sweep_reaches_back_to_triggers() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let spec = Spec::new(["a"], ["c"]);
        let state = run(&sg, &spec);
        let g = sg.graph();
        for name in ["a", "b", "c"] {
            let idx = g.find_label(&Label::new(name)).unwrap();
            assert_eq!(state.color(idx), Color::Blue, "label {name}");
        }
        assert_eq!(state.blue_edges().len(), 4);
    }

    #[test]
    fn disjunctive_label_keeps_single_producer() {
        // Both t1 and t2 produce x; only the closer one stays blue.
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f0", "t0", Mode::Disjunctive, &["a"], &["mid"]));
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["mid"], &["x"])); // farther
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["a"], &["x"])); // closer
        let spec = Spec::new(["a"], ["x"]);
        let state = run(&sg, &spec);
        let g = sg.graph();
        let x = g.find_label(&Label::new("x")).unwrap();
        let blue_in: Vec<_> = state
            .blue_edges()
            .iter()
            .filter(|(_, to)| *to == x)
            .collect();
        assert_eq!(blue_in.len(), 1, "exactly one producer survives");
        let t2 = g.find_task(&TaskId::new("t2")).unwrap();
        assert_eq!(state.color(t2), Color::Blue);
        let t1 = g.find_task(&TaskId::new("t1")).unwrap();
        assert_ne!(state.color(t1), Color::Blue);
    }

    #[test]
    fn trigger_goals_are_isolated_blue() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        let spec = Spec::new(["a"], ["a"]);
        let state = run(&sg, &spec);
        let g = sg.graph();
        let a = g.find_label(&Label::new("a")).unwrap();
        assert_eq!(state.color(a), Color::Blue);
        assert!(state.blue_edges().is_empty());
    }

    #[test]
    fn conjunctive_keeps_all_parents() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["x"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["y"]));
        sg.merge_fragment(&frag("fj", "join", Mode::Conjunctive, &["x", "y"], &["z"]));
        let spec = Spec::new(["a", "b"], ["z"]);
        let state = run(&sg, &spec);
        let g = sg.graph();
        let join = g.find_task(&TaskId::new("join")).unwrap();
        let blue_in: Vec<_> = state
            .blue_edges()
            .iter()
            .filter(|(_, to)| *to == join)
            .collect();
        assert_eq!(blue_in.len(), 2, "conjunctive task keeps both inputs");
    }

    #[test]
    fn no_purple_remains_after_sweep() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", Mode::Disjunctive, &["a"], &["b"]));
        sg.merge_fragment(&frag("f2", "t2", Mode::Disjunctive, &["b"], &["c"]));
        let spec = Spec::new(["a"], ["c"]);
        let state = run(&sg, &spec);
        assert_eq!(state.count(Color::Purple), 0);
    }
}
