//! Optional construction traces for debugging, visualization and tests.

use std::fmt;

use crate::construct::color::{Color, Distance};
use crate::ids::NodeKey;

/// One observable step of Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A node changed color (green during exploration; purple/blue during
    /// the back-sweep).
    Colored {
        /// The node.
        node: NodeKey,
        /// New color.
        color: Color,
        /// Node distance at the time of coloring.
        distance: Distance,
    },
    /// An edge joined the constructed workflow.
    EdgeBlue {
        /// Edge origin.
        from: NodeKey,
        /// Edge destination.
        to: NodeKey,
    },
    /// An incremental frontier query round completed.
    QueryRound {
        /// Number of frontier labels queried this round.
        labels: usize,
        /// Number of fragments received.
        fragments: usize,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Colored {
                node,
                color,
                distance,
            } => {
                write!(f, "{node} -> {color} (d={distance})")
            }
            TraceEvent::EdgeBlue { from, to } => write!(f, "edge {from} -> {to} -> blue"),
            TraceEvent::QueryRound { labels, fragments } => {
                write!(f, "queried {labels} labels, received {fragments} fragments")
            }
        }
    }
}

/// An append-only sequence of [`TraceEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events of the given color-change kind.
    pub fn color_count(&self, color: Color) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Colored { color: c, .. } if *c == color))
            .count()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            writeln!(f, "{i:4}: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;

    #[test]
    fn trace_accumulates_and_counts() {
        let mut t = Trace::new();
        t.push(TraceEvent::Colored {
            node: Label::new("a").key(),
            color: Color::Green,
            distance: Distance::ZERO,
        });
        t.push(TraceEvent::Colored {
            node: Label::new("b").key(),
            color: Color::Blue,
            distance: Distance(2),
        });
        t.push(TraceEvent::EdgeBlue {
            from: Label::new("a").key(),
            to: Label::new("b").key(),
        });
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.color_count(Color::Green), 1);
        assert_eq!(t.color_count(Color::Blue), 1);
        assert_eq!(t.color_count(Color::Purple), 0);
    }

    #[test]
    fn display_renders_one_event_per_line() {
        let mut t = Trace::new();
        t.push(TraceEvent::QueryRound {
            labels: 3,
            fragments: 2,
        });
        let s = t.to_string();
        assert!(s.contains("queried 3 labels"), "{s}");
    }
}
