//! Graphviz (DOT) export for workflow graphs, fragments, supergraphs and
//! colored construction states — the ovals-and-boxes notation of the
//! paper's Figure 1.

use std::fmt::Write as _;

use crate::construct::color::{Color, ColorState};
use crate::graph::Graph;
use crate::ids::NodeKind;
use crate::supergraph::Supergraph;
use crate::workflow::Workflow;

/// Renders a graph in DOT: labels as ovals, tasks as boxes.
pub fn graph_to_dot(graph: &Graph, name: &str) -> String {
    render(graph, name, None)
}

/// Renders a workflow in DOT.
pub fn workflow_to_dot(workflow: &Workflow, name: &str) -> String {
    render(workflow.graph(), name, None)
}

/// Renders a supergraph with its construction coloring: green/purple/blue
/// node fills and blue edges, matching the paper's Algorithm 1 narrative.
pub fn colored_to_dot(supergraph: &Supergraph, state: &ColorState, name: &str) -> String {
    render(supergraph.graph(), name, Some(state))
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

fn render(graph: &Graph, name: &str, state: Option<&ColorState>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    for (idx, key) in graph.nodes() {
        let shape = match key.kind() {
            NodeKind::Label => "ellipse",
            NodeKind::Task => "box",
        };
        let fill = state.map(|s| match s.color(idx) {
            Color::Uncolored => "white",
            Color::Green => "palegreen",
            Color::Purple => "plum",
            Color::Blue => "lightblue",
        });
        match fill {
            Some(color) => {
                let _ = writeln!(
                    out,
                    "  \"{}\" [shape={shape}, style=filled, fillcolor={color}];",
                    escape(key.name())
                );
            }
            None => {
                let _ = writeln!(out, "  \"{}\" [shape={shape}];", escape(key.name()));
            }
        }
    }
    let blue_edges: std::collections::HashSet<_> = state
        .map(|s| s.blue_edges().iter().copied().collect())
        .unwrap_or_default();
    for (f, t) in graph.edges() {
        let style = if blue_edges.contains(&(f, t)) {
            " [color=blue, penwidth=2]"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\"{style};",
            escape(graph.key(f).name()),
            escape(graph.key(t).name())
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{Constructor, PickOrder};
    use crate::fragment::Fragment;
    use crate::ids::Mode;
    use crate::spec::Spec;

    fn setup() -> (Supergraph, Spec) {
        let mut sg = Supergraph::new();
        sg.merge_fragment(
            &Fragment::single_task("f1", "t1", Mode::Disjunctive, ["a"], ["b"]).unwrap(),
        );
        sg.merge_fragment(
            &Fragment::single_task("f2", "t2", Mode::Disjunctive, ["b"], ["c"]).unwrap(),
        );
        (sg, Spec::new(["a"], ["c"]))
    }

    #[test]
    fn dot_contains_shapes_and_edges() {
        let (sg, _) = setup();
        let dot = graph_to_dot(sg.graph(), "knowledge base");
        assert!(dot.starts_with("digraph knowledge_base {"), "{dot}");
        assert!(dot.contains("\"a\" [shape=ellipse]"), "{dot}");
        assert!(dot.contains("\"t1\" [shape=box]"), "{dot}");
        assert!(dot.contains("\"a\" -> \"t1\""), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn workflow_dot_renders() {
        let (sg, spec) = setup();
        let c = Constructor::new().construct(&sg, &spec).unwrap();
        let dot = workflow_to_dot(c.workflow(), "wf");
        assert!(dot.contains("\"c\""));
    }

    #[test]
    fn colored_dot_marks_blue_region() {
        let (sg, spec) = setup();
        // Rebuild the coloring manually to access the state.
        let g = sg.graph();
        let mut state = crate::construct::ColorState::with_len(g.node_count());
        let out = crate::construct::explore::explore(
            g,
            &mut state,
            &spec,
            &mut |_| true,
            PickOrder::Fifo,
            None,
        );
        assert!(out.unreachable_goals.is_empty());
        let goals: Vec<_> = spec
            .goals()
            .iter()
            .filter_map(|l| g.find_label(l))
            .collect();
        crate::construct::sweep::back_sweep(g, &mut state, &goals, None);
        let dot = colored_to_dot(&sg, &state, "colored");
        assert!(dot.contains("fillcolor=lightblue"), "{dot}");
        assert!(dot.contains("color=blue"), "{dot}");
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        let mut g = Graph::new();
        g.add_label("say \"hi\"");
        let dot = graph_to_dot(&g, "q");
        assert!(dot.contains("say \\\"hi\\\""), "{dot}");
    }
}
