//! Error types for the open workflow model.

use std::error::Error;
use std::fmt;

use crate::ids::{Label, Mode, NodeKey, TaskId};
use crate::validate::ValidityError;

/// Errors raised while building or mutating workflow graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An edge was added between two nodes of the same kind; workflow graphs
    /// are bipartite (label ↔ task only).
    NotBipartite {
        /// Edge origin.
        from: NodeKey,
        /// Edge destination.
        to: NodeKey,
    },
    /// A task appears with both conjunctive and disjunctive modes.
    ConflictingTaskMode {
        /// The conflicting task.
        task: TaskId,
        /// Mode already recorded for this task.
        existing: Mode,
        /// Mode that was being added.
        requested: Mode,
    },
    /// A named task was not found in the graph.
    UnknownTask(TaskId),
    /// A named label was not found in the graph.
    UnknownLabel(Label),
    /// A pruning operation would violate one of the paper's pruning
    /// constraints (§2.2).
    PruneViolation(PruneViolation),
    /// The mutation produced a structurally invalid workflow.
    Invalid(ValidityError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotBipartite { from, to } => {
                write!(
                    f,
                    "edge {from} -> {to} is not bipartite: edges must connect a label and a task"
                )
            }
            ModelError::ConflictingTaskMode {
                task,
                existing,
                requested,
            } => write!(
                f,
                "task `{task}` is already {existing} and cannot also be {requested}"
            ),
            ModelError::UnknownTask(t) => write!(f, "task `{t}` is not in the graph"),
            ModelError::UnknownLabel(l) => write!(f, "label `{l}` is not in the graph"),
            ModelError::PruneViolation(v) => write!(f, "pruning constraint violated: {v}"),
            ModelError::Invalid(e) => write!(f, "resulting workflow is invalid: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidityError> for ModelError {
    fn from(e: ValidityError) -> Self {
        ModelError::Invalid(e)
    }
}

impl From<PruneViolation> for ModelError {
    fn from(v: PruneViolation) -> Self {
        ModelError::PruneViolation(v)
    }
}

/// The specific pruning constraint (§2.2) that an operation would violate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PruneViolation {
    /// Constraint 1: "task outputs that are sinks can be pruned so long as
    /// every task has at least one output."
    LastOutput(TaskId),
    /// Constraint 2: "task inputs that are sources can be pruned for
    /// disjunctive tasks so long as every task has at least one input."
    LastInput(TaskId),
    /// Constraint 2 applies only to disjunctive tasks: a conjunctive task
    /// requires all of its inputs.
    ConjunctiveInput(TaskId, Label),
    /// The named output is not a sink (it has consumers), so constraint 1
    /// does not permit removing it.
    OutputNotSink(TaskId, Label),
    /// The named input is not a source (it has a producer), so constraint 2
    /// does not permit removing it.
    InputNotSource(TaskId, Label),
    /// The edge to remove does not exist.
    NoSuchEdge(TaskId, Label),
}

impl fmt::Display for PruneViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruneViolation::LastOutput(t) => {
                write!(f, "cannot remove the last output of task `{t}`")
            }
            PruneViolation::LastInput(t) => {
                write!(f, "cannot remove the last input of task `{t}`")
            }
            PruneViolation::ConjunctiveInput(t, l) => write!(
                f,
                "cannot remove input `{l}` of conjunctive task `{t}`: all inputs are required"
            ),
            PruneViolation::OutputNotSink(t, l) => write!(
                f,
                "output `{l}` of task `{t}` is consumed downstream and is not a sink"
            ),
            PruneViolation::InputNotSource(t, l) => write!(
                f,
                "input `{l}` of task `{t}` has a producer and is not a source"
            ),
            PruneViolation::NoSuchEdge(t, l) => {
                write!(f, "no edge between task `{t}` and label `{l}`")
            }
        }
    }
}

impl Error for PruneViolation {}

/// Errors raised while composing workflows (§2.2: "two workflows are
/// composable if and only if matching sinks and sources yields a valid
/// workflow").
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComposeError {
    /// The merged graph violates a workflow validity constraint.
    NotComposable(ValidityError),
    /// A task appears in both operands with different modes.
    ConflictingTaskMode {
        /// The conflicting task.
        task: TaskId,
        /// Mode in the left operand.
        existing: Mode,
        /// Mode in the right operand.
        requested: Mode,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::NotComposable(e) => write!(f, "workflows are not composable: {e}"),
            ComposeError::ConflictingTaskMode {
                task,
                existing,
                requested,
            } => write!(
                f,
                "task `{task}` is {existing} in one workflow and {requested} in the other"
            ),
        }
    }
}

impl Error for ComposeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ComposeError::NotComposable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidityError> for ComposeError {
    fn from(e: ValidityError) -> Self {
        ComposeError::NotComposable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::UnknownLabel(Label::new("x"));
        let msg = e.to_string();
        assert!(msg.starts_with("label"), "{msg}");
        assert!(!msg.ends_with('.'));

        let v = PruneViolation::LastOutput(TaskId::new("t"));
        assert_eq!(v.to_string(), "cannot remove the last output of task `t`");
    }

    #[test]
    fn model_error_wraps_validity_error() {
        let ve = ValidityError::Cyclic;
        let me: ModelError = ve.clone().into();
        assert!(matches!(me, ModelError::Invalid(_)));
        assert!(me.source().is_some());
        let ce: ComposeError = ve.into();
        assert!(ce.source().is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<ModelError>();
        assert_send_sync::<ComposeError>();
        assert_send_sync::<PruneViolation>();
    }
}
