//! Workflow fragments: the distributed units of knowhow.
//!
//! "Workflow fragments are merely small workflows (possibly even a single
//! task) that are intended to be composed into larger workflows at a later
//! time" (§2.2). In the open workflow system every participant carries a set
//! of fragments — its individual knowledge — and the construction algorithm
//! assembles them into a custom workflow on demand.

use std::fmt;

use crate::error::ModelError;
use crate::graph::Graph;
use crate::ids::{Label, Mode, Name, TaskId};
#[cfg(test)]
use crate::validate::ValidityError;
use crate::workflow::Workflow;

/// Identifies a fragment within a community-wide knowledge base.
///
/// Fragment identity is a plain name (unique per owner); the runtime extends
/// it with the owning host. Used for provenance: the construction result
/// reports which fragments contributed to the built workflow. Ids are
/// interned like node names ([`crate::ids::Sym`]), so equality/hashing —
/// which the supergraph performs once per provenance entry — are integer
/// operations, and cloning is a bit copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FragmentId(Name);

impl FragmentId {
    /// Creates a fragment identifier.
    pub fn new(name: impl AsRef<str>) -> Self {
        FragmentId(Name::new(name))
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        self.0.as_str()
    }

    /// The interned symbol backing this identifier.
    pub fn sym(&self) -> crate::ids::Sym {
        self.0.sym()
    }
}

impl fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FragmentId({:?})", self.as_str())
    }
}

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for FragmentId {
    fn from(s: &str) -> Self {
        FragmentId::new(s)
    }
}

impl From<String> for FragmentId {
    fn from(s: String) -> Self {
        FragmentId::new(s)
    }
}

impl From<&String> for FragmentId {
    fn from(s: &String) -> Self {
        FragmentId::new(s)
    }
}

impl From<&FragmentId> for FragmentId {
    fn from(s: &FragmentId) -> Self {
        s.clone()
    }
}

impl From<crate::ids::Interned> for FragmentId {
    /// A bit copy — no interner access; the name was already resolved by
    /// a batch intern (see [`crate::Sym::intern_batch`]).
    fn from(i: crate::ids::Interned) -> Self {
        FragmentId(i.name())
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for FragmentId {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.as_str())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for FragmentId {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = <String as serde::Deserialize>::deserialize(d)?;
        Ok(FragmentId::new(s))
    }
}

/// A named piece of knowhow: a small, valid workflow intended for
/// composition.
#[derive(Clone, Debug)]
pub struct Fragment {
    id: FragmentId,
    workflow: Workflow,
}

impl Fragment {
    /// Wraps an existing workflow as a fragment.
    pub fn from_workflow(id: impl Into<FragmentId>, workflow: Workflow) -> Self {
        Fragment {
            id: id.into(),
            workflow,
        }
    }

    /// Starts building a fragment with the given identifier.
    ///
    /// See [`FragmentBuilder`] for the task-by-task construction API.
    pub fn builder(id: impl Into<FragmentId>) -> FragmentBuilder {
        FragmentBuilder::new(id)
    }

    /// Convenience constructor for the most common fragment shape: a single
    /// task with its input and output labels.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ValidityError`] if `inputs` or `outputs` is empty (a task
    /// may not be a source or a sink).
    pub fn single_task<I, O>(
        id: impl Into<FragmentId>,
        task: impl Into<TaskId>,
        mode: Mode,
        inputs: I,
        outputs: O,
    ) -> Result<Self, ModelError>
    where
        I: IntoIterator,
        I::Item: Into<Label>,
        O: IntoIterator,
        O::Item: Into<Label>,
    {
        FragmentBuilder::new(id)
            .task(task, mode)
            .inputs(inputs)
            .outputs(outputs)
            .done()
            .build()
    }

    /// The fragment identifier.
    pub fn id(&self) -> &FragmentId {
        &self.id
    }

    /// The fragment's workflow view.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// The fragment's underlying graph.
    pub fn graph(&self) -> &Graph {
        self.workflow.graph()
    }

    /// Labels consumed by any task in this fragment (i.e. the fragment's
    /// sources). The incremental construction frontier queries match on
    /// these.
    pub fn consumed_labels(&self) -> Vec<Label> {
        self.workflow.inset().iter().cloned().collect()
    }

    /// Labels produced by the fragment (its sinks).
    pub fn produced_labels(&self) -> Vec<Label> {
        self.workflow.outset().iter().cloned().collect()
    }

    /// *All* labels that appear as an input of some task in the fragment,
    /// including internal ones.
    pub fn all_input_labels(&self) -> Vec<Label> {
        let g = self.workflow.graph();
        g.node_indices()
            .filter(|&i| g.out_degree(i) > 0)
            .filter_map(|i| g.key(i).as_label())
            .collect()
    }

    /// Tasks in this fragment, in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.workflow.tasks()
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fragment `{}`: {}", self.id, self.workflow)
    }
}

/// Incremental builder for [`Fragment`]s.
///
/// ```rust
/// use openwf_core::{Fragment, Mode};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let frag = Fragment::builder("lunch")
///     .task("prepare soup and salad", Mode::Conjunctive)
///     .inputs(["lunch ingredients"])
///     .outputs(["lunch prepared"])
///     .done()
///     .task("serve buffet", Mode::Disjunctive)
///     .inputs(["lunch prepared"])
///     .outputs(["lunch served"])
///     .done()
///     .build()?;
/// assert_eq!(frag.tasks().count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FragmentBuilder {
    id: FragmentId,
    graph: Graph,
    error: Option<ModelError>,
}

impl FragmentBuilder {
    /// Creates a builder for a fragment with the given identifier.
    pub fn new(id: impl Into<FragmentId>) -> Self {
        FragmentBuilder {
            id: id.into(),
            graph: Graph::new(),
            error: None,
        }
    }

    /// Starts describing one task of the fragment; finish it with
    /// [`TaskBuilder::done`].
    pub fn task(self, task: impl Into<TaskId>, mode: Mode) -> TaskBuilder {
        TaskBuilder {
            parent: self,
            task: task.into(),
            mode,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Adds a complete task in one call.
    pub fn add_task<I, O>(
        mut self,
        task: impl Into<TaskId>,
        mode: Mode,
        inputs: I,
        outputs: O,
    ) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Label>,
        O: IntoIterator,
        O::Item: Into<Label>,
    {
        if self.error.is_some() {
            return self;
        }
        let tidx = match self.graph.try_add_task(task, mode) {
            Ok(i) => i,
            Err(e) => {
                self.error = Some(e);
                return self;
            }
        };
        for l in inputs {
            let lidx = self.graph.add_label(l);
            if let Err(e) = self.graph.add_edge(lidx, tidx) {
                self.error = Some(e);
                return self;
            }
        }
        for l in outputs {
            let lidx = self.graph.add_label(l);
            if let Err(e) = self.graph.add_edge(tidx, lidx) {
                self.error = Some(e);
                return self;
            }
        }
        self
    }

    /// Validates and produces the fragment.
    ///
    /// # Errors
    ///
    /// Returns any deferred structural error from the building calls, or a
    /// [`crate::ValidityError`] if the assembled graph is not a valid workflow
    /// (e.g. a task without outputs, a label produced twice, or a cycle).
    pub fn build(self) -> Result<Fragment, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let workflow = Workflow::from_graph(self.graph).map_err(ModelError::Invalid)?;
        Ok(Fragment {
            id: self.id,
            workflow,
        })
    }
}

/// Builder for a single task inside a [`FragmentBuilder`] chain.
#[derive(Debug)]
pub struct TaskBuilder {
    parent: FragmentBuilder,
    task: TaskId,
    mode: Mode,
    inputs: Vec<Label>,
    outputs: Vec<Label>,
}

impl TaskBuilder {
    /// Adds one input (precondition) label.
    pub fn input(mut self, label: impl Into<Label>) -> Self {
        self.inputs.push(label.into());
        self
    }

    /// Adds several input labels.
    pub fn inputs<I>(mut self, labels: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Label>,
    {
        self.inputs.extend(labels.into_iter().map(Into::into));
        self
    }

    /// Adds one output (postcondition) label.
    pub fn output(mut self, label: impl Into<Label>) -> Self {
        self.outputs.push(label.into());
        self
    }

    /// Adds several output labels.
    pub fn outputs<O>(mut self, labels: O) -> Self
    where
        O: IntoIterator,
        O::Item: Into<Label>,
    {
        self.outputs.extend(labels.into_iter().map(Into::into));
        self
    }

    /// Finishes this task and returns to the fragment builder.
    pub fn done(self) -> FragmentBuilder {
        let TaskBuilder {
            parent,
            task,
            mode,
            inputs,
            outputs,
        } = self;
        parent.add_task(task, mode, inputs, outputs)
    }
}

// Re-export for rustdoc links.
#[allow(unused_imports)]
use crate::validate as _validate_doc;

impl From<Fragment> for Workflow {
    fn from(f: Fragment) -> Workflow {
        f.workflow
    }
}

impl AsRef<Fragment> for Fragment {
    fn as_ref(&self) -> &Fragment {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_task_fragment() {
        let f = Fragment::single_task(
            "cook",
            "cook omelets",
            Mode::Conjunctive,
            ["omelet bar setup"],
            ["breakfast served"],
        )
        .unwrap();
        assert_eq!(f.id().as_str(), "cook");
        assert_eq!(f.consumed_labels(), vec![Label::new("omelet bar setup")]);
        assert_eq!(f.produced_labels(), vec![Label::new("breakfast served")]);
        assert_eq!(
            f.tasks().collect::<Vec<_>>(),
            vec![TaskId::new("cook omelets")]
        );
    }

    #[test]
    fn multi_task_fragment_chains_labels() {
        let f = Fragment::builder("doughnuts")
            .task("pick up doughnuts", Mode::Conjunctive)
            .inputs(["doughnuts ordered"])
            .outputs(["doughnuts available"])
            .done()
            .task("set out doughnuts", Mode::Conjunctive)
            .inputs(["doughnuts available"])
            .outputs(["breakfast served"])
            .done()
            .build()
            .unwrap();
        assert_eq!(f.workflow().task_count(), 2);
        assert_eq!(f.consumed_labels(), vec![Label::new("doughnuts ordered")]);
        assert_eq!(f.produced_labels(), vec![Label::new("breakfast served")]);
        // internal label is an input of a task but not in the inset
        assert!(f
            .all_input_labels()
            .contains(&Label::new("doughnuts available")));
    }

    #[test]
    fn task_without_output_is_rejected() {
        let r = Fragment::builder("bad")
            .task("t", Mode::Conjunctive)
            .inputs(["a"])
            .done()
            .build();
        assert!(matches!(
            r,
            Err(ModelError::Invalid(ValidityError::TaskIsSink(_)))
        ));
    }

    #[test]
    fn task_without_input_is_rejected() {
        let r = Fragment::builder("bad")
            .task("t", Mode::Conjunctive)
            .outputs(["a"])
            .done()
            .build();
        assert!(matches!(
            r,
            Err(ModelError::Invalid(ValidityError::TaskIsSource(_)))
        ));
    }

    #[test]
    fn double_producer_in_fragment_is_rejected() {
        let r = Fragment::builder("bad")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["x"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["x"])
            .done()
            .build();
        assert!(matches!(
            r,
            Err(ModelError::Invalid(
                ValidityError::LabelMultipleProducers { .. }
            ))
        ));
    }

    #[test]
    fn conflicting_mode_is_deferred_to_build() {
        let r = Fragment::builder("bad")
            .task("t", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t", Mode::Disjunctive)
            .inputs(["c"])
            .outputs(["d"])
            .done()
            .build();
        assert!(matches!(r, Err(ModelError::ConflictingTaskMode { .. })));
    }

    #[test]
    fn fragment_converts_into_workflow() {
        let f = Fragment::single_task("f", "t", Mode::Disjunctive, ["a"], ["b"]).unwrap();
        let w: Workflow = f.into();
        assert!(w.contains_task(&TaskId::new("t")));
    }

    #[test]
    fn display_mentions_id_and_shape() {
        let f = Fragment::single_task("f1", "t", Mode::Disjunctive, ["a"], ["b"]).unwrap();
        let s = f.to_string();
        assert!(s.contains("f1"), "{s}");
        assert!(s.contains("1 tasks"), "{s}");
    }
}
