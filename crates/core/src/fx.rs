//! A fast, non-cryptographic hasher for the construction hot path.
//!
//! The construction algorithm hashes small integer-like keys (interned
//! [`crate::ids::Sym`]s, packed node-index pairs) millions of times per
//! run; SipHash's DoS resistance buys nothing there and costs real time.
//! This is the FxHash multiply-rotate scheme used by rustc, implemented
//! std-only per the workspace's no-registry constraint (ROADMAP "Shims
//! vs. real crates"). It is a one-line swap to the `rustc-hash` crate
//! once networked builds exist.
//!
//! Do **not** use these maps for attacker-controlled keys on a trust
//! boundary; the workspace's wire-facing layers keep std's default
//! hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a 64-bit golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one 64-bit word folded with multiply-rotate.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s; plug into any `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash_of(b"hello"), hash_of(b"hello"));
        assert_ne!(hash_of(b"hello"), hash_of(b"hellp"));
        assert_ne!(hash_of(b"ab"), hash_of(b"ba"));
        assert_ne!(hash_of(b"a"), hash_of(b"aa"));
    }

    #[test]
    fn integer_writes_differ_from_zero_state() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u32(8);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }
}
