//! Bipartite directed graph storage shared by fragments, workflows and the
//! supergraph.
//!
//! The graph enforces only the *bipartite* structure (edges connect a label
//! to a task or a task to a label) and node uniqueness (one node per
//! [`NodeKey`]); the stricter workflow constraints — acyclicity, sources and
//! sinks are labels, label in-degree at most one — are checked by
//! [`crate::validate`], since the supergraph deliberately violates them.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::ModelError;
use crate::fx::FxHashMap;
use crate::ids::{Label, Mode, NodeKey, NodeKind, Sym, TaskId};

/// Dense index of a node within one [`Graph`].
///
/// Indices are only meaningful within the graph that produced them; they are
/// stable for the lifetime of the graph (nodes are never removed from the
/// underlying store — removal is expressed by rebuilding, which keeps all
/// traversal state simple and cache-friendly).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeIdx(pub(crate) u32);

impl NodeIdx {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct NodeData {
    key: NodeKey,
    mode: Mode,
}

/// One node's complete storage: identity plus all four adjacency lanes.
///
/// Keeping a node's neighbor lists in the same slot as its key (instead
/// of five parallel `Vec`s) means a graph is three allocations total —
/// slots, index, edge order — rather than seven. The wire decoder builds
/// a fresh graph per received fragment, so per-graph allocation count is
/// directly on the decode hot path; traversals also touch a node's key
/// and adjacency together, which this layout serves from one cache line.
#[derive(Clone, Debug)]
struct NodeSlot {
    data: NodeData,
    parents: Adj<NodeIdx>,
    children: Adj<NodeIdx>,
    /// Dense edge ids parallel to `parents` / `children`:
    /// `parent_eids[i]` is the id of the edge `parents[i] -> self`.
    /// Together with the bipartite invariant these replace an edge hash
    /// map entirely — every edge has a task endpoint, task degrees are
    /// bounded by declared arity, so duplicate detection and
    /// [`Graph::edge_id`] are short inline scans of the task side.
    parent_eids: Adj<u32>,
    child_eids: Adj<u32>,
}

impl NodeSlot {
    fn new(data: NodeData) -> Self {
        NodeSlot {
            data,
            parents: Adj::default(),
            children: Adj::default(),
            parent_eids: Adj::default(),
            child_eids: Adj::default(),
        }
    }
}

/// An adjacency list with inline storage for the common case.
///
/// Workflow graphs are bipartite with small degrees almost everywhere
/// (a task's inputs/outputs, a label's few consumers), so the first four
/// entries live inline in the node's slot — appending an edge to a
/// fresh node allocates nothing. Larger fan-ins (hub labels in dense
/// communities) spill to a heap `Vec`. Used both for neighbor lists
/// (`T = NodeIdx`) and the parallel per-neighbor edge-id lists
/// (`T = u32`).
#[derive(Clone, Debug)]
enum Adj<T: Copy> {
    Inline { len: u8, items: [T; 4] },
    Spill(Vec<T>),
}

impl<T: Copy + Default> Default for Adj<T> {
    fn default() -> Self {
        Adj::Inline {
            len: 0,
            items: [T::default(); 4],
        }
    }
}

impl<T: Copy> Adj<T> {
    fn as_slice(&self) -> &[T] {
        match self {
            Adj::Inline { len, items } => &items[..*len as usize],
            Adj::Spill(v) => v,
        }
    }

    fn push(&mut self, n: T) {
        match self {
            Adj::Inline { len, items } => {
                if (*len as usize) < items.len() {
                    items[*len as usize] = n;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(8);
                    v.extend_from_slice(items);
                    v.push(n);
                    *self = Adj::Spill(v);
                }
            }
            Adj::Spill(v) => v.push(n),
        }
    }
}

/// The node index: symbol → node, in one of two layouts.
///
/// Small graphs (fragments, workflows) hash packed `(kind, Sym)` keys.
/// Graphs that announce supergraph scale via [`Graph::reserve`] switch to
/// a *direct-mapped* layout — two flat arrays indexed by the interned
/// symbol id, one lane per [`NodeKind`] — because [`Sym`] ids are dense
/// process-wide integers: a lookup is then a bounds check and an array
/// read, no hashing or probing at all. The dense lanes are sized by the
/// largest symbol id the graph has seen (amortized doubling), which is
/// bounded by the community vocabulary — the same bound the interner
/// itself lives with. When the process-global universe dwarfs the
/// graph's own expected size (see [`DENSE_MAX_SYM_RATIO`]), [`Graph::reserve`]
/// refuses the switch and keeps hashing rather than allocate lanes that
/// would be mostly vacant.
#[derive(Clone, Debug)]
enum NodeIndex {
    Hashed(FxHashMap<u64, NodeIdx>),
    Dense {
        /// `labels[sym]` / `tasks[sym]` = node index, `u32::MAX` vacant.
        labels: Vec<u32>,
        tasks: Vec<u32>,
    },
}

/// Node-count reserve at which the index switches to the dense layout.
const DENSE_INDEX_THRESHOLD: usize = 1 << 16;

/// Maximum tolerated ratio of the process-global symbol universe to a
/// graph's reserved node count before densifying is refused. Dense lanes
/// are sized by the largest symbol id the graph touches — bounded by the
/// interner size, *not* by the graph — so in a process that interned many
/// other communities' names first, a densified graph would pay
/// ~8 bytes × max-sym-id regardless of its own size. Past this ratio the
/// hashed index is cheaper than the wasted lane memory.
const DENSE_MAX_SYM_RATIO: usize = 8;

/// True when the direct-mapped layout is economical: the global symbol
/// universe (an upper bound on lane length) is within
/// [`DENSE_MAX_SYM_RATIO`] of the graph's expected node count.
fn dense_layout_is_economical(node_hint: usize, interned_universe: usize) -> bool {
    interned_universe <= node_hint.saturating_mul(DENSE_MAX_SYM_RATIO)
}

const VACANT: u32 = u32::MAX;

impl Default for NodeIndex {
    fn default() -> Self {
        NodeIndex::Hashed(FxHashMap::default())
    }
}

impl NodeIndex {
    #[inline]
    fn get(&self, kind: NodeKind, sym: Sym) -> Option<NodeIdx> {
        match self {
            NodeIndex::Hashed(map) => map.get(&pack_key(kind, sym)).copied(),
            NodeIndex::Dense { labels, tasks } => {
                let lane = match kind {
                    NodeKind::Label => labels,
                    NodeKind::Task => tasks,
                };
                match lane.get(sym.id() as usize) {
                    Some(&slot) if slot != VACANT => Some(NodeIdx(slot)),
                    _ => None,
                }
            }
        }
    }

    #[inline]
    fn insert(&mut self, kind: NodeKind, sym: Sym, idx: NodeIdx) {
        match self {
            NodeIndex::Hashed(map) => {
                map.insert(pack_key(kind, sym), idx);
            }
            NodeIndex::Dense { labels, tasks } => {
                let lane = match kind {
                    NodeKind::Label => labels,
                    NodeKind::Task => tasks,
                };
                let i = sym.id() as usize;
                if i >= lane.len() {
                    // Amortized growth to the largest symbol seen.
                    lane.resize((i + 1).next_power_of_two(), VACANT);
                }
                lane[i] = idx.0;
            }
        }
    }

    /// Migrates to the dense layout (no-op if already dense).
    fn densify(&mut self, nodes: &[NodeSlot]) {
        if matches!(self, NodeIndex::Dense { .. }) {
            return;
        }
        let mut dense = NodeIndex::Dense {
            labels: Vec::new(),
            tasks: Vec::new(),
        };
        for (i, n) in nodes.iter().enumerate() {
            dense.insert(n.data.key.kind, n.data.key.name.sym(), NodeIdx(i as u32));
        }
        *self = dense;
    }
}

/// A bipartite directed graph over label and task nodes.
///
/// Iteration orders (`nodes()`, `edges()`, adjacency lists) follow insertion
/// order and are fully deterministic, which the simulation harness relies on
/// for reproducibility.
#[derive(Clone, Default)]
pub struct Graph {
    /// Node storage: identity and adjacency together (see [`NodeSlot`]).
    nodes: Vec<NodeSlot>,
    /// Sym-keyed node index (see [`NodeIndex`]).
    index: NodeIndex,
    edge_order: Vec<(NodeIdx, NodeIdx)>,
}

/// Packs a node identity into the index key: bit 32 is the kind, the low
/// 32 bits the interned symbol.
#[inline]
fn pack_key(kind: NodeKind, sym: Sym) -> u64 {
    let kind_bit = match kind {
        NodeKind::Label => 0u64,
        NodeKind::Task => 1u64 << 32,
    };
    kind_bit | sym.id() as u64
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes (labels + tasks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_order.len()
    }

    /// Number of task nodes.
    pub fn task_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.data.key.kind == NodeKind::Task)
            .count()
    }

    /// Number of label nodes.
    pub fn label_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.data.key.kind == NodeKind::Label)
            .count()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds (or finds) a label node, returning its index.
    pub fn add_label(&mut self, label: impl Into<Label>) -> NodeIdx {
        self.intern(label.into().key(), Mode::Disjunctive)
    }

    /// Adds (or finds) a task node with the given mode, returning its index.
    ///
    /// If the task already exists its mode is left unchanged; callers that
    /// need to detect conflicting redefinitions should use
    /// [`Graph::try_add_task`].
    pub fn add_task(&mut self, task: impl Into<TaskId>, mode: Mode) -> NodeIdx {
        self.intern(task.into().key(), mode)
    }

    /// Adds a task node, erroring if it already exists with a different mode.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] when the task exists with
    /// the opposite [`Mode`]; merging such fragments would silently change
    /// the meaning of someone's knowhow.
    pub fn try_add_task(
        &mut self,
        task: impl Into<TaskId>,
        mode: Mode,
    ) -> Result<NodeIdx, ModelError> {
        let task = task.into();
        if let Some(idx) = self.index.get(NodeKind::Task, task.sym()) {
            let existing = self.nodes[idx.index()].data.mode;
            if existing != mode {
                return Err(ModelError::ConflictingTaskMode {
                    task,
                    existing,
                    requested: mode,
                });
            }
            return Ok(idx);
        }
        Ok(self.intern(task.key(), mode))
    }

    fn intern(&mut self, key: NodeKey, mode: Mode) -> NodeIdx {
        let (kind, sym) = (key.kind, key.name.sym());
        if let Some(idx) = self.index.get(kind, sym) {
            return idx;
        }
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(NodeSlot::new(NodeData { key, mode }));
        self.index.insert(kind, sym, idx);
        idx
    }

    /// Adds a directed edge; both endpoints must already exist.
    ///
    /// Duplicate edges are ignored (the paper's graphs are simple). Returns
    /// `true` when the edge was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotBipartite`] if both endpoints are the same
    /// kind: the workflow graph "may be considered nodes in a bipartite
    /// directed acyclic graph" (§2.2) — labels only connect to tasks and
    /// vice versa.
    pub fn add_edge(&mut self, from: NodeIdx, to: NodeIdx) -> Result<bool, ModelError> {
        self.insert_edge(from, to).map(|(_, inserted)| inserted)
    }

    /// Adds a directed edge like [`Graph::add_edge`], also returning the
    /// edge's dense id (existing id when the edge was a duplicate).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotBipartite`] if both endpoints are the same
    /// kind.
    fn insert_edge(&mut self, from: NodeIdx, to: NodeIdx) -> Result<(u32, bool), ModelError> {
        let fk = self.nodes[from.index()].data.key.kind;
        let tk = self.nodes[to.index()].data.key.kind;
        if fk == tk {
            return Err(ModelError::NotBipartite {
                from: self.nodes[from.index()].data.key.clone(),
                to: self.nodes[to.index()].data.key.clone(),
            });
        }
        if let Some(existing) = self.scan_edge_id(from, to, fk) {
            return Ok((existing, false));
        }
        let id = self.edge_order.len() as u32;
        self.edge_order.push((from, to));
        let f = &mut self.nodes[from.index()];
        f.children.push(to);
        f.child_eids.push(id);
        let t = &mut self.nodes[to.index()];
        t.parents.push(from);
        t.parent_eids.push(id);
        Ok((id, true))
    }

    /// Finds the id of edge `from -> to` by scanning the adjacency of the
    /// **task** endpoint (`from_kind` is `from`'s kind). Bipartite edges
    /// always have one, and a task's degree is bounded by its declared
    /// inputs/outputs, so the scan is short and cache-local — unlike a
    /// hub label, whose degree grows with the community.
    #[inline]
    fn scan_edge_id(&self, from: NodeIdx, to: NodeIdx, from_kind: NodeKind) -> Option<u32> {
        if from_kind == NodeKind::Task {
            let slot = &self.nodes[from.index()];
            let pos = slot.children.as_slice().iter().position(|&c| c == to)?;
            Some(slot.child_eids.as_slice()[pos])
        } else {
            let slot = &self.nodes[to.index()];
            let pos = slot.parents.as_slice().iter().position(|&p| p == from)?;
            Some(slot.parent_eids.as_slice()[pos])
        }
    }

    /// Looks up a node by key.
    pub fn find(&self, key: &NodeKey) -> Option<NodeIdx> {
        self.find_sym(key.kind, key.name.sym())
    }

    /// Looks up a node by kind and interned symbol (the cheapest lookup:
    /// no string hashing at all).
    pub fn find_sym(&self, kind: NodeKind, sym: Sym) -> Option<NodeIdx> {
        self.index.get(kind, sym)
    }

    /// Looks up a label node.
    pub fn find_label(&self, label: &Label) -> Option<NodeIdx> {
        self.find_sym(NodeKind::Label, label.sym())
    }

    /// Looks up a task node.
    pub fn find_task(&self, task: &TaskId) -> Option<NodeIdx> {
        self.find_sym(NodeKind::Task, task.sym())
    }

    /// True if the graph contains the edge `from -> to`.
    pub fn has_edge(&self, from: NodeIdx, to: NodeIdx) -> bool {
        self.edge_id(from, to).is_some()
    }

    /// The dense id of the edge `from -> to`: its position in
    /// [`Graph::edges`] order. Edge ids are stable for the lifetime of the
    /// graph (edges are never removed).
    pub fn edge_id(&self, from: NodeIdx, to: NodeIdx) -> Option<u32> {
        if from.index() >= self.nodes.len() || to.index() >= self.nodes.len() {
            return None;
        }
        self.scan_edge_id(from, to, self.nodes[from.index()].data.key.kind)
    }

    /// Pre-sizes the node and edge stores for `nodes` / `edges` further
    /// insertions, so that a large merge (or a construction whose final
    /// size is known from universe hints) does not pay for incremental
    /// rehash/regrow of the hot-path hash indexes.
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        // Only consult the process interner (a read-lock acquisition)
        // when the graph is big enough for the dense layout to be in
        // play — per-fragment decodes reserve tiny graphs constantly.
        let universe = if nodes >= DENSE_INDEX_THRESHOLD {
            crate::ids::Sym::interned_count()
        } else {
            usize::MAX
        };
        self.reserve_against_universe(nodes, edges, universe);
    }

    /// [`Graph::reserve`] with the symbol-universe size made explicit
    /// (tests inject a universe without polluting the process interner).
    fn reserve_against_universe(&mut self, nodes: usize, edges: usize, universe: usize) {
        self.nodes.reserve(nodes);
        if nodes >= DENSE_INDEX_THRESHOLD && dense_layout_is_economical(nodes, universe) {
            // Supergraph scale: switch the node index to the
            // direct-mapped layout (see [`NodeIndex`]). When the process
            // has interned far more names than this graph will hold
            // (max-sym-id ≫ node hint), the dense lanes would mostly be
            // vacant padding, so the hashed index is kept instead.
            self.index.densify(&self.nodes);
        } else if let NodeIndex::Hashed(map) = &mut self.index {
            map.reserve(nodes);
        }
        self.edge_order.reserve(edges);
    }

    /// True when the node index uses the direct-mapped (dense) layout.
    /// Diagnostic only — answers never depend on the layout.
    pub fn index_is_dense(&self) -> bool {
        matches!(self.index, NodeIndex::Dense { .. })
    }

    /// The key of a node.
    pub fn key(&self, idx: NodeIdx) -> &NodeKey {
        &self.nodes[idx.index()].data.key
    }

    /// The kind of a node.
    pub fn kind(&self, idx: NodeIdx) -> NodeKind {
        self.nodes[idx.index()].data.key.kind
    }

    /// The mode of a node. Labels are always [`Mode::Disjunctive`]: a label
    /// is available as soon as *any* producer provides it.
    pub fn mode(&self, idx: NodeIdx) -> Mode {
        self.nodes[idx.index()].data.mode
    }

    /// Parent (predecessor) indices, in insertion order.
    pub fn parents(&self, idx: NodeIdx) -> &[NodeIdx] {
        self.nodes[idx.index()].parents.as_slice()
    }

    /// Child (successor) indices, in insertion order.
    pub fn children(&self, idx: NodeIdx) -> &[NodeIdx] {
        self.nodes[idx.index()].children.as_slice()
    }

    /// In-degree of a node.
    pub fn in_degree(&self, idx: NodeIdx) -> usize {
        self.nodes[idx.index()].parents.as_slice().len()
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, idx: NodeIdx) -> usize {
        self.nodes[idx.index()].children.as_slice().len()
    }

    /// Iterates over all node indices in insertion order.
    pub fn node_indices(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        (0..self.nodes.len() as u32).map(NodeIdx)
    }

    /// Iterates over `(index, key)` pairs in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, &NodeKey)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeIdx(i as u32), &n.data.key))
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeIdx, NodeIdx)> + '_ {
        self.edge_order.iter().copied()
    }

    /// Edges appended at position `start` or later, in insertion order.
    ///
    /// The graph is append-only, so `edges_from(k)` after observing
    /// `edge_count() == k` yields exactly the edges added since — the
    /// basis for resumable exploration's incremental re-seeding.
    pub fn edges_from(&self, start: usize) -> impl Iterator<Item = &(NodeIdx, NodeIdx)> + '_ {
        self.edge_order[start.min(self.edge_order.len())..].iter()
    }

    /// All label identifiers present in the graph, in insertion order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.nodes.iter().filter_map(|n| n.data.key.as_label())
    }

    /// All task identifiers present in the graph, in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.nodes.iter().filter_map(|n| n.data.key.as_task())
    }

    /// Source nodes (no incoming edges), in insertion order.
    pub fn sources(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.node_indices().filter(|&i| self.in_degree(i) == 0)
    }

    /// Sink nodes (no outgoing edges), in insertion order.
    pub fn sinks(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.node_indices().filter(|&i| self.out_degree(i) == 0)
    }

    /// True if the graph is acyclic (Kahn's algorithm).
    pub fn is_acyclic(&self) -> bool {
        self.is_acyclic_with(&mut TraversalScratch::default())
    }

    /// [`Graph::is_acyclic`] with caller-owned scratch buffers.
    ///
    /// Kahn's algorithm needs an in-degree array and a work queue; a
    /// caller validating many small graphs in a row (a wire decoder
    /// rebuilding fragments per frame) reuses one [`TraversalScratch`]
    /// across all of them instead of allocating per graph.
    pub fn is_acyclic_with(&self, scratch: &mut TraversalScratch) -> bool {
        let TraversalScratch { indeg, queue } = scratch;
        indeg.clear();
        indeg.extend(self.nodes.iter().map(|n| n.parents.as_slice().len() as u32));
        queue.clear();
        queue.extend(self.node_indices().filter(|i| indeg[i.index()] == 0));
        let mut visited = 0usize;
        while let Some(n) = queue.pop() {
            visited += 1;
            for &c in self.children(n) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        visited == self.nodes.len()
    }

    /// A topological order of node indices, or `None` if the graph has a
    /// cycle.
    pub fn topological_order(&self) -> Option<Vec<NodeIdx>> {
        let mut indeg: Vec<usize> = self
            .nodes
            .iter()
            .map(|n| n.parents.as_slice().len())
            .collect();
        let mut queue: Vec<NodeIdx> = self
            .node_indices()
            .filter(|i| indeg[i.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            for &c in self.children(n) {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Extracts the sub-graph induced by `keep_nodes` and `keep_edges`.
    ///
    /// Edges in `keep_edges` whose endpoints are not both kept are dropped.
    /// Node and edge insertion order of the result follows the order of this
    /// graph, keeping extraction deterministic.
    pub fn subgraph(
        &self,
        keep_nodes: &HashSet<NodeIdx>,
        keep_edges: &HashSet<(NodeIdx, NodeIdx)>,
    ) -> Graph {
        let mut g = Graph::new();
        let mut map: HashMap<NodeIdx, NodeIdx> = HashMap::with_capacity(keep_nodes.len());
        for idx in self.node_indices() {
            if keep_nodes.contains(&idx) {
                let node = &self.nodes[idx.index()].data;
                let new = g.intern(node.key.clone(), node.mode);
                map.insert(idx, new);
            }
        }
        for &(f, t) in &self.edge_order {
            if keep_edges.contains(&(f, t)) {
                if let (Some(&nf), Some(&nt)) = (map.get(&f), map.get(&t)) {
                    g.add_edge(nf, nt)
                        .expect("subgraph preserves bipartite structure");
                }
            }
        }
        g
    }

    /// Merges every node and edge of `other` into `self`, deduplicating by
    /// semantic key. Returns the number of new nodes and new edges added.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if a task exists in both
    /// graphs with different modes.
    pub fn merge_from(&mut self, other: &Graph) -> Result<(usize, usize), ModelError> {
        let mut map = Vec::new();
        self.merge_from_mapped(other, &mut map)
    }

    /// Like [`Graph::merge_from`], but also fills `map` so that `map[i]`
    /// is the index in `self` of `other`'s node `i`. Passing the same
    /// `map` buffer across merges (as the supergraph does for every
    /// fragment it absorbs) keeps the hot path allocation-free, and the
    /// mapping lets callers attach per-node bookkeeping (provenance)
    /// without re-resolving keys.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if a task exists in both
    /// graphs with different modes; `self` is unchanged in that case only
    /// if the conflict is detected before any node is added (callers that
    /// need atomicity pre-check, as [`crate::Supergraph`] does).
    pub fn merge_from_mapped(
        &mut self,
        other: &Graph,
        map: &mut Vec<NodeIdx>,
    ) -> Result<(usize, usize), ModelError> {
        self.merge_from_recorded(other, map, None)
    }

    /// Like [`Graph::merge_from_mapped`], additionally filling `edge_ids`
    /// (when given) with the dense id in `self` of each of `other`'s edges
    /// in [`Graph::edges`] order — whether newly inserted or pre-existing.
    /// This is how the supergraph attaches per-edge provenance without a
    /// second hash lookup per edge.
    ///
    /// # Errors
    ///
    /// Same contract as [`Graph::merge_from_mapped`].
    pub fn merge_from_recorded(
        &mut self,
        other: &Graph,
        map: &mut Vec<NodeIdx>,
        mut edge_ids: Option<&mut Vec<u32>>,
    ) -> Result<(usize, usize), ModelError> {
        if let Some(ids) = edge_ids.as_deref_mut() {
            ids.clear();
            ids.reserve(other.edge_count());
        }
        map.clear();
        map.reserve(other.node_count());
        let mut new_nodes = 0;
        for idx in other.node_indices() {
            let node = &other.nodes[idx.index()].data;
            let before = self.nodes.len();
            let new = match node.key.kind {
                NodeKind::Label => self.intern(node.key.clone(), Mode::Disjunctive),
                NodeKind::Task => {
                    if let Some(existing) = self.find_sym(NodeKind::Task, node.key.name.sym()) {
                        let have = self.nodes[existing.index()].data.mode;
                        if have != node.mode {
                            return Err(ModelError::ConflictingTaskMode {
                                task: node.key.as_task().expect("task key"),
                                existing: have,
                                requested: node.mode,
                            });
                        }
                        existing
                    } else {
                        self.intern(node.key.clone(), node.mode)
                    }
                }
            };
            if self.nodes.len() > before {
                new_nodes += 1;
            }
            map.push(new);
        }
        let mut new_edges = 0;
        for (f, t) in other.edges() {
            let (id, inserted) = self
                .insert_edge(map[f.index()], map[t.index()])
                .expect("merging bipartite graphs preserves bipartite structure");
            if inserted {
                new_edges += 1;
            }
            if let Some(ids) = edge_ids.as_deref_mut() {
                ids.push(id);
            }
        }
        Ok((new_nodes, new_edges))
    }
}

/// Reusable buffers for graph traversals ([`Graph::is_acyclic_with`],
/// [`crate::validate::validate_with`]).
///
/// Holds the in-degree array and work queue Kahn's algorithm needs.
/// Contents are transient — cleared on every use — so one scratch can be
/// shared across any sequence of graphs of any sizes.
#[derive(Clone, Debug, Default)]
pub struct TraversalScratch {
    indeg: Vec<u32>,
    queue: Vec<NodeIdx>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Graph");
        s.field("nodes", &self.node_count());
        s.field("edges", &self.edge_count());
        let keys: Vec<String> = self.nodes.iter().map(|n| n.data.key.to_string()).collect();
        s.field("keys", &keys);
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // a -> t1 -> b -> t2 -> c
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t1 = g.add_task("t1", Mode::Conjunctive);
        let b = g.add_label("b");
        let t2 = g.add_task("t2", Mode::Disjunctive);
        let c = g.add_label("c");
        g.add_edge(a, t1).unwrap();
        g.add_edge(t1, b).unwrap();
        g.add_edge(b, t2).unwrap();
        g.add_edge(t2, c).unwrap();
        g
    }

    #[test]
    fn nodes_are_deduplicated_by_key() {
        let mut g = Graph::new();
        let a1 = g.add_label("a");
        let a2 = g.add_label("a");
        assert_eq!(a1, a2);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t = g.add_task("t", Mode::Conjunctive);
        assert!(g.add_edge(a, t).unwrap());
        assert!(!g.add_edge(a, t).unwrap());
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.parents(t), &[a]);
    }

    #[test]
    fn edge_ids_are_dense_and_stable() {
        let g = diamond();
        for (i, (f, t)) in g.edges().enumerate() {
            assert_eq!(g.edge_id(f, t), Some(i as u32));
        }
        let a = g.find_label(&Label::new("a")).unwrap();
        let t2 = g.find_task(&TaskId::new("t2")).unwrap();
        assert_eq!(g.edge_id(a, t2), None, "absent edge has no id");
    }

    #[test]
    fn reserve_does_not_disturb_contents() {
        let mut g = diamond();
        g.reserve(1000, 1000);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.find_label(&Label::new("a")).is_some());
    }

    #[test]
    fn dense_layout_economy_thresholds() {
        // Universe comparable to the graph: densify.
        assert!(dense_layout_is_economical(1 << 16, 1 << 16));
        assert!(dense_layout_is_economical(1 << 16, (1 << 16) * 8));
        // Universe far larger than the graph (other communities interned
        // first): the dense lanes would be mostly vacant — stay hashed.
        assert!(!dense_layout_is_economical(1 << 16, (1 << 16) * 8 + 1));
        assert!(!dense_layout_is_economical(1 << 16, 10_000_000));
        // Overflow-safe on absurd hints.
        assert!(dense_layout_is_economical(usize::MAX, usize::MAX));
    }

    #[test]
    fn reserve_skips_densify_when_universe_dwarfs_hint() {
        let mut g = diamond();
        // Supergraph-scale hint, but a process that already interned 100×
        // as many names: the index must stay hashed rather than size its
        // lanes by the process-global max symbol id.
        g.reserve_against_universe(1 << 16, 0, (1 << 16) * 100);
        assert!(!g.index_is_dense(), "over-allocating densify refused");
        // Same hint with a proportionate universe: densify as before.
        g.reserve_against_universe(1 << 16, 0, 1 << 16);
        assert!(g.index_is_dense());
        // Lookups survive both layouts.
        assert!(g.find_label(&Label::new("a")).is_some());
        assert!(g.find_task(&TaskId::new("t1")).is_some());
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn edges_must_be_bipartite() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let b = g.add_label("b");
        let err = g.add_edge(a, b).unwrap_err();
        assert!(matches!(err, ModelError::NotBipartite { .. }));

        let t1 = g.add_task("t1", Mode::Conjunctive);
        let t2 = g.add_task("t2", Mode::Conjunctive);
        assert!(g.add_edge(t1, t2).is_err());
    }

    #[test]
    fn conflicting_task_modes_are_detected() {
        let mut g = Graph::new();
        g.add_task("t", Mode::Conjunctive);
        let err = g.try_add_task("t", Mode::Disjunctive).unwrap_err();
        assert!(matches!(err, ModelError::ConflictingTaskMode { .. }));
        // Same mode is fine.
        assert!(g.try_add_task("t", Mode::Conjunctive).is_ok());
    }

    #[test]
    fn degrees_sources_and_sinks() {
        let g = diamond();
        let a = g.find_label(&Label::new("a")).unwrap();
        let c = g.find_label(&Label::new("c")).unwrap();
        let t1 = g.find_task(&TaskId::new("t1")).unwrap();
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(t1), 1);
        let sources: Vec<_> = g.sources().collect();
        let sinks: Vec<_> = g.sinks().collect();
        assert_eq!(sources, vec![a]);
        assert_eq!(sinks, vec![c]);
    }

    #[test]
    fn topological_order_on_chain() {
        let g = diamond();
        let order = g.topological_order().expect("acyclic");
        let pos: HashMap<NodeIdx, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (f, t) in g.edges() {
            assert!(pos[&f] < pos[&t], "edge {f:?}->{t:?} violates topo order");
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t = g.add_task("t", Mode::Conjunctive);
        let b = g.add_label("b");
        let u = g.add_task("u", Mode::Conjunctive);
        g.add_edge(a, t).unwrap();
        g.add_edge(t, b).unwrap();
        g.add_edge(b, u).unwrap();
        g.add_edge(u, a).unwrap();
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn subgraph_extraction() {
        let g = diamond();
        let a = g.find_label(&Label::new("a")).unwrap();
        let t1 = g.find_task(&TaskId::new("t1")).unwrap();
        let b = g.find_label(&Label::new("b")).unwrap();
        let keep: HashSet<_> = [a, t1, b].into_iter().collect();
        let keep_edges: HashSet<_> = [(a, t1), (t1, b)].into_iter().collect();
        let sub = g.subgraph(&keep, &keep_edges);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.find_label(&Label::new("c")).is_none());
    }

    #[test]
    fn merge_from_deduplicates_and_counts() {
        let mut g1 = diamond();
        let mut g2 = Graph::new();
        let b = g2.add_label("b"); // shared with g1
        let t3 = g2.add_task("t3", Mode::Conjunctive);
        let d = g2.add_label("d");
        g2.add_edge(b, t3).unwrap();
        g2.add_edge(t3, d).unwrap();

        let (nn, ne) = g1.merge_from(&g2).unwrap();
        assert_eq!(nn, 2, "only t3 and d are new");
        assert_eq!(ne, 2);
        assert_eq!(g1.node_count(), 7);
        // Merging again is a no-op.
        let (nn, ne) = g1.merge_from(&g2).unwrap();
        assert_eq!((nn, ne), (0, 0));
    }

    #[test]
    fn merge_detects_mode_conflicts() {
        let mut g1 = Graph::new();
        g1.add_task("t", Mode::Conjunctive);
        let mut g2 = Graph::new();
        g2.add_task("t", Mode::Disjunctive);
        assert!(g1.merge_from(&g2).is_err());
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let g = diamond();
        let keys: Vec<String> = g.nodes().map(|(_, k)| k.to_string()).collect();
        assert_eq!(
            keys,
            ["label:a", "task:t1", "label:b", "task:t2", "label:c"]
        );
    }
}
