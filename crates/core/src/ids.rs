//! Semantic identifiers for workflow nodes.
//!
//! The paper assumes "each node has a semantic identifier; nodes with the
//! same identifier are equivalent" (§2.2). We realize semantic identifiers
//! as **interned symbols**: every distinct name string is assigned a
//! process-wide [`Sym`] (a `u32`) exactly once, so identifier equality and
//! hashing on the construction hot path are integer operations rather than
//! string walks. The string itself is kept only for ordering and display.
//! Identifiers are namespaced by node kind so that a label named `"x"` and
//! a task named `"x"` are distinct nodes.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

#[cfg(feature = "serde")]
use serde::de::{Deserialize, Deserializer};
#[cfg(feature = "serde")]
use serde::ser::{Serialize, Serializer};

/// A process-wide interned string id.
///
/// Two `Sym`s are equal iff they were interned from equal strings, so
/// equality and hashing are single integer compares. Interned strings live
/// for the lifetime of the process (the interner grows monotonically and
/// never frees — symbol universes are bounded by the community's distinct
/// label/task vocabulary, which any long-lived host retains anyway).
///
/// **Trust boundary caveat:** deserializing identifiers interns them, so
/// peer-supplied input with unbounded fresh names grows the interner
/// without limit. A host exposed to untrusted peers should rate-limit or
/// vocabulary-cap inbound fragments at the protocol layer (see the
/// ROADMAP open item on bounding the interner); the in-process simulator
/// and trusted-community deployments are unaffected.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, Sym>,
    table: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            table: Vec::new(),
        })
    })
}

impl Sym {
    /// Interns a string, returning its symbol and canonical `'static` text.
    ///
    /// The fast path (already interned) takes a read lock and one string
    /// hash; the slow path (first sighting) leaks one copy of the string
    /// into the process-wide table.
    pub fn intern(s: &str) -> Sym {
        Sym::intern_with_text(s).0
    }

    pub(crate) fn intern_with_text(s: &str) -> (Sym, &'static str) {
        {
            let int = interner().read().expect("interner lock");
            if let Some(&sym) = int.map.get(s) {
                return (sym, int.table[sym.0 as usize]);
            }
        }
        let mut int = interner().write().expect("interner lock");
        if let Some(&sym) = int.map.get(s) {
            return (sym, int.table[sym.0 as usize]);
        }
        let text: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Sym(u32::try_from(int.table.len()).expect("fewer than 2^32 distinct symbols"));
        int.table.push(text);
        int.map.insert(text, sym);
        (sym, text)
    }

    /// Probes the interner **without interning**: the symbol of `s` if some
    /// earlier caller interned it, `None` otherwise.
    ///
    /// This is the wire decoder's trust-boundary primitive: a peer payload
    /// can be checked against a vocabulary budget *before* any of its names
    /// are admitted to the process-wide table (`openwf-wire`'s
    /// `VocabularyBudget` charges exactly the names this probe misses).
    pub fn lookup(s: &str) -> Option<Sym> {
        interner()
            .read()
            .expect("interner lock")
            .map
            .get(s)
            .copied()
    }

    /// Batch [`Sym::lookup`]: probes every name under **one** read-lock
    /// acquisition, appending `Some(sym)`/`None` per name to `out` in
    /// iteration order. Never interns.
    ///
    /// A frame decoder charging a whole name table against a vocabulary
    /// budget uses this instead of a per-name probe, turning N lock
    /// round-trips into one.
    pub fn lookup_batch<'x, I>(names: I, out: &mut Vec<Option<Sym>>)
    where
        I: Iterator<Item = &'x str>,
    {
        let int = interner().read().expect("interner lock");
        out.extend(names.map(|s| int.map.get(s).copied()));
    }

    /// Batch intern: resolves every name under a **single** interner lock
    /// pass, appending one [`Interned`] per name to `out` in iteration
    /// order.
    ///
    /// When every name is already interned (the steady state of a frame
    /// decoder — a community's vocabulary converges quickly) this takes
    /// one read lock for the whole batch instead of one per name. On the
    /// first miss it falls back to a single write-lock pass that resolves
    /// the entire batch, interning the fresh names.
    pub fn intern_batch<'x, I>(names: I, out: &mut Vec<Interned>)
    where
        I: Iterator<Item = &'x str> + Clone,
    {
        let start = out.len();
        {
            let int = interner().read().expect("interner lock");
            let mut complete = true;
            for s in names.clone() {
                match int.map.get(s) {
                    Some(&sym) => out.push(Interned(Name {
                        sym,
                        text: int.table[sym.0 as usize],
                    })),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                return;
            }
        }
        // At least one fresh name: redo the batch under one write lock
        // (which also serves the lookups the read pass already did —
        // map hits are cheap, lock churn is not).
        out.truncate(start);
        let mut int = interner().write().expect("interner lock");
        for s in names {
            let (sym, text) = match int.map.get(s) {
                Some(&sym) => (sym, int.table[sym.0 as usize]),
                None => {
                    let text: &'static str = Box::leak(s.to_owned().into_boxed_str());
                    let sym =
                        Sym(u32::try_from(int.table.len())
                            .expect("fewer than 2^32 distinct symbols"));
                    int.table.push(text);
                    int.map.insert(text, sym);
                    (sym, text)
                }
            };
            out.push(Interned(Name { sym, text }));
        }
    }

    /// Number of distinct symbols interned process-wide so far.
    ///
    /// Monotonically increasing. [`crate::Graph`] consults this when
    /// deciding whether its direct-mapped node index (lanes sized by symbol
    /// id) would over-allocate relative to the graph's own expected size.
    pub fn interned_count() -> usize {
        interner().read().expect("interner lock").table.len()
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().expect("interner lock").table[self.0 as usize]
    }

    /// The raw symbol id (dense, starting at 0, process-wide).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({} {:?})", self.0, self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared immutable name: an interned symbol plus its canonical text.
///
/// Equality and hashing use the symbol (integer); ordering uses the text so
/// that sorted collections (`BTreeSet<Label>` in specs and insets) keep
/// their human-meaningful, deterministic order. Cloning is a bit copy.
#[derive(Clone, Copy)]
pub(crate) struct Name {
    sym: Sym,
    text: &'static str,
}

impl Name {
    pub(crate) fn new(s: impl AsRef<str>) -> Self {
        let (sym, text) = Sym::intern_with_text(s.as_ref());
        Name { sym, text }
    }

    pub(crate) fn as_str(&self) -> &str {
        self.text
    }

    pub(crate) fn sym(&self) -> Sym {
        self.sym
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Symbol equality implies text equality, so ordering by text is
        // consistent with `Eq`; check the symbol first to skip the string
        // walk in the common equal case.
        if self.sym == other.sym {
            return std::cmp::Ordering::Equal;
        }
        self.text.cmp(other.text)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A batch-resolved interned name: symbol plus canonical `'static` text.
///
/// Produced by [`Sym::intern_batch`] (one interner lock pass over a whole
/// name table). Converting an `Interned` to a typed identifier —
/// [`Interned::label`], [`Interned::task`], or `FragmentId::from` — is a
/// bit copy: no lock, no string hash. This is what lets a wire decoder
/// resolve a frame's name table once and then mint identifiers per
/// payload reference for free.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interned(Name);

impl Interned {
    /// The interned symbol.
    pub fn sym(&self) -> Sym {
        self.0.sym()
    }

    /// The canonical interned text.
    pub fn as_str(&self) -> &'static str {
        self.0.text
    }

    /// This name as a label identifier (bit copy, no interner access).
    pub fn label(&self) -> Label {
        Label(self.0)
    }

    /// This name as a task identifier (bit copy, no interner access).
    pub fn task(&self) -> TaskId {
        TaskId(self.0)
    }

    pub(crate) fn name(&self) -> Name {
        self.0
    }
}

impl fmt::Debug for Interned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interned({:?})", self.0.as_str())
    }
}

impl fmt::Display for Interned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0.as_str())
    }
}

impl From<Interned> for Label {
    fn from(i: Interned) -> Self {
        i.label()
    }
}

impl From<Interned> for TaskId {
    fn from(i: Interned) -> Self {
        i.task()
    }
}

macro_rules! semantic_id {
    ($(#[$meta:meta])* $name:ident, $kind:expr) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) Name);

        impl $name {
            /// Creates an identifier from its semantic name.
            ///
            /// Two identifiers created from equal strings are equal — this
            /// is the paper's "nodes with the same identifier are
            /// equivalent" rule.
            pub fn new(name: impl AsRef<str>) -> Self {
                $name(Name::new(name))
            }

            /// The semantic name as a string slice.
            pub fn as_str(&self) -> &str {
                self.0.as_str()
            }

            /// The interned symbol backing this identifier.
            pub fn sym(&self) -> Sym {
                self.0.sym()
            }

            /// The node kind this identifier belongs to.
            pub fn kind(&self) -> NodeKind {
                $kind
            }

            /// This identifier as a kind-qualified [`NodeKey`].
            pub fn key(&self) -> NodeKey {
                NodeKey { kind: $kind, name: self.0 }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                $name::new(s)
            }
        }

        impl From<&$name> for $name {
            fn from(s: &$name) -> Self {
                s.clone()
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        #[cfg(feature = "serde")]
        impl Serialize for $name {
            fn serialize<Se: Serializer>(&self, s: Se) -> Result<Se::Ok, Se::Error> {
                s.serialize_str(self.as_str())
            }
        }

        #[cfg(feature = "serde")]
        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let s = String::deserialize(d)?;
                Ok($name::new(s))
            }
        }
    };
}

semantic_id!(
    /// The semantic identifier of a **label** node.
    ///
    /// Labels represent preconditions and postconditions of tasks; "each
    /// label has a distinct meaning" and tasks are joined "by matching the
    /// labels on inputs and outputs exactly" (§2.2).
    Label,
    NodeKind::Label
);

semantic_id!(
    /// The semantic identifier of a **task** node.
    ///
    /// A task "represents a single abstract behavior or accomplishment
    /// without completely specifying how it must be performed" (§2.2). A
    /// *service* (see `openwf-runtime`) is a concrete implementation of a
    /// task.
    TaskId,
    NodeKind::Task
);

/// Whether a task requires **all** of its inputs or **any one** of them.
///
/// "A task is either conjunctive, requiring all of its inputs, or
/// disjunctive, requiring only one of its inputs" (§2.2). Label nodes are
/// always treated as disjunctive by the construction algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Mode {
    /// All inputs are required before the node can fire / be reached.
    Conjunctive,
    /// Any single input suffices.
    Disjunctive,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Conjunctive => f.write_str("conjunctive"),
            Mode::Disjunctive => f.write_str("disjunctive"),
        }
    }
}

/// The two kinds of nodes in the bipartite workflow graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A data/condition label (oval in the paper's Figure 1).
    Label,
    /// An abstract task (box in the paper's Figure 1).
    Task,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Label => f.write_str("label"),
            NodeKind::Task => f.write_str("task"),
        }
    }
}

/// A kind-qualified semantic identifier: the global identity of a node.
///
/// Node identity is `(kind, name)`, so a label and a task may share a name
/// without colliding, while two labels (or two tasks) with the same name are
/// the *same* node wherever they appear — the basis for fragment
/// composition. Equality and hashing are two integer compares (kind +
/// interned symbol).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeKey {
    pub(crate) kind: NodeKind,
    pub(crate) name: Name,
}

impl NodeKey {
    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The semantic name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// The interned symbol of the semantic name.
    pub fn sym(&self) -> Sym {
        self.name.sym()
    }

    /// Returns the label identifier if this key names a label.
    pub fn as_label(&self) -> Option<Label> {
        match self.kind {
            NodeKind::Label => Some(Label(self.name)),
            NodeKind::Task => None,
        }
    }

    /// Returns the task identifier if this key names a task.
    pub fn as_task(&self) -> Option<TaskId> {
        match self.kind {
            NodeKind::Task => Some(TaskId(self.name)),
            NodeKind::Label => None,
        }
    }
}

impl fmt::Debug for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}", self.kind, self.name.as_str())
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.name)
    }
}

impl From<Label> for NodeKey {
    fn from(l: Label) -> Self {
        l.key()
    }
}

impl From<TaskId> for NodeKey {
    fn from(t: TaskId) -> Self {
        t.key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_with_equal_names_are_equal() {
        assert_eq!(
            Label::new("breakfast served"),
            Label::from("breakfast served")
        );
        assert_ne!(Label::new("a"), Label::new("b"));
    }

    #[test]
    fn interning_is_stable_and_injective() {
        let a1 = Sym::intern("sym-test-a");
        let a2 = Sym::intern("sym-test-a");
        let b = Sym::intern("sym-test-b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.as_str(), "sym-test-a");
        assert_eq!(b.as_str(), "sym-test-b");
    }

    #[test]
    fn lookup_probes_without_interning() {
        let before = Sym::interned_count();
        assert_eq!(Sym::lookup("sym-lookup-never-interned"), None);
        assert_eq!(
            Sym::interned_count(),
            before,
            "a failed probe must not grow the interner"
        );
        let sym = Sym::intern("sym-lookup-present");
        assert_eq!(Sym::lookup("sym-lookup-present"), Some(sym));
        assert!(Sym::interned_count() > before);
    }

    #[test]
    fn intern_batch_matches_per_name_interning() {
        let names = ["batch-a", "batch-b", "batch-a", "batch-c"];
        let mut out = Vec::new();
        Sym::intern_batch(names.iter().copied(), &mut out);
        assert_eq!(out.len(), 4);
        for (name, interned) in names.iter().zip(&out) {
            assert_eq!(interned.sym(), Sym::intern(name));
            assert_eq!(interned.as_str(), *name);
        }
        // A second batch over now-known names (the read-lock fast path)
        // appends identical resolutions.
        Sym::intern_batch(names.iter().copied(), &mut out);
        assert_eq!(out[..4], out[4..]);
        // Typed conversions carry the same symbol.
        assert_eq!(out[0].label(), Label::new("batch-a"));
        assert_eq!(out[1].task(), TaskId::new("batch-b"));
    }

    #[test]
    fn intern_batch_mixed_known_and_fresh() {
        Sym::intern("batch-mixed-known");
        let mut out = Vec::new();
        Sym::intern_batch(
            ["batch-mixed-known", "batch-mixed-fresh"].into_iter(),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].as_str(), "batch-mixed-known");
        assert_eq!(Sym::lookup("batch-mixed-fresh"), Some(out[1].sym()));
    }

    #[test]
    fn lookup_batch_probes_without_interning() {
        let known = Sym::intern("batch-probe-known");
        let before = Sym::interned_count();
        let mut out = Vec::new();
        Sym::lookup_batch(
            ["batch-probe-known", "batch-probe-missing"].into_iter(),
            &mut out,
        );
        assert_eq!(out, vec![Some(known), None]);
        assert_eq!(Sym::interned_count(), before, "probe must not intern");
    }

    #[test]
    fn equal_ids_share_one_symbol() {
        let l1 = Label::new("shared name");
        let l2 = Label::new("shared name");
        assert_eq!(l1.sym(), l2.sym());
        // Same name, different kind: same symbol, different key.
        let t = TaskId::new("shared name");
        assert_eq!(t.sym(), l1.sym());
        assert_ne!(t.key(), l1.key());
    }

    #[test]
    fn interner_is_consistent_across_threads() {
        // Racing interns of the same 16 names from 8 threads must converge
        // on one symbol per name.
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|j| Sym::intern(&format!("thread-sym-{}", (i + j) % 16)))
                        .collect::<Vec<Sym>>()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for name in (0..16).map(|k| format!("thread-sym-{k}")) {
            assert_eq!(Sym::intern(&name).as_str(), name);
        }
    }

    #[test]
    fn label_and_task_namespaces_are_distinct() {
        let l = Label::new("x").key();
        let t = TaskId::new("x").key();
        assert_ne!(l, t);
        assert_eq!(l.name(), t.name());
        assert_eq!(l.kind(), NodeKind::Label);
        assert_eq!(t.kind(), NodeKind::Task);
    }

    #[test]
    fn key_round_trips_to_typed_ids() {
        let key = Label::new("lunch served").key();
        assert_eq!(key.as_label(), Some(Label::new("lunch served")));
        assert_eq!(key.as_task(), None);

        let key = TaskId::new("serve buffet").key();
        assert_eq!(key.as_task(), Some(TaskId::new("serve buffet")));
        assert_eq!(key.as_label(), None);
    }

    #[test]
    fn display_formats_are_readable() {
        assert_eq!(Label::new("a").to_string(), "a");
        assert_eq!(TaskId::new("t").to_string(), "t");
        assert_eq!(Label::new("a").key().to_string(), "label:a");
        assert_eq!(format!("{:?}", TaskId::new("t")), "TaskId(\"t\")");
        assert_eq!(Mode::Conjunctive.to_string(), "conjunctive");
        assert_eq!(Mode::Disjunctive.to_string(), "disjunctive");
    }

    #[test]
    fn ids_are_ordered_by_name() {
        let mut v = [Label::new("b"), Label::new("a"), Label::new("c")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|l| l.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn hash_lookup_works_with_interned_ids() {
        use std::collections::HashSet;
        let mut s: HashSet<Label> = HashSet::new();
        s.insert(Label::new("x"));
        // Interning makes constructing a lookup key cheap; `Borrow<str>`
        // lookups are gone because symbol hashing is not string hashing.
        assert!(s.contains(&Label::new("x")));
        assert!(!s.contains(&Label::new("y")));
    }
}
