//! Semantic identifiers for workflow nodes.
//!
//! The paper assumes "each node has a semantic identifier; nodes with the
//! same identifier are equivalent" (§2.2). We realize semantic identifiers
//! as cheaply cloneable interned strings, namespaced by node kind so that a
//! label named `"x"` and a task named `"x"` are distinct nodes.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "serde")]
use serde::de::{Deserialize, Deserializer};
#[cfg(feature = "serde")]
use serde::ser::{Serialize, Serializer};

/// A shared immutable name. Cloning is an `Arc` bump.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Name(Arc<str>);

impl Name {
    pub(crate) fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    pub(crate) fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! semantic_id {
    ($(#[$meta:meta])* $name:ident, $kind:expr) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) Name);

        impl $name {
            /// Creates an identifier from its semantic name.
            ///
            /// Two identifiers created from equal strings are equal — this
            /// is the paper's "nodes with the same identifier are
            /// equivalent" rule.
            pub fn new(name: impl AsRef<str>) -> Self {
                $name(Name::new(name))
            }

            /// The semantic name as a string slice.
            pub fn as_str(&self) -> &str {
                self.0.as_str()
            }

            /// The node kind this identifier belongs to.
            pub fn kind(&self) -> NodeKind {
                $kind
            }

            /// This identifier as a kind-qualified [`NodeKey`].
            pub fn key(&self) -> NodeKey {
                NodeKey { kind: $kind, name: self.0.clone() }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:?})"), self.as_str())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        impl From<&String> for $name {
            fn from(s: &String) -> Self {
                $name::new(s)
            }
        }

        impl From<&$name> for $name {
            fn from(s: &$name) -> Self {
                s.clone()
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                self.as_str()
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        #[cfg(feature = "serde")]
        impl Serialize for $name {
            fn serialize<Se: Serializer>(&self, s: Se) -> Result<Se::Ok, Se::Error> {
                s.serialize_str(self.as_str())
            }
        }

        #[cfg(feature = "serde")]
        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let s = String::deserialize(d)?;
                Ok($name::new(s))
            }
        }
    };
}

semantic_id!(
    /// The semantic identifier of a **label** node.
    ///
    /// Labels represent preconditions and postconditions of tasks; "each
    /// label has a distinct meaning" and tasks are joined "by matching the
    /// labels on inputs and outputs exactly" (§2.2).
    Label,
    NodeKind::Label
);

semantic_id!(
    /// The semantic identifier of a **task** node.
    ///
    /// A task "represents a single abstract behavior or accomplishment
    /// without completely specifying how it must be performed" (§2.2). A
    /// *service* (see `openwf-runtime`) is a concrete implementation of a
    /// task.
    TaskId,
    NodeKind::Task
);

/// Whether a task requires **all** of its inputs or **any one** of them.
///
/// "A task is either conjunctive, requiring all of its inputs, or
/// disjunctive, requiring only one of its inputs" (§2.2). Label nodes are
/// always treated as disjunctive by the construction algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Mode {
    /// All inputs are required before the node can fire / be reached.
    Conjunctive,
    /// Any single input suffices.
    Disjunctive,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Conjunctive => f.write_str("conjunctive"),
            Mode::Disjunctive => f.write_str("disjunctive"),
        }
    }
}

/// The two kinds of nodes in the bipartite workflow graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A data/condition label (oval in the paper's Figure 1).
    Label,
    /// An abstract task (box in the paper's Figure 1).
    Task,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Label => f.write_str("label"),
            NodeKind::Task => f.write_str("task"),
        }
    }
}

/// A kind-qualified semantic identifier: the global identity of a node.
///
/// Node identity is `(kind, name)`, so a label and a task may share a name
/// without colliding, while two labels (or two tasks) with the same name are
/// the *same* node wherever they appear — the basis for fragment
/// composition.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeKey {
    pub(crate) kind: NodeKind,
    pub(crate) name: Name,
}

impl NodeKey {
    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The semantic name.
    pub fn name(&self) -> &str {
        self.name.as_str()
    }

    /// Returns the label identifier if this key names a label.
    pub fn as_label(&self) -> Option<Label> {
        match self.kind {
            NodeKind::Label => Some(Label(self.name.clone())),
            NodeKind::Task => None,
        }
    }

    /// Returns the task identifier if this key names a task.
    pub fn as_task(&self) -> Option<TaskId> {
        match self.kind {
            NodeKind::Task => Some(TaskId(self.name.clone())),
            NodeKind::Label => None,
        }
    }
}

impl fmt::Debug for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}", self.kind, self.name.as_str())
    }
}

impl fmt::Display for NodeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.name)
    }
}

impl From<Label> for NodeKey {
    fn from(l: Label) -> Self {
        l.key()
    }
}

impl From<TaskId> for NodeKey {
    fn from(t: TaskId) -> Self {
        t.key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_with_equal_names_are_equal() {
        assert_eq!(
            Label::new("breakfast served"),
            Label::from("breakfast served")
        );
        assert_ne!(Label::new("a"), Label::new("b"));
    }

    #[test]
    fn label_and_task_namespaces_are_distinct() {
        let l = Label::new("x").key();
        let t = TaskId::new("x").key();
        assert_ne!(l, t);
        assert_eq!(l.name(), t.name());
        assert_eq!(l.kind(), NodeKind::Label);
        assert_eq!(t.kind(), NodeKind::Task);
    }

    #[test]
    fn key_round_trips_to_typed_ids() {
        let key = Label::new("lunch served").key();
        assert_eq!(key.as_label(), Some(Label::new("lunch served")));
        assert_eq!(key.as_task(), None);

        let key = TaskId::new("serve buffet").key();
        assert_eq!(key.as_task(), Some(TaskId::new("serve buffet")));
        assert_eq!(key.as_label(), None);
    }

    #[test]
    fn display_formats_are_readable() {
        assert_eq!(Label::new("a").to_string(), "a");
        assert_eq!(TaskId::new("t").to_string(), "t");
        assert_eq!(Label::new("a").key().to_string(), "label:a");
        assert_eq!(format!("{:?}", TaskId::new("t")), "TaskId(\"t\")");
        assert_eq!(Mode::Conjunctive.to_string(), "conjunctive");
        assert_eq!(Mode::Disjunctive.to_string(), "disjunctive");
    }

    #[test]
    fn ids_are_ordered_by_name() {
        let mut v = [Label::new("b"), Label::new("a"), Label::new("c")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|l| l.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn borrow_str_allows_set_lookup() {
        use std::collections::HashSet;
        let mut s: HashSet<Label> = HashSet::new();
        s.insert(Label::new("x"));
        assert!(s.contains("x"));
        assert!(!s.contains("y"));
    }
}
