//! # openwf-core — the open workflow model and construction algorithm
//!
//! This crate implements the *formal core* of the open workflow paradigm
//! introduced by Thomas, Wilson, Roman and Gill in *"Achieving Coordination
//! Through Dynamic Construction of Open Workflows"* (WUCSE-2009-14, 2009):
//!
//! * **Workflow graphs** (§2.2 of the paper): bipartite directed acyclic
//!   graphs whose nodes are [`Label`]s and tasks (see [`TaskId`], [`Mode`]),
//!   with the paper's three validity constraints — all sources and sinks are
//!   labels, a label has at most one incoming edge, and there are no
//!   duplicate nodes ([`Workflow`], [`validate`]).
//! * **Workflow fragments** and their **composition** by merging identical
//!   sources and sinks ([`Fragment`], [`compose()`]).
//! * **Pruning** of unnecessary data flows under the paper's three
//!   constraints ([`prune`]).
//! * **Specifications** `S(W.in, W.out)` in the paper's canonical form
//!   `W.in ⊆ ι ∧ W.out = ω` ([`Spec`]).
//! * **Algorithm 1** — the supergraph coloring construction: an exploration
//!   phase that colors reachable nodes *green* with distances, and a pruning
//!   phase that sweeps *purple*/*blue* backwards from the goal to extract one
//!   feasible, valid workflow ([`construct`], [`Supergraph`]).
//! * The **incremental** variant that pulls fragments from a
//!   [`FragmentSource`] on demand, extending the supergraph only along the
//!   boundary of the colored region (`construct::incremental`).
//! * **Richer specifications** (§5.1 future work, implemented): task
//!   preferences and graph-shape limits ([`SpecConstraints`]).
//!
//! The distributed runtime (managers, auctions, execution) lives in the
//! `openwf-runtime` crate; this crate is purely algorithmic and has no
//! networking or time dependencies, which makes it easy to test exhaustively
//! and to embed anywhere.
//!
//! ## Quick example
//!
//! Build the two-fragment breakfast knowledge base, then construct a workflow
//! that serves breakfast from available ingredients:
//!
//! ```rust
//! use openwf_core::{Fragment, Mode, Spec, Supergraph, construct::Constructor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let setup = Fragment::builder("setup")
//!     .task("set out ingredients", Mode::Conjunctive)
//!     .inputs(["breakfast ingredients"])
//!     .outputs(["omelet bar setup"])
//!     .done()
//!     .build()?;
//! let cook = Fragment::builder("cook")
//!     .task("cook omelets", Mode::Conjunctive)
//!     .inputs(["omelet bar setup"])
//!     .outputs(["breakfast served"])
//!     .done()
//!     .build()?;
//!
//! let mut sg = Supergraph::new();
//! sg.merge_fragment(&setup);
//! sg.merge_fragment(&cook);
//!
//! let spec = Spec::new(["breakfast ingredients"], ["breakfast served"]);
//! let built = Constructor::new().construct(&sg, &spec)?;
//! assert!(spec.accepts(built.workflow()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compose;
pub mod constraints;
pub mod construct;
pub mod dot;
pub mod error;
pub mod fragment;
pub mod fx;
pub mod graph;
pub mod ids;
pub mod prune;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod spec;
pub mod store;
pub mod supergraph;
pub mod validate;
pub mod workflow;

pub use compose::{compose, compose_all};
pub use constraints::{construct_constrained, ConstrainedError, SpecConstraints};
pub use construct::incremental::{FragmentSource, IncrementalConstructor, SizeHints};
pub use construct::{ConstructError, Construction, Constructor, PickOrder};
pub use error::{ComposeError, ModelError};
pub use fragment::{Fragment, FragmentBuilder, FragmentId};
pub use fx::{FxHashMap, FxHashSet};
pub use graph::{Graph, NodeIdx, TraversalScratch};
pub use ids::{Interned, Label, Mode, NodeKey, NodeKind, Sym, TaskId};
pub use spec::Spec;
pub use store::{
    BackendError, FragmentBackend, InMemoryFragmentStore, ParallelFragmentSource,
    ShardedFragmentStore,
};
pub use supergraph::Supergraph;
pub use validate::ValidityError;
pub use workflow::Workflow;

/// The machine's available hardware parallelism, defaulting to 1 when it
/// cannot be determined — the single policy point behind every "0 means
/// one worker per hardware thread" knob in the workspace (sharded
/// stores, frontier worker pools, the runtime's Fragment Manager, the
/// scale bench sweep).
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::compose::{compose, compose_all};
    pub use crate::construct::{Constructor, PickOrder};
    pub use crate::fragment::{Fragment, FragmentBuilder};
    pub use crate::ids::{Label, Mode, TaskId};
    pub use crate::spec::Spec;
    pub use crate::store::{InMemoryFragmentStore, ShardedFragmentStore};
    pub use crate::supergraph::Supergraph;
    pub use crate::workflow::Workflow;
}
