//! Pruning of unnecessary data flows (§2.2).
//!
//! "We can prune a workflow to remove unnecessary data flows, subject to the
//! following constraints which ensure the result remains a valid workflow:
//! (1) task outputs that are sinks can be pruned so long as every task has
//! at least one output, (2) task inputs that are sources can be pruned for
//! disjunctive tasks so long as every task has at least one input, and
//! (3) tasks can be pruned so long as any task inputs that are sources and
//! any task outputs that are sinks are also pruned."
//!
//! [`Pruner`] exposes the three constrained operations on a workflow;
//! [`prune_to_spec`] is the derived bulk operation used after composition to
//! drop everything a specification does not need.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::error::{ModelError, PruneViolation};
use crate::graph::NodeIdx;
use crate::ids::{Label, Mode, NodeKind, TaskId};
use crate::spec::Spec;
use crate::workflow::Workflow;

/// Applies the paper's three pruning operations to a workflow.
///
/// The pruner tracks removals against a snapshot of the workflow graph and
/// rebuilds (and re-validates) the workflow in [`Pruner::finish`]. Each
/// operation checks its §2.2 side conditions and fails without changing
/// anything if they do not hold.
#[derive(Debug)]
pub struct Pruner {
    workflow: Workflow,
    live_parents: HashMap<NodeIdx, BTreeSet<NodeIdx>>,
    live_children: HashMap<NodeIdx, BTreeSet<NodeIdx>>,
    removed_nodes: HashSet<NodeIdx>,
}

impl Pruner {
    /// Starts a pruning session over a copy of `workflow`.
    pub fn new(workflow: &Workflow) -> Self {
        let g = workflow.graph();
        let mut live_parents = HashMap::with_capacity(g.node_count());
        let mut live_children = HashMap::with_capacity(g.node_count());
        for idx in g.node_indices() {
            live_parents.insert(idx, g.parents(idx).iter().copied().collect());
            live_children.insert(idx, g.children(idx).iter().copied().collect());
        }
        Pruner {
            workflow: workflow.clone(),
            live_parents,
            live_children,
            removed_nodes: HashSet::new(),
        }
    }

    fn task_idx(&self, task: &TaskId) -> Result<NodeIdx, ModelError> {
        self.workflow
            .graph()
            .find_task(task)
            .filter(|i| !self.removed_nodes.contains(i))
            .ok_or_else(|| ModelError::UnknownTask(task.clone()))
    }

    fn label_idx(&self, label: &Label) -> Result<NodeIdx, ModelError> {
        self.workflow
            .graph()
            .find_label(label)
            .filter(|i| !self.removed_nodes.contains(i))
            .ok_or_else(|| ModelError::UnknownLabel(label.clone()))
    }

    fn remove_edge(&mut self, from: NodeIdx, to: NodeIdx) {
        self.live_children.get_mut(&from).map(|s| s.remove(&to));
        self.live_parents.get_mut(&to).map(|s| s.remove(&from));
    }

    fn is_isolated(&self, idx: NodeIdx) -> bool {
        self.live_parents[&idx].is_empty() && self.live_children[&idx].is_empty()
    }

    fn remove_if_isolated(&mut self, idx: NodeIdx) {
        if self.is_isolated(idx) {
            self.removed_nodes.insert(idx);
        }
    }

    /// Rule 1: removes the `task -> label` output edge where `label` is a
    /// sink. The label node itself is removed if it becomes isolated.
    ///
    /// # Errors
    ///
    /// * [`PruneViolation::NoSuchEdge`] — the edge is absent.
    /// * [`PruneViolation::OutputNotSink`] — the label has consumers.
    /// * [`PruneViolation::LastOutput`] — it is the task's only output.
    pub fn prune_sink_output(&mut self, task: &TaskId, label: &Label) -> Result<(), ModelError> {
        let t = self.task_idx(task)?;
        let l = self.label_idx(label)?;
        if !self.live_children[&t].contains(&l) {
            return Err(PruneViolation::NoSuchEdge(task.clone(), label.clone()).into());
        }
        if !self.live_children[&l].is_empty() {
            return Err(PruneViolation::OutputNotSink(task.clone(), label.clone()).into());
        }
        if self.live_children[&t].len() < 2 {
            return Err(PruneViolation::LastOutput(task.clone()).into());
        }
        self.remove_edge(t, l);
        self.remove_if_isolated(l);
        Ok(())
    }

    /// Rule 2: removes the `label -> task` input edge where `label` is a
    /// source and `task` is disjunctive. The label node is removed if it
    /// becomes isolated.
    ///
    /// # Errors
    ///
    /// * [`PruneViolation::NoSuchEdge`] — the edge is absent.
    /// * [`PruneViolation::ConjunctiveInput`] — the task requires all inputs.
    /// * [`PruneViolation::InputNotSource`] — the label has a producer.
    /// * [`PruneViolation::LastInput`] — it is the task's only input.
    pub fn prune_source_input(&mut self, task: &TaskId, label: &Label) -> Result<(), ModelError> {
        let t = self.task_idx(task)?;
        let l = self.label_idx(label)?;
        if !self.live_parents[&t].contains(&l) {
            return Err(PruneViolation::NoSuchEdge(task.clone(), label.clone()).into());
        }
        if self.workflow.graph().mode(t) != Mode::Disjunctive {
            return Err(PruneViolation::ConjunctiveInput(task.clone(), label.clone()).into());
        }
        if !self.live_parents[&l].is_empty() {
            return Err(PruneViolation::InputNotSource(task.clone(), label.clone()).into());
        }
        if self.live_parents[&t].len() < 2 {
            return Err(PruneViolation::LastInput(task.clone()).into());
        }
        self.remove_edge(l, t);
        self.remove_if_isolated(l);
        Ok(())
    }

    /// Rule 3: removes a task together with its dangling labels: former
    /// input labels and former output labels that become isolated are
    /// removed with it (the rule's "task inputs that are sources and task
    /// outputs that are sinks are also pruned").
    ///
    /// Output labels that still have consumers stay and become sources;
    /// input labels that still have a producer or other consumers stay.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] if the task is absent or already
    /// removed.
    pub fn prune_task(&mut self, task: &TaskId) -> Result<(), ModelError> {
        let t = self.task_idx(task)?;
        let parents: Vec<NodeIdx> = self.live_parents[&t].iter().copied().collect();
        let children: Vec<NodeIdx> = self.live_children[&t].iter().copied().collect();
        for p in &parents {
            self.remove_edge(*p, t);
        }
        for c in &children {
            self.remove_edge(t, *c);
        }
        self.removed_nodes.insert(t);
        for p in parents {
            self.remove_if_isolated(p);
        }
        for c in children {
            self.remove_if_isolated(c);
        }
        Ok(())
    }

    /// Rebuilds and re-validates the pruned workflow.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Invalid`] if the removals left the graph
    /// structurally invalid (this indicates a sequencing of rule-3 removals
    /// that stranded a task; individual rules preserve validity).
    pub fn finish(self) -> Result<Workflow, ModelError> {
        let g = self.workflow.graph();
        let keep_nodes: HashSet<NodeIdx> = g
            .node_indices()
            .filter(|i| !self.removed_nodes.contains(i))
            .collect();
        let mut keep_edges: HashSet<(NodeIdx, NodeIdx)> = HashSet::new();
        for (&from, children) in &self.live_children {
            if !keep_nodes.contains(&from) {
                continue;
            }
            for &to in children {
                if keep_nodes.contains(&to) {
                    keep_edges.insert((from, to));
                }
            }
        }
        let sub = g.subgraph(&keep_nodes, &keep_edges);
        Workflow::from_graph(sub).map_err(ModelError::Invalid)
    }
}

/// Prunes a composed workflow down to what a specification needs: the
/// backward closure of the goal set ω.
///
/// Every label in ω, every task producing a needed label, and every input of
/// a kept task is kept; everything else is removed. Kept tasks always retain
/// at least one output (the needed one) and all of their inputs, so the
/// result is a valid workflow. Extra sinks can survive only when they are
/// the sole output of a kept task (rule 1 forbids removing those).
///
/// Note: this utility keeps *all* inputs of disjunctive tasks. Choosing a
/// single input among alternatives is the job of the construction
/// algorithm's pruning phase (`construct`), which uses distance information
/// to pick one.
///
/// # Errors
///
/// Returns [`ModelError::UnknownLabel`] if some goal label of `spec` does
/// not appear in the workflow at all.
pub fn prune_to_spec(workflow: &Workflow, spec: &Spec) -> Result<Workflow, ModelError> {
    let g = workflow.graph();
    // Backward closure from ω.
    let mut needed: HashSet<NodeIdx> = HashSet::new();
    let mut stack: Vec<NodeIdx> = Vec::new();
    for goal in spec.goals() {
        let idx = g
            .find_label(goal)
            .ok_or_else(|| ModelError::UnknownLabel(goal.clone()))?;
        if needed.insert(idx) {
            stack.push(idx);
        }
    }
    while let Some(n) = stack.pop() {
        for &p in g.parents(n) {
            if needed.insert(p) {
                stack.push(p);
            }
        }
        // For tasks keep all inputs; for labels keep the (single) producer —
        // both are exactly "parents".
        if g.kind(n) == NodeKind::Task {
            // inputs already covered by parents loop above
        }
    }

    let keep_edges: HashSet<(NodeIdx, NodeIdx)> = g
        .edges()
        .filter(|(f, t)| needed.contains(f) && needed.contains(t))
        .collect();
    let sub = g.subgraph(&needed, &keep_edges);
    Workflow::from_graph(sub).map_err(ModelError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::ids::Mode;

    /// a -> t1 -> {b, x}; b -> t2 -> c     (x is an extra sink)
    fn with_extra_sink() -> Workflow {
        Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b", "x"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["c"])
            .done()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn rule1_removes_extra_sink_output() {
        let w = with_extra_sink();
        let mut p = Pruner::new(&w);
        p.prune_sink_output(&TaskId::new("t1"), &Label::new("x"))
            .unwrap();
        let w2 = p.finish().unwrap();
        assert!(!w2.contains_label(&Label::new("x")));
        assert_eq!(
            w2.outset().iter().map(|l| l.as_str()).collect::<Vec<_>>(),
            ["c"]
        );
    }

    #[test]
    fn rule1_refuses_last_output() {
        let w = with_extra_sink();
        let mut p = Pruner::new(&w);
        let err = p
            .prune_sink_output(&TaskId::new("t2"), &Label::new("c"))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::PruneViolation(PruneViolation::LastOutput(_))
        ));
    }

    #[test]
    fn rule1_refuses_non_sink() {
        let w = with_extra_sink();
        let mut p = Pruner::new(&w);
        let err = p
            .prune_sink_output(&TaskId::new("t1"), &Label::new("b"))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::PruneViolation(PruneViolation::OutputNotSink(..))
        ));
    }

    /// {a, b} -> disjunctive t -> c
    fn disjunctive_two_inputs() -> Workflow {
        Fragment::builder("w")
            .task("t", Mode::Disjunctive)
            .inputs(["a", "b"])
            .outputs(["c"])
            .done()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn rule2_removes_alternative_source_input() {
        let w = disjunctive_two_inputs();
        let mut p = Pruner::new(&w);
        p.prune_source_input(&TaskId::new("t"), &Label::new("b"))
            .unwrap();
        let w2 = p.finish().unwrap();
        assert!(!w2.contains_label(&Label::new("b")));
        assert_eq!(
            w2.inset().iter().map(|l| l.as_str()).collect::<Vec<_>>(),
            ["a"]
        );
    }

    #[test]
    fn rule2_refuses_conjunctive_task() {
        let w = with_extra_sink();
        let mut p = Pruner::new(&w);
        let err = p
            .prune_source_input(&TaskId::new("t1"), &Label::new("a"))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::PruneViolation(PruneViolation::ConjunctiveInput(..))
        ));
    }

    #[test]
    fn rule2_refuses_last_input() {
        let mut w = disjunctive_two_inputs();
        let mut p = Pruner::new(&w);
        p.prune_source_input(&TaskId::new("t"), &Label::new("b"))
            .unwrap();
        let err = p
            .prune_source_input(&TaskId::new("t"), &Label::new("a"))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::PruneViolation(PruneViolation::LastInput(_))
        ));
        w = p.finish().unwrap();
        assert!(w.contains_label(&Label::new("a")));
    }

    #[test]
    fn rule2_refuses_input_with_producer() {
        // a -> t1 -> b; {b, z} -> t2(disj) -> c. Input b of t2 has a producer.
        let w: Workflow = Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t2", Mode::Disjunctive)
            .inputs(["b", "z"])
            .outputs(["c"])
            .done()
            .build()
            .unwrap()
            .into();
        let mut p = Pruner::new(&w);
        let err = p
            .prune_source_input(&TaskId::new("t2"), &Label::new("b"))
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::PruneViolation(PruneViolation::InputNotSource(..))
        ));
        // but z is prunable
        p.prune_source_input(&TaskId::new("t2"), &Label::new("z"))
            .unwrap();
        assert!(p.finish().is_ok());
    }

    #[test]
    fn rule3_removes_task_and_dangling_labels() {
        // Two independent chains; remove one entirely.
        let w: Workflow = Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["c"])
            .outputs(["d"])
            .done()
            .build()
            .unwrap()
            .into();
        let mut p = Pruner::new(&w);
        p.prune_task(&TaskId::new("t2")).unwrap();
        let w2 = p.finish().unwrap();
        assert!(!w2.contains_task(&TaskId::new("t2")));
        assert!(!w2.contains_label(&Label::new("c")));
        assert!(!w2.contains_label(&Label::new("d")));
        assert!(w2.contains_task(&TaskId::new("t1")));
    }

    #[test]
    fn rule3_keeps_shared_labels() {
        // a -> t1 -> b ; b -> t2 -> c. Removing t2 keeps b (it has a producer).
        let w: Workflow = Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["c"])
            .done()
            .build()
            .unwrap()
            .into();
        let mut p = Pruner::new(&w);
        p.prune_task(&TaskId::new("t2")).unwrap();
        let w2 = p.finish().unwrap();
        assert!(w2.contains_label(&Label::new("b")));
        assert!(!w2.contains_label(&Label::new("c")));
        assert_eq!(
            w2.outset().iter().map(|l| l.as_str()).collect::<Vec<_>>(),
            ["b"]
        );
    }

    #[test]
    fn pruning_removed_task_errors() {
        let w = with_extra_sink();
        let mut p = Pruner::new(&w);
        p.prune_task(&TaskId::new("t2")).unwrap();
        assert!(matches!(
            p.prune_task(&TaskId::new("t2")),
            Err(ModelError::UnknownTask(_))
        ));
    }

    #[test]
    fn prune_to_spec_keeps_goal_closure() {
        // Knowledge: a->t1->b->t2->c and b->t3->d. Goal {c} should drop t3/d.
        let w: Workflow = Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["c"])
            .done()
            .task("t3", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["d"])
            .done()
            .build()
            .unwrap()
            .into();
        let spec = Spec::new(["a"], ["c"]);
        let w2 = prune_to_spec(&w, &spec).unwrap();
        assert!(w2.contains_task(&TaskId::new("t2")));
        assert!(!w2.contains_task(&TaskId::new("t3")));
        assert!(!w2.contains_label(&Label::new("d")));
        assert!(spec.accepts(&w2));
    }

    #[test]
    fn prune_to_spec_missing_goal_errors() {
        let w = with_extra_sink();
        let spec = Spec::new(["a"], ["nope"]);
        assert!(matches!(
            prune_to_spec(&w, &spec),
            Err(ModelError::UnknownLabel(_))
        ));
    }

    #[test]
    fn finish_without_ops_is_identity() {
        let w = with_extra_sink();
        let w2 = Pruner::new(&w).finish().unwrap();
        assert_eq!(w.inset(), w2.inset());
        assert_eq!(w.outset(), w2.outset());
        assert_eq!(w.task_count(), w2.task_count());
    }
}
