//! Serde support for the graph-shaped model types.
//!
//! Fragments and workflows serialize to a portable node-link form —
//! `{ tasks: [{name, mode, inputs, outputs}] }` — so that knowhow
//! databases can be persisted and shipped between devices regardless of
//! internal node numbering. Deserialization re-validates, so a decoded
//! [`Workflow`] upholds the same invariants as a constructed one.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::fragment::{Fragment, FragmentId};
use crate::graph::Graph;
use crate::ids::{Label, Mode, NodeKind, TaskId};
use crate::workflow::Workflow;

/// Portable description of one task with its adjacent labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TaskRecord {
    name: TaskId,
    mode: Mode,
    inputs: Vec<Label>,
    outputs: Vec<Label>,
}

/// Portable description of a workflow graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct GraphRecord {
    tasks: Vec<TaskRecord>,
    /// Labels not adjacent to any task (isolated trigger-goals).
    isolated_labels: Vec<Label>,
}

fn graph_to_record(g: &Graph) -> GraphRecord {
    let mut tasks = Vec::new();
    for idx in g.node_indices() {
        if g.kind(idx) != NodeKind::Task {
            continue;
        }
        let name = g.key(idx).as_task().expect("task kind");
        let inputs = g
            .parents(idx)
            .iter()
            .filter_map(|&p| g.key(p).as_label())
            .collect();
        let outputs = g
            .children(idx)
            .iter()
            .filter_map(|&c| g.key(c).as_label())
            .collect();
        tasks.push(TaskRecord {
            name,
            mode: g.mode(idx),
            inputs,
            outputs,
        });
    }
    let isolated_labels = g
        .node_indices()
        .filter(|&i| g.kind(i) == NodeKind::Label && g.in_degree(i) == 0 && g.out_degree(i) == 0)
        .filter_map(|i| g.key(i).as_label())
        .collect();
    GraphRecord {
        tasks,
        isolated_labels,
    }
}

fn record_to_graph(r: &GraphRecord) -> Result<Graph, crate::error::ModelError> {
    let mut g = Graph::new();
    for t in &r.tasks {
        let tidx = g.try_add_task(t.name.clone(), t.mode)?;
        for l in &t.inputs {
            let lidx = g.add_label(l.clone());
            g.add_edge(lidx, tidx)?;
        }
        for l in &t.outputs {
            let lidx = g.add_label(l.clone());
            g.add_edge(tidx, lidx)?;
        }
    }
    for l in &r.isolated_labels {
        g.add_label(l.clone());
    }
    Ok(g)
}

impl Serialize for Workflow {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        graph_to_record(self.graph()).serialize(s)
    }
}

impl<'de> Deserialize<'de> for Workflow {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let record = GraphRecord::deserialize(d)?;
        let graph = record_to_graph(&record).map_err(D::Error::custom)?;
        Workflow::from_graph(graph).map_err(D::Error::custom)
    }
}

#[derive(Serialize, Deserialize)]
struct FragmentRecord {
    id: FragmentId,
    #[serde(flatten)]
    graph: GraphRecord,
}

impl Serialize for Fragment {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        FragmentRecord {
            id: self.id().clone(),
            graph: graph_to_record(self.graph()),
        }
        .serialize(s)
    }
}

impl<'de> Deserialize<'de> for Fragment {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let record = FragmentRecord::deserialize(d)?;
        let graph = record_to_graph(&record.graph).map_err(D::Error::custom)?;
        let workflow = Workflow::from_graph(graph).map_err(D::Error::custom)?;
        Ok(Fragment::from_workflow(record.id, workflow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Spec;

    // A tiny hand-rolled "serde transcoder" through the GraphRecord types
    // lets us test round-trips without a serde format crate: we serialize
    // into `serde_value`-like structures by... simply round-tripping the
    // records directly.
    fn roundtrip_workflow(w: &Workflow) -> Workflow {
        let record = graph_to_record(w.graph());
        let graph = record_to_graph(&record).expect("record is consistent");
        Workflow::from_graph(graph).expect("round-trip preserves validity")
    }

    fn sample_fragment() -> Fragment {
        Fragment::builder("lunch")
            .task("prepare soup and salad", Mode::Conjunctive)
            .inputs(["lunch ingredients"])
            .outputs(["lunch prepared"])
            .done()
            .task("serve buffet", Mode::Disjunctive)
            .inputs(["lunch prepared"])
            .outputs(["lunch served"])
            .done()
            .build()
            .unwrap()
    }

    #[test]
    fn workflow_record_round_trips() {
        let w: Workflow = sample_fragment().into();
        let w2 = roundtrip_workflow(&w);
        assert_eq!(w.inset(), w2.inset());
        assert_eq!(w.outset(), w2.outset());
        assert_eq!(w.task_count(), w2.task_count());
        assert_eq!(
            w.task_mode(&TaskId::new("serve buffet")),
            w2.task_mode(&TaskId::new("serve buffet"))
        );
        assert_eq!(
            w.task_inputs(&TaskId::new("prepare soup and salad")),
            w2.task_inputs(&TaskId::new("prepare soup and salad"))
        );
    }

    #[test]
    fn isolated_labels_survive() {
        // A trivial workflow (goal == trigger) is just an isolated label.
        let mut g = Graph::new();
        g.add_label("sun is up");
        let w = Workflow::from_graph(g).unwrap();
        let w2 = roundtrip_workflow(&w);
        assert!(w2.contains_label(&Label::new("sun is up")));
        assert!(Spec::new(["sun is up"], ["sun is up"]).accepts(&w2));
    }

    #[test]
    fn invalid_records_are_rejected() {
        // Two tasks producing the same label: structurally expressible in
        // a record, rejected at validation.
        let record = GraphRecord {
            tasks: vec![
                TaskRecord {
                    name: TaskId::new("t1"),
                    mode: Mode::Conjunctive,
                    inputs: vec![Label::new("a")],
                    outputs: vec![Label::new("x")],
                },
                TaskRecord {
                    name: TaskId::new("t2"),
                    mode: Mode::Conjunctive,
                    inputs: vec![Label::new("b")],
                    outputs: vec![Label::new("x")],
                },
            ],
            isolated_labels: vec![],
        };
        let graph = record_to_graph(&record).expect("graph builds");
        assert!(
            Workflow::from_graph(graph).is_err(),
            "validation must reject"
        );
    }

    #[test]
    fn serde_trait_impls_are_wired() {
        // Compile-time check that the trait impls exist and are object-
        // safe enough for generic use.
        fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}
        assert_serde::<Workflow>();
        assert_serde::<Fragment>();
    }
}
