//! Workflow specifications.
//!
//! §2.2: "A workflow is constructed in response to an expressed need. In
//! general, this need is stated in terms of a specification S: a predicate
//! that indicates whether or not a workflow is satisfactory … A workflow W
//! with inset `W.in` and outset `W.out` then satisfies a specification S if
//! and only if `S(W.in, W.out)` is true."
//!
//! §3.1 fixes the canonical form used by the construction algorithm:
//! `W.in ⊆ ι ∧ W.out = ω`, "with ι being the labels that represent the
//! triggering conditions and ω being the labels that represent the goal".

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::Label;
use crate::workflow::Workflow;

/// The canonical specification `W.in ⊆ ι ∧ W.out = ω` (§3.1).
///
/// `triggers` is ι (conditions available in the environment) and `goals` is
/// ω (labels the workflow must deliver).
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Spec {
    triggers: BTreeSet<Label>,
    goals: BTreeSet<Label>,
}

impl Spec {
    /// Creates a specification from triggering conditions ι and goals ω.
    pub fn new<I, O>(triggers: I, goals: O) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Label>,
        O: IntoIterator,
        O::Item: Into<Label>,
    {
        Spec {
            triggers: triggers.into_iter().map(Into::into).collect(),
            goals: goals.into_iter().map(Into::into).collect(),
        }
    }

    /// The triggering conditions ι.
    pub fn triggers(&self) -> &BTreeSet<Label> {
        &self.triggers
    }

    /// The goal labels ω.
    pub fn goals(&self) -> &BTreeSet<Label> {
        &self.goals
    }

    /// The paper's *strict* satisfaction predicate:
    /// `W.in ⊆ ι ∧ W.out = ω`.
    ///
    /// Strict equality of the outset can be impossible when one goal label
    /// feeds the production of another (the label then has an outgoing edge
    /// and is no longer a sink); see [`Spec::accepts`] for the practical
    /// predicate used by construction.
    pub fn is_satisfied_strict(&self, workflow: &Workflow) -> bool {
        workflow.inset().is_subset(&self.triggers) && *workflow.outset() == self.goals
    }

    /// The practical satisfaction predicate used by the construction
    /// algorithm and the runtime:
    ///
    /// * `W.in ⊆ ι` — the workflow only requires available triggers,
    /// * every goal of ω appears in the workflow (it is produced or is a
    ///   trigger that flows through), and
    /// * `W.out ⊆ ω` — the workflow delivers no unwanted extra results.
    ///
    /// For specifications whose goals are independent (no goal feeds
    /// another), this coincides with [`Spec::is_satisfied_strict`]. The
    /// relaxation only matters in the corner case the paper's formalization
    /// glosses over, where a goal label is also consumed inside the
    /// workflow and therefore is not a sink.
    pub fn accepts(&self, workflow: &Workflow) -> bool {
        workflow.inset().is_subset(&self.triggers)
            && workflow.outset().is_subset(&self.goals)
            && self.goals.iter().all(|g| workflow.contains_label(g))
    }

    /// True when the specification is trivially satisfied by the goals
    /// already being triggers (ω ⊆ ι): nothing needs to be done.
    pub fn is_trivial(&self) -> bool {
        self.goals.is_subset(&self.triggers)
    }
}

impl fmt::Debug for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spec")
            .field("triggers", &self.triggers)
            .field("goals", &self.goals)
            .finish()
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t: Vec<&str> = self.triggers.iter().map(|l| l.as_str()).collect();
        let g: Vec<&str> = self.goals.iter().map(|l| l.as_str()).collect();
        write!(f, "ι={{{}}} → ω={{{}}}", t.join(", "), g.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::ids::Mode;

    fn chain() -> Workflow {
        Fragment::builder("w")
            .task("t", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .build()
            .unwrap()
            .into()
    }

    #[test]
    fn strict_satisfaction_matches_inset_outset() {
        let w = chain();
        assert!(Spec::new(["a"], ["b"]).is_satisfied_strict(&w));
        assert!(Spec::new(["a", "z"], ["b"]).is_satisfied_strict(&w)); // W.in ⊆ ι
        assert!(!Spec::new(["z"], ["b"]).is_satisfied_strict(&w)); // a ∉ ι
        assert!(!Spec::new(["a"], ["b", "c"]).is_satisfied_strict(&w)); // W.out ≠ ω
    }

    #[test]
    fn accepts_agrees_with_strict_for_independent_goals() {
        let w = chain();
        for (spec, expect) in [
            (Spec::new(["a"], ["b"]), true),
            (Spec::new(["z"], ["b"]), false),
            (Spec::new(["a"], ["c"]), false),
        ] {
            assert_eq!(spec.is_satisfied_strict(&w), expect);
            assert_eq!(spec.accepts(&w), expect, "spec {spec}");
        }
    }

    #[test]
    fn accepts_handles_goal_feeding_goal() {
        // a -> t1 -> b -> t2 -> c : goals {b, c}. b is consumed by t2 so it
        // is not a sink; strict fails but accepts succeeds.
        let w: Workflow = Fragment::builder("w")
            .task("t1", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b"])
            .done()
            .task("t2", Mode::Conjunctive)
            .inputs(["b"])
            .outputs(["c"])
            .done()
            .build()
            .unwrap()
            .into();
        let spec = Spec::new(["a"], ["b", "c"]);
        assert!(!spec.is_satisfied_strict(&w));
        assert!(spec.accepts(&w));
    }

    #[test]
    fn accepts_rejects_extra_outputs() {
        let w = chain();
        // Workflow delivers b, but spec only wants... b plus the workflow
        // must not deliver anything outside ω.
        let spec = Spec::new(["a"], ["b"]);
        assert!(spec.accepts(&w));
        let narrower: Workflow = Fragment::builder("w2")
            .task("t", Mode::Conjunctive)
            .inputs(["a"])
            .outputs(["b", "extra"])
            .done()
            .build()
            .unwrap()
            .into();
        assert!(!spec.accepts(&narrower));
    }

    #[test]
    fn trivial_specs() {
        assert!(Spec::new(["a", "b"], ["a"]).is_trivial());
        assert!(!Spec::new(["a"], ["b"]).is_trivial());
        assert!(Spec::new(["a"], Vec::<Label>::new()).is_trivial());
    }

    #[test]
    fn display_shows_iota_and_omega() {
        let s = Spec::new(["a"], ["b"]).to_string();
        assert_eq!(s, "ι={a} → ω={b}");
    }
}
