//! In-memory fragment storage with a consumed-label index.
//!
//! This is the local analogue of a host's fragment database (the runtime's
//! Fragment Manager wraps one of these) and the reference implementation of
//! [`FragmentSource`] for tests and single-process use.

use std::collections::HashMap;
use std::fmt;

use crate::construct::incremental::FragmentSource;
use crate::fragment::{Fragment, FragmentId};
use crate::ids::Label;

/// A fragment database indexed by the labels its tasks consume.
#[derive(Clone, Default)]
pub struct InMemoryFragmentStore {
    fragments: Vec<Fragment>,
    by_id: HashMap<FragmentId, usize>,
    by_consumed_label: HashMap<Label, Vec<usize>>,
}

impl InMemoryFragmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryFragmentStore::default()
    }

    /// Inserts a fragment, replacing any fragment with the same id.
    ///
    /// Returns `true` if the fragment was new, `false` if it replaced an
    /// existing one.
    pub fn insert(&mut self, fragment: Fragment) -> bool {
        if let Some(&pos) = self.by_id.get(fragment.id()) {
            // Replace: rebuild the index entries for this slot.
            let old = std::mem::replace(&mut self.fragments[pos], fragment);
            for label in old.all_input_labels() {
                if let Some(v) = self.by_consumed_label.get_mut(&label) {
                    v.retain(|&i| i != pos);
                }
            }
            let new_labels = self.fragments[pos].all_input_labels();
            for label in new_labels {
                self.by_consumed_label.entry(label).or_default().push(pos);
            }
            return false;
        }
        let pos = self.fragments.len();
        self.by_id.insert(fragment.id().clone(), pos);
        for label in fragment.all_input_labels() {
            self.by_consumed_label.entry(label).or_default().push(pos);
        }
        self.fragments.push(fragment);
        true
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True if the store holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Looks up a fragment by id.
    pub fn get(&self, id: &FragmentId) -> Option<&Fragment> {
        self.by_id.get(id).map(|&i| &self.fragments[i])
    }

    /// All stored fragments in insertion order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.fragments.iter()
    }

    /// Fragments containing a task that consumes any of `labels`,
    /// deduplicated, in insertion order.
    pub fn consuming(&self, labels: &[Label]) -> Vec<&Fragment> {
        let mut seen = vec![false; self.fragments.len()];
        let mut out = Vec::new();
        for label in labels {
            if let Some(indices) = self.by_consumed_label.get(label) {
                for &i in indices {
                    if !seen[i] {
                        seen[i] = true;
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
        out.into_iter().map(|i| &self.fragments[i]).collect()
    }
}

impl FragmentSource for InMemoryFragmentStore {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Fragment> {
        self.consuming(labels).into_iter().cloned().collect()
    }
}

impl FromIterator<Fragment> for InMemoryFragmentStore {
    fn from_iter<I: IntoIterator<Item = Fragment>>(iter: I) -> Self {
        let mut store = InMemoryFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl Extend<Fragment> for InMemoryFragmentStore {
    fn extend<I: IntoIterator<Item = Fragment>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for InMemoryFragmentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InMemoryFragmentStore")
            .field("fragments", &self.fragments.len())
            .field("indexed_labels", &self.by_consumed_label.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;

    fn frag(id: &str, task: &str, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(
            id,
            task,
            Mode::Disjunctive,
            ins.iter().copied(),
            outs.iter().copied(),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = InMemoryFragmentStore::new();
        assert!(s.insert(frag("f1", "t1", &["a"], &["b"])));
        assert!(s.insert(frag("f2", "t2", &["b"], &["c"])));
        assert_eq!(s.len(), 2);
        assert!(s.get(&FragmentId::new("f1")).is_some());
        assert!(s.get(&FragmentId::new("zz")).is_none());
    }

    #[test]
    fn consuming_matches_input_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f1", "t1", &["a"], &["b"]));
        s.insert(frag("f2", "t2", &["b"], &["c"]));
        s.insert(frag("f3", "t3", &["a", "x"], &["d"]));
        let hits = s.consuming(&[Label::new("a")]);
        let ids: Vec<&str> = hits.iter().map(|f| f.id().as_str()).collect();
        assert_eq!(ids, ["f1", "f3"]);
        assert!(s.consuming(&[Label::new("nope")]).is_empty());
    }

    #[test]
    fn consuming_dedupes_across_query_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a", "b"], &["c"]));
        let hits = s.consuming(&[Label::new("a"), Label::new("b")]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn internal_input_labels_are_indexed() {
        // Fragment with an internal label: t1 -> mid -> t2. A query on
        // `mid` must return the fragment even though mid is not a source.
        let f = Fragment::builder("f")
            .task("t1", Mode::Disjunctive)
            .inputs(["a"])
            .outputs(["mid"])
            .done()
            .task("t2", Mode::Disjunctive)
            .inputs(["mid"])
            .outputs(["b"])
            .done()
            .build()
            .unwrap();
        let mut s = InMemoryFragmentStore::new();
        s.insert(f);
        assert_eq!(s.consuming(&[Label::new("mid")]).len(), 1);
    }

    #[test]
    fn replacing_fragment_updates_index() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a"], &["b"]));
        assert!(!s.insert(frag("f", "t", &["x"], &["b"])), "replacement");
        assert_eq!(s.len(), 1);
        assert!(s.consuming(&[Label::new("a")]).is_empty());
        assert_eq!(s.consuming(&[Label::new("x")]).len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let s: InMemoryFragmentStore = vec![
            frag("f1", "t1", &["a"], &["b"]),
            frag("f2", "t2", &["b"], &["c"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        let mut s = s;
        s.extend([frag("f3", "t3", &["c"], &["d"])]);
        assert_eq!(s.len(), 3);
    }
}
