//! In-memory fragment storage with a consumed-label index.
//!
//! Two stores share one design:
//!
//! * [`InMemoryFragmentStore`] — a single monolithic index; the local
//!   analogue of a host's fragment database (the runtime's Fragment
//!   Manager wraps a store) and the reference implementation of
//!   [`FragmentSource`] for tests and single-process use.
//! * [`ShardedFragmentStore`] — the same database partitioned across N
//!   independently queryable shards by produced-label symbol, so that
//!   frontier queries can fan out across worker threads (see
//!   [`ParallelFragmentSource`] and
//!   [`crate::IncrementalConstructor::workers`]). A single-shard store
//!   degenerates to the monolithic layout, so small universes pay nothing
//!   for the partitioning.
//!
//! Fragments are held behind [`Arc`] so that answering a frontier query
//! hands out shared references instead of deep-copying whole workflow
//! graphs — the incremental constructor, the runtime's Fragment Manager
//! and the simulated network all share one allocation per fragment.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::construct::incremental::FragmentSource;
use crate::fragment::{Fragment, FragmentId};
use crate::fx::FxHashMap;
use crate::ids::Label;

/// A fragment database indexed by the labels its tasks consume.
#[derive(Default)]
pub struct InMemoryFragmentStore {
    fragments: Vec<Arc<Fragment>>,
    by_id: FxHashMap<FragmentId, usize>,
    by_consumed_label: FxHashMap<Label, Vec<u32>>,
    /// Reusable dedup bitset for [`InMemoryFragmentStore::consuming`]
    /// (one bit per stored fragment, zeroed after each query). Behind a
    /// mutex so queries stay `&self` and the store stays `Sync`.
    seen_scratch: Mutex<Vec<u64>>,
}

impl Clone for InMemoryFragmentStore {
    fn clone(&self) -> Self {
        InMemoryFragmentStore {
            fragments: self.fragments.clone(),
            by_id: self.by_id.clone(),
            by_consumed_label: self.by_consumed_label.clone(),
            seen_scratch: Mutex::new(Vec::new()),
        }
    }
}

impl InMemoryFragmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryFragmentStore::default()
    }

    /// Inserts a fragment, replacing any fragment with the same id.
    ///
    /// Accepts owned fragments or already-shared `Arc<Fragment>`s (no
    /// re-allocation in the latter case).
    ///
    /// Returns `true` if the fragment was new, `false` if it replaced an
    /// existing one.
    pub fn insert(&mut self, fragment: impl Into<Arc<Fragment>>) -> bool {
        let fragment = fragment.into();
        if let Some(&pos) = self.by_id.get(fragment.id()) {
            // Replace: rebuild the index entries for this slot, pruning
            // buckets the old fragment leaves empty.
            let old = std::mem::replace(&mut self.fragments[pos], fragment);
            for label in old.all_input_labels() {
                if let Some(v) = self.by_consumed_label.get_mut(&label) {
                    v.retain(|&i| i as usize != pos);
                    if v.is_empty() {
                        self.by_consumed_label.remove(&label);
                    }
                }
            }
            let new_labels = self.fragments[pos].all_input_labels();
            for label in new_labels {
                self.by_consumed_label
                    .entry(label)
                    .or_default()
                    .push(pos as u32);
            }
            return false;
        }
        let pos = self.fragments.len();
        self.by_id.insert(fragment.id().clone(), pos);
        for label in fragment.all_input_labels() {
            self.by_consumed_label
                .entry(label)
                .or_default()
                .push(pos as u32);
        }
        self.fragments.push(fragment);
        true
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True if the store holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Looks up a fragment by id.
    pub fn get(&self, id: &FragmentId) -> Option<&Arc<Fragment>> {
        self.by_id.get(id).map(|&i| &self.fragments[i])
    }

    /// All stored fragments in insertion order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.fragments.iter().map(Arc::as_ref)
    }

    /// All stored fragments as shared handles, in insertion order.
    pub fn fragments_shared(&self) -> impl Iterator<Item = &Arc<Fragment>> + '_ {
        self.fragments.iter()
    }

    /// Fragments containing a task that consumes any of `labels`,
    /// deduplicated, in insertion order. Hands out `Arc` clones — callers
    /// share the stored allocation.
    pub fn consuming(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        let mut seen = self.seen_scratch.lock().expect("store scratch lock");
        let words = self.fragments.len().div_ceil(64);
        if seen.len() < words {
            seen.resize(words, 0);
        }
        let mut hits: Vec<u32> = Vec::new();
        for label in labels {
            if let Some(indices) = self.by_consumed_label.get(label) {
                for &i in indices {
                    let (w, b) = (i as usize / 64, i % 64);
                    if seen[w] & (1 << b) == 0 {
                        seen[w] |= 1 << b;
                        hits.push(i);
                    }
                }
            }
        }
        // Zero exactly the bits we set, leaving the scratch clean for the
        // next query without a full memset.
        for &i in &hits {
            seen[i as usize / 64] &= !(1 << (i % 64));
        }
        drop(seen);
        hits.sort_unstable();
        hits.into_iter()
            .map(|i| Arc::clone(&self.fragments[i as usize]))
            .collect()
    }
}

impl FragmentSource for InMemoryFragmentStore {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        self.consuming(labels)
    }
}

impl FromIterator<Fragment> for InMemoryFragmentStore {
    fn from_iter<I: IntoIterator<Item = Fragment>>(iter: I) -> Self {
        let mut store = InMemoryFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl FromIterator<Arc<Fragment>> for InMemoryFragmentStore {
    fn from_iter<I: IntoIterator<Item = Arc<Fragment>>>(iter: I) -> Self {
        let mut store = InMemoryFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl Extend<Fragment> for InMemoryFragmentStore {
    fn extend<I: IntoIterator<Item = Fragment>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl Extend<Arc<Fragment>> for InMemoryFragmentStore {
    fn extend<I: IntoIterator<Item = Arc<Fragment>>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for InMemoryFragmentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InMemoryFragmentStore")
            .field("fragments", &self.fragments.len())
            .field("indexed_labels", &self.by_consumed_label.len())
            .finish()
    }
}

/// Error surfaced by a fragment storage backend (e.g. disk I/O or a
/// corrupt log record in a durable backend). In-memory backends never
/// fail.
pub type BackendError = Box<dyn std::error::Error + Send + Sync>;

/// A pluggable fragment storage backend behind the runtime's Fragment
/// Manager.
///
/// Every backend maintains (or can cheaply rebuild) an in-memory
/// [`ShardedFragmentStore`] as its query index — consumed-label queries
/// are always answered from memory; what varies is the *durability* of
/// the record of fragments. The in-memory backend is the store itself; a
/// durable backend (see `openwf-wire`'s `DurableFragmentStore`) appends
/// every insert to an on-disk segment log first and rebuilds the index by
/// replay on restart, so the same database (same fragments, same global
/// insertion sequence) comes back after a crash.
pub trait FragmentBackend: Send {
    /// Inserts a fragment, replacing any fragment with the same id.
    /// Returns `Ok(true)` when the fragment was new.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the backend cannot persist the fragment
    /// (disk full, closed log…). In-memory backends are infallible.
    fn insert_fragment(&mut self, fragment: Arc<Fragment>) -> Result<bool, BackendError>;

    /// The in-memory query index over the stored fragments.
    fn index(&self) -> &ShardedFragmentStore;

    /// Short human-readable backend name (`"memory"`, `"durable"`).
    fn backend_kind(&self) -> &'static str;

    /// Flushes any buffered writes to stable storage. No-op for
    /// in-memory backends.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the flush fails.
    fn sync(&mut self) -> Result<(), BackendError> {
        Ok(())
    }

    /// Backend-defined numeric metrics as stable `(name, value)` pairs,
    /// e.g. a durable backend's snapshot/compaction/replay tallies and
    /// live/garbage byte counts. Observability layers publish these
    /// into a metrics registry by delta, so values may move in either
    /// direction between calls. In-memory backends report nothing.
    fn metrics(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

impl FragmentBackend for ShardedFragmentStore {
    fn insert_fragment(&mut self, fragment: Arc<Fragment>) -> Result<bool, BackendError> {
        Ok(self.insert(fragment))
    }

    fn index(&self) -> &ShardedFragmentStore {
        self
    }

    fn backend_kind(&self) -> &'static str {
        "memory"
    }
}

/// A fragment source whose storage is partitioned into independently
/// queryable shards.
///
/// This is the seam the parallel frontier workers fan out over: each
/// `(shard, label)` candidate query touches only that shard's index, so
/// worker threads never contend. Implementations tag every hit with a
/// **global insertion sequence number**; collectors restore the exact
/// single-store `consuming()` order by sorting on it, which is what keeps
/// parallel construction deterministic regardless of worker count or
/// scheduling.
pub trait ParallelFragmentSource: Sync {
    /// Number of shards. Valid shard indices are `0..shard_count()`.
    fn shard_count(&self) -> usize;

    /// Appends `(sequence, fragment)` for every fragment in `shard` with
    /// a task consuming any of `labels`. May push the same fragment once
    /// per matching label; callers deduplicate by sequence number.
    fn shard_consuming(&self, shard: usize, labels: &[Label], out: &mut Vec<(u64, Arc<Fragment>)>);
}

/// One shard of a [`ShardedFragmentStore`]: a slice of the database with
/// its own consumed-label index.
#[derive(Clone, Debug, Default)]
struct StoreShard {
    /// `(global insertion sequence, fragment)` in insertion order.
    fragments: Vec<(u64, Arc<Fragment>)>,
    /// Label → positions (into `fragments`) of fragments consuming it.
    by_consumed_label: FxHashMap<Label, Vec<u32>>,
}

impl StoreShard {
    fn index_slot(&mut self, slot: usize) {
        for label in self.fragments[slot].1.all_input_labels() {
            self.by_consumed_label
                .entry(label)
                .or_default()
                .push(slot as u32);
        }
    }

    fn unindex_slot(&mut self, slot: usize, old: &Fragment) {
        for label in old.all_input_labels() {
            if let Some(v) = self.by_consumed_label.get_mut(&label) {
                v.retain(|&i| i as usize != slot);
                if v.is_empty() {
                    self.by_consumed_label.remove(&label);
                }
            }
        }
    }
}

/// A fragment database partitioned by produced-label [`crate::ids::Sym`]
/// across N shards.
///
/// Each fragment lives in exactly one shard — chosen from its first
/// produced label (falling back to its id for label-less knowhow) — so a
/// shard answers a consumed-label query from its own index alone and the
/// shard results concatenate without cross-shard deduplication. Queries
/// return fragments in global insertion order, exactly like
/// [`InMemoryFragmentStore::consuming`].
#[derive(Clone, Debug)]
pub struct ShardedFragmentStore {
    shards: Vec<StoreShard>,
    /// Fragment id → (shard, slot within shard).
    by_id: FxHashMap<FragmentId, (u32, u32)>,
    next_seq: u64,
}

impl Default for ShardedFragmentStore {
    fn default() -> Self {
        ShardedFragmentStore::new()
    }
}

impl ShardedFragmentStore {
    /// A store sharded for this machine: one shard per hardware thread.
    pub fn new() -> Self {
        ShardedFragmentStore::with_shards(crate::hardware_parallelism())
    }

    /// A store with exactly `shards` shards (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedFragmentStore {
            shards: vec![StoreShard::default(); shards],
            by_id: FxHashMap::default(),
            next_seq: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The home shard of a fragment: its first produced label's symbol
    /// modulo the shard count (fragments producing nothing — isolated
    /// knowhow — route by their id instead).
    fn shard_for(&self, fragment: &Fragment) -> usize {
        let sym = fragment
            .workflow()
            .outset()
            .iter()
            .next()
            .map(|l| l.sym())
            .unwrap_or_else(|| fragment.id().sym());
        sym.id() as usize % self.shards.len()
    }

    /// Inserts a fragment, replacing any fragment with the same id.
    ///
    /// Returns `true` if the fragment was new. A replacement stays in its
    /// original shard (and keeps its insertion sequence) even if its
    /// produced labels changed — queries fan out over every shard, so
    /// placement affects balance, not correctness.
    pub fn insert(&mut self, fragment: impl Into<Arc<Fragment>>) -> bool {
        let fragment = fragment.into();
        if let Some(&(shard, slot)) = self.by_id.get(fragment.id()) {
            let shard = &mut self.shards[shard as usize];
            let old = std::mem::replace(&mut shard.fragments[slot as usize].1, fragment);
            shard.unindex_slot(slot as usize, &old);
            shard.index_slot(slot as usize);
            return false;
        }
        let shard_idx = self.shard_for(&fragment) as u32;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_id.insert(
            fragment.id().clone(),
            (
                shard_idx,
                self.shards[shard_idx as usize].fragments.len() as u32,
            ),
        );
        let shard = &mut self.shards[shard_idx as usize];
        shard.fragments.push((seq, fragment));
        shard.index_slot(shard.fragments.len() - 1);
        true
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if the store holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// The sequence number the next *new* fragment id will be assigned.
    ///
    /// Fragments are never removed (a replace keeps its slot and
    /// sequence), so this always equals [`ShardedFragmentStore::len`] —
    /// exposed separately because checkpoint formats record it
    /// explicitly rather than deriving it from an invariant they would
    /// then silently depend on.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// One shard's `(global sequence, fragment)` entries in slot order —
    /// the exact physical layout of the database. Within a shard, slot
    /// order equals sequence order (slots are assigned at first insert
    /// and never move). Snapshot writers persist this layout;
    /// bit-identity checks compare it.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= self.shard_count()`.
    pub fn shard_entries(&self, shard: usize) -> impl Iterator<Item = (u64, &Arc<Fragment>)> + '_ {
        self.shards[shard].fragments.iter().map(|(s, f)| (*s, f))
    }

    /// Restores a fragment into an explicit `(shard, sequence)` position
    /// — the checkpoint-load dual of [`ShardedFragmentStore::insert`].
    ///
    /// The fragment is appended to `shard % shard_count()` (the modulus
    /// makes a snapshot taken under one shard count loadable — though no
    /// longer layout-identical — under another) and keeps the given
    /// global sequence, so a store rebuilt by restoring a snapshot's
    /// [`ShardedFragmentStore::shard_entries`] in ascending sequence
    /// order is bit-identical to the one snapshotted: same shards, same
    /// slots, same sequences, same query answers. `next_seq` advances
    /// past every restored sequence; tail inserts then continue the
    /// original numbering.
    ///
    /// Returns `false` (and replaces, keeping the existing slot and
    /// sequence) if the id is already present — a well-formed snapshot
    /// never hits this.
    pub fn restore_fragment(&mut self, shard: u32, seq: u64, fragment: Arc<Fragment>) -> bool {
        if self.by_id.contains_key(fragment.id()) {
            self.insert(fragment);
            return false;
        }
        let shard_idx = shard as usize % self.shards.len();
        self.next_seq = self.next_seq.max(seq + 1);
        self.by_id.insert(
            fragment.id().clone(),
            (
                shard_idx as u32,
                self.shards[shard_idx].fragments.len() as u32,
            ),
        );
        let shard = &mut self.shards[shard_idx];
        shard.fragments.push((seq, fragment));
        shard.index_slot(shard.fragments.len() - 1);
        true
    }

    /// Looks up a fragment by id.
    pub fn get(&self, id: &FragmentId) -> Option<&Arc<Fragment>> {
        self.by_id
            .get(id)
            .map(|&(shard, slot)| &self.shards[shard as usize].fragments[slot as usize].1)
    }

    /// All stored fragments as shared handles, in global insertion order.
    ///
    /// Materializes a sorted list (a k-way shard merge); meant for dumps
    /// and diagnostics, not the query hot path.
    pub fn fragments_shared(&self) -> Vec<&Arc<Fragment>> {
        let mut all: Vec<&(u64, Arc<Fragment>)> = self
            .shards
            .iter()
            .flat_map(|s| s.fragments.iter())
            .collect();
        all.sort_unstable_by_key(|(seq, _)| *seq);
        all.iter().map(|(_, f)| f).collect()
    }

    /// Fragments containing a task that consumes any of `labels`,
    /// deduplicated, in global insertion order — the same answer (and
    /// order) [`InMemoryFragmentStore::consuming`] gives for the same
    /// database.
    pub fn consuming(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        let mut hits: Vec<(u64, Arc<Fragment>)> = Vec::new();
        for shard in 0..self.shards.len() {
            self.shard_consuming(shard, labels, &mut hits);
        }
        finish_hits(hits)
    }
}

/// Sorts raw `(sequence, fragment)` hits into global insertion order and
/// deduplicates by sequence — the collection step shared by the
/// sequential fan-out and the parallel frontier workers.
pub fn finish_hits(mut hits: Vec<(u64, Arc<Fragment>)>) -> Vec<Arc<Fragment>> {
    hits.sort_unstable_by_key(|(seq, _)| *seq);
    hits.dedup_by_key(|(seq, _)| *seq);
    hits.into_iter().map(|(_, f)| f).collect()
}

impl ParallelFragmentSource for ShardedFragmentStore {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_consuming(&self, shard: usize, labels: &[Label], out: &mut Vec<(u64, Arc<Fragment>)>) {
        let shard = &self.shards[shard];
        for label in labels {
            if let Some(indices) = shard.by_consumed_label.get(label) {
                out.extend(indices.iter().map(|&i| shard.fragments[i as usize].clone()));
            }
        }
    }
}

impl FragmentSource for ShardedFragmentStore {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        self.consuming(labels)
    }
}

impl FromIterator<Fragment> for ShardedFragmentStore {
    fn from_iter<I: IntoIterator<Item = Fragment>>(iter: I) -> Self {
        let mut store = ShardedFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl FromIterator<Arc<Fragment>> for ShardedFragmentStore {
    fn from_iter<I: IntoIterator<Item = Arc<Fragment>>>(iter: I) -> Self {
        let mut store = ShardedFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl Extend<Fragment> for ShardedFragmentStore {
    fn extend<I: IntoIterator<Item = Fragment>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl Extend<Arc<Fragment>> for ShardedFragmentStore {
    fn extend<I: IntoIterator<Item = Arc<Fragment>>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;

    fn frag(id: &str, task: &str, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(
            id,
            task,
            Mode::Disjunctive,
            ins.iter().copied(),
            outs.iter().copied(),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = InMemoryFragmentStore::new();
        assert!(s.insert(frag("f1", "t1", &["a"], &["b"])));
        assert!(s.insert(frag("f2", "t2", &["b"], &["c"])));
        assert_eq!(s.len(), 2);
        assert!(s.get(&FragmentId::new("f1")).is_some());
        assert!(s.get(&FragmentId::new("zz")).is_none());
    }

    #[test]
    fn inserting_shared_arcs_does_not_reallocate() {
        let f = Arc::new(frag("f1", "t1", &["a"], &["b"]));
        let mut s = InMemoryFragmentStore::new();
        s.insert(Arc::clone(&f));
        let got = s.get(&FragmentId::new("f1")).unwrap();
        assert!(Arc::ptr_eq(got, &f), "stored handle shares the allocation");
        let hits = s.consuming(&[Label::new("a")]);
        assert!(Arc::ptr_eq(&hits[0], &f), "queries share the allocation");
    }

    #[test]
    fn consuming_matches_input_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f1", "t1", &["a"], &["b"]));
        s.insert(frag("f2", "t2", &["b"], &["c"]));
        s.insert(frag("f3", "t3", &["a", "x"], &["d"]));
        let hits = s.consuming(&[Label::new("a")]);
        let ids: Vec<&str> = hits.iter().map(|f| f.id().as_str()).collect();
        assert_eq!(ids, ["f1", "f3"]);
        assert!(s.consuming(&[Label::new("nope")]).is_empty());
    }

    #[test]
    fn consuming_dedupes_across_query_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a", "b"], &["c"]));
        let hits = s.consuming(&[Label::new("a"), Label::new("b")]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn consuming_scratch_is_clean_across_queries() {
        // Re-running the same query must keep returning every hit (a
        // stale bit in the scratch would hide fragments).
        let mut s = InMemoryFragmentStore::new();
        for i in 0..130 {
            s.insert(frag(&format!("f{i}"), &format!("t{i}"), &["a"], &["b"]));
        }
        for _ in 0..3 {
            assert_eq!(s.consuming(&[Label::new("a")]).len(), 130);
        }
    }

    #[test]
    fn internal_input_labels_are_indexed() {
        // Fragment with an internal label: t1 -> mid -> t2. A query on
        // `mid` must return the fragment even though mid is not a source.
        let f = Fragment::builder("f")
            .task("t1", Mode::Disjunctive)
            .inputs(["a"])
            .outputs(["mid"])
            .done()
            .task("t2", Mode::Disjunctive)
            .inputs(["mid"])
            .outputs(["b"])
            .done()
            .build()
            .unwrap();
        let mut s = InMemoryFragmentStore::new();
        s.insert(f);
        assert_eq!(s.consuming(&[Label::new("mid")]).len(), 1);
    }

    #[test]
    fn replacing_fragment_updates_index() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a"], &["b"]));
        assert!(!s.insert(frag("f", "t", &["x"], &["b"])), "replacement");
        assert_eq!(s.len(), 1);
        assert!(s.consuming(&[Label::new("a")]).is_empty());
        assert_eq!(s.consuming(&[Label::new("x")]).len(), 1);
    }

    #[test]
    fn replace_prunes_empty_label_buckets() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["only-a"], &["b"]));
        s.insert(frag("f", "t", &["only-x"], &["b"]));
        // The `only-a` bucket is gone entirely, not left as an empty Vec.
        assert_eq!(s.by_consumed_label.len(), 1);
        assert!(s.by_consumed_label.contains_key(&Label::new("only-x")));
    }

    #[test]
    fn sharded_store_matches_monolithic_answers() {
        // Same database, any shard count: identical query answers in
        // identical (global insertion) order.
        let frags: Vec<Fragment> = (0..40)
            .map(|i| {
                frag(
                    &format!("f{i}"),
                    &format!("t{i}"),
                    &[&format!("in{}", i % 7), "common"],
                    &[&format!("out{}", i % 5)],
                )
            })
            .collect();
        let mono: InMemoryFragmentStore = frags.iter().cloned().collect();
        for shards in [1usize, 2, 3, 8] {
            let mut sharded = ShardedFragmentStore::with_shards(shards);
            sharded.extend(frags.iter().cloned());
            assert_eq!(sharded.len(), 40);
            assert_eq!(sharded.shard_count(), shards);
            for query in [
                vec![Label::new("common")],
                vec![Label::new("in3")],
                vec![Label::new("in1"), Label::new("in2")],
                vec![Label::new("absent")],
            ] {
                let a: Vec<String> = mono
                    .consuming(&query)
                    .iter()
                    .map(|f| f.id().to_string())
                    .collect();
                let b: Vec<String> = sharded
                    .consuming(&query)
                    .iter()
                    .map(|f| f.id().to_string())
                    .collect();
                assert_eq!(a, b, "{shards} shards, query {query:?}");
            }
        }
    }

    #[test]
    fn sharded_store_replaces_by_id() {
        let mut s = ShardedFragmentStore::with_shards(4);
        assert!(s.insert(frag("f", "t", &["a"], &["b"])));
        assert!(!s.insert(frag("f", "t", &["x"], &["y"])), "replacement");
        assert_eq!(s.len(), 1);
        assert!(s.consuming(&[Label::new("a")]).is_empty());
        assert_eq!(s.consuming(&[Label::new("x")]).len(), 1);
        assert!(s.get(&FragmentId::new("f")).is_some());
    }

    #[test]
    fn sharded_store_lists_fragments_in_insertion_order() {
        let mut s = ShardedFragmentStore::with_shards(3);
        for i in 0..10 {
            s.insert(frag(
                &format!("f{i}"),
                &format!("t{i}"),
                &["a"],
                &[&format!("o{i}")],
            ));
        }
        let ids: Vec<&str> = s
            .fragments_shared()
            .iter()
            .map(|f| f.id().as_str())
            .collect();
        let want: Vec<String> = (0..10).map(|i| format!("f{i}")).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn shard_consuming_hits_carry_global_sequence() {
        let mut s = ShardedFragmentStore::with_shards(2);
        s.insert(frag("f0", "t0", &["a"], &["x"]));
        s.insert(frag("f1", "t1", &["a", "b"], &["y"]));
        let mut hits = Vec::new();
        for shard in 0..s.shard_count() {
            s.shard_consuming(shard, &[Label::new("a"), Label::new("b")], &mut hits);
        }
        // f1 matched twice (a and b); finish_hits dedups and orders.
        let ids: Vec<String> = finish_hits(hits)
            .iter()
            .map(|f| f.id().to_string())
            .collect();
        assert_eq!(ids, ["f0", "f1"]);
    }

    #[test]
    fn restore_rebuilds_the_exact_layout() {
        // Build a store with interleaved inserts and replaces, then
        // rebuild it from its own shard_entries — shards, slots,
        // sequences and query answers must all come back identical.
        let mut original = ShardedFragmentStore::with_shards(3);
        for i in 0..20 {
            original.insert(frag(
                &format!("f{i}"),
                &format!("t{i}"),
                &[&format!("in{}", i % 4)],
                &[&format!("out{}", i % 6)],
            ));
        }
        // Replaces: new consumed labels, new produced labels (the
        // fragment stays in its original shard regardless).
        for i in [3usize, 7, 11] {
            assert!(!original.insert(frag(
                &format!("f{i}"),
                &format!("t{i}"),
                &["swapped"],
                &["elsewhere"],
            )));
        }

        let mut entries: Vec<(u32, u64, Arc<Fragment>)> = Vec::new();
        for shard in 0..original.shard_count() {
            for (seq, f) in original.shard_entries(shard) {
                entries.push((shard as u32, seq, Arc::clone(f)));
            }
        }
        entries.sort_by_key(|&(_, seq, _)| seq);

        let mut restored = ShardedFragmentStore::with_shards(original.shard_count());
        for (shard, seq, f) in entries {
            assert!(restored.restore_fragment(shard, seq, f));
        }
        assert_eq!(restored.next_seq(), original.next_seq());
        assert_eq!(restored.len(), original.len());
        for shard in 0..original.shard_count() {
            let a: Vec<(u64, &str)> = original
                .shard_entries(shard)
                .map(|(s, f)| (s, f.id().as_str()))
                .collect();
            let b: Vec<(u64, &str)> = restored
                .shard_entries(shard)
                .map(|(s, f)| (s, f.id().as_str()))
                .collect();
            assert_eq!(a, b, "shard {shard} layout differs");
        }
        for q in ["in0", "in3", "swapped", "absent"] {
            let a: Vec<String> = original
                .consuming(&[Label::new(q)])
                .iter()
                .map(|f| f.id().to_string())
                .collect();
            let b: Vec<String> = restored
                .consuming(&[Label::new(q)])
                .iter()
                .map(|f| f.id().to_string())
                .collect();
            assert_eq!(a, b, "query {q} differs");
        }
        // Tail inserts continue the original numbering.
        restored.insert(frag("f-new", "t-new", &["x"], &["y"]));
        let new_seq = (0..restored.shard_count())
            .flat_map(|s| restored.shard_entries(s))
            .find(|(_, f)| f.id().as_str() == "f-new")
            .map(|(seq, _)| seq)
            .unwrap();
        assert_eq!(new_seq, original.next_seq());
    }

    #[test]
    fn restore_with_duplicate_id_degrades_to_replace() {
        let mut s = ShardedFragmentStore::with_shards(2);
        s.insert(frag("f", "t", &["a"], &["b"]));
        assert!(!s.restore_fragment(1, 99, Arc::new(frag("f", "t", &["x"], &["b"]))));
        assert_eq!(s.len(), 1);
        assert_eq!(s.consuming(&[Label::new("x")]).len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let s: InMemoryFragmentStore = vec![
            frag("f1", "t1", &["a"], &["b"]),
            frag("f2", "t2", &["b"], &["c"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        let mut s = s;
        s.extend([frag("f3", "t3", &["c"], &["d"])]);
        assert_eq!(s.len(), 3);
        s.extend([Arc::new(frag("f4", "t4", &["d"], &["e"]))]);
        assert_eq!(s.len(), 4);
    }
}
