//! In-memory fragment storage with a consumed-label index.
//!
//! This is the local analogue of a host's fragment database (the runtime's
//! Fragment Manager wraps one of these) and the reference implementation of
//! [`FragmentSource`] for tests and single-process use.
//!
//! Fragments are held behind [`Arc`] so that answering a frontier query
//! hands out shared references instead of deep-copying whole workflow
//! graphs — the incremental constructor, the runtime's Fragment Manager
//! and the simulated network all share one allocation per fragment.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::construct::incremental::FragmentSource;
use crate::fragment::{Fragment, FragmentId};
use crate::fx::FxHashMap;
use crate::ids::Label;

/// A fragment database indexed by the labels its tasks consume.
#[derive(Default)]
pub struct InMemoryFragmentStore {
    fragments: Vec<Arc<Fragment>>,
    by_id: FxHashMap<FragmentId, usize>,
    by_consumed_label: FxHashMap<Label, Vec<u32>>,
    /// Reusable dedup bitset for [`InMemoryFragmentStore::consuming`]
    /// (one bit per stored fragment, zeroed after each query). Behind a
    /// mutex so queries stay `&self` and the store stays `Sync`.
    seen_scratch: Mutex<Vec<u64>>,
}

impl Clone for InMemoryFragmentStore {
    fn clone(&self) -> Self {
        InMemoryFragmentStore {
            fragments: self.fragments.clone(),
            by_id: self.by_id.clone(),
            by_consumed_label: self.by_consumed_label.clone(),
            seen_scratch: Mutex::new(Vec::new()),
        }
    }
}

impl InMemoryFragmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        InMemoryFragmentStore::default()
    }

    /// Inserts a fragment, replacing any fragment with the same id.
    ///
    /// Accepts owned fragments or already-shared `Arc<Fragment>`s (no
    /// re-allocation in the latter case).
    ///
    /// Returns `true` if the fragment was new, `false` if it replaced an
    /// existing one.
    pub fn insert(&mut self, fragment: impl Into<Arc<Fragment>>) -> bool {
        let fragment = fragment.into();
        if let Some(&pos) = self.by_id.get(fragment.id()) {
            // Replace: rebuild the index entries for this slot, pruning
            // buckets the old fragment leaves empty.
            let old = std::mem::replace(&mut self.fragments[pos], fragment);
            for label in old.all_input_labels() {
                if let Some(v) = self.by_consumed_label.get_mut(&label) {
                    v.retain(|&i| i as usize != pos);
                    if v.is_empty() {
                        self.by_consumed_label.remove(&label);
                    }
                }
            }
            let new_labels = self.fragments[pos].all_input_labels();
            for label in new_labels {
                self.by_consumed_label
                    .entry(label)
                    .or_default()
                    .push(pos as u32);
            }
            return false;
        }
        let pos = self.fragments.len();
        self.by_id.insert(fragment.id().clone(), pos);
        for label in fragment.all_input_labels() {
            self.by_consumed_label
                .entry(label)
                .or_default()
                .push(pos as u32);
        }
        self.fragments.push(fragment);
        true
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True if the store holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Looks up a fragment by id.
    pub fn get(&self, id: &FragmentId) -> Option<&Arc<Fragment>> {
        self.by_id.get(id).map(|&i| &self.fragments[i])
    }

    /// All stored fragments in insertion order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.fragments.iter().map(Arc::as_ref)
    }

    /// All stored fragments as shared handles, in insertion order.
    pub fn fragments_shared(&self) -> impl Iterator<Item = &Arc<Fragment>> + '_ {
        self.fragments.iter()
    }

    /// Fragments containing a task that consumes any of `labels`,
    /// deduplicated, in insertion order. Hands out `Arc` clones — callers
    /// share the stored allocation.
    pub fn consuming(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        let mut seen = self.seen_scratch.lock().expect("store scratch lock");
        let words = self.fragments.len().div_ceil(64);
        if seen.len() < words {
            seen.resize(words, 0);
        }
        let mut hits: Vec<u32> = Vec::new();
        for label in labels {
            if let Some(indices) = self.by_consumed_label.get(label) {
                for &i in indices {
                    let (w, b) = (i as usize / 64, i % 64);
                    if seen[w] & (1 << b) == 0 {
                        seen[w] |= 1 << b;
                        hits.push(i);
                    }
                }
            }
        }
        // Zero exactly the bits we set, leaving the scratch clean for the
        // next query without a full memset.
        for &i in &hits {
            seen[i as usize / 64] &= !(1 << (i % 64));
        }
        drop(seen);
        hits.sort_unstable();
        hits.into_iter()
            .map(|i| Arc::clone(&self.fragments[i as usize]))
            .collect()
    }
}

impl FragmentSource for InMemoryFragmentStore {
    fn fragments_consuming(&mut self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        self.consuming(labels)
    }
}

impl FromIterator<Fragment> for InMemoryFragmentStore {
    fn from_iter<I: IntoIterator<Item = Fragment>>(iter: I) -> Self {
        let mut store = InMemoryFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl FromIterator<Arc<Fragment>> for InMemoryFragmentStore {
    fn from_iter<I: IntoIterator<Item = Arc<Fragment>>>(iter: I) -> Self {
        let mut store = InMemoryFragmentStore::new();
        for f in iter {
            store.insert(f);
        }
        store
    }
}

impl Extend<Fragment> for InMemoryFragmentStore {
    fn extend<I: IntoIterator<Item = Fragment>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl Extend<Arc<Fragment>> for InMemoryFragmentStore {
    fn extend<I: IntoIterator<Item = Arc<Fragment>>>(&mut self, iter: I) {
        for f in iter {
            self.insert(f);
        }
    }
}

impl fmt::Debug for InMemoryFragmentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InMemoryFragmentStore")
            .field("fragments", &self.fragments.len())
            .field("indexed_labels", &self.by_consumed_label.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;

    fn frag(id: &str, task: &str, ins: &[&str], outs: &[&str]) -> Fragment {
        Fragment::single_task(
            id,
            task,
            Mode::Disjunctive,
            ins.iter().copied(),
            outs.iter().copied(),
        )
        .unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut s = InMemoryFragmentStore::new();
        assert!(s.insert(frag("f1", "t1", &["a"], &["b"])));
        assert!(s.insert(frag("f2", "t2", &["b"], &["c"])));
        assert_eq!(s.len(), 2);
        assert!(s.get(&FragmentId::new("f1")).is_some());
        assert!(s.get(&FragmentId::new("zz")).is_none());
    }

    #[test]
    fn inserting_shared_arcs_does_not_reallocate() {
        let f = Arc::new(frag("f1", "t1", &["a"], &["b"]));
        let mut s = InMemoryFragmentStore::new();
        s.insert(Arc::clone(&f));
        let got = s.get(&FragmentId::new("f1")).unwrap();
        assert!(Arc::ptr_eq(got, &f), "stored handle shares the allocation");
        let hits = s.consuming(&[Label::new("a")]);
        assert!(Arc::ptr_eq(&hits[0], &f), "queries share the allocation");
    }

    #[test]
    fn consuming_matches_input_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f1", "t1", &["a"], &["b"]));
        s.insert(frag("f2", "t2", &["b"], &["c"]));
        s.insert(frag("f3", "t3", &["a", "x"], &["d"]));
        let hits = s.consuming(&[Label::new("a")]);
        let ids: Vec<&str> = hits.iter().map(|f| f.id().as_str()).collect();
        assert_eq!(ids, ["f1", "f3"]);
        assert!(s.consuming(&[Label::new("nope")]).is_empty());
    }

    #[test]
    fn consuming_dedupes_across_query_labels() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a", "b"], &["c"]));
        let hits = s.consuming(&[Label::new("a"), Label::new("b")]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn consuming_scratch_is_clean_across_queries() {
        // Re-running the same query must keep returning every hit (a
        // stale bit in the scratch would hide fragments).
        let mut s = InMemoryFragmentStore::new();
        for i in 0..130 {
            s.insert(frag(&format!("f{i}"), &format!("t{i}"), &["a"], &["b"]));
        }
        for _ in 0..3 {
            assert_eq!(s.consuming(&[Label::new("a")]).len(), 130);
        }
    }

    #[test]
    fn internal_input_labels_are_indexed() {
        // Fragment with an internal label: t1 -> mid -> t2. A query on
        // `mid` must return the fragment even though mid is not a source.
        let f = Fragment::builder("f")
            .task("t1", Mode::Disjunctive)
            .inputs(["a"])
            .outputs(["mid"])
            .done()
            .task("t2", Mode::Disjunctive)
            .inputs(["mid"])
            .outputs(["b"])
            .done()
            .build()
            .unwrap();
        let mut s = InMemoryFragmentStore::new();
        s.insert(f);
        assert_eq!(s.consuming(&[Label::new("mid")]).len(), 1);
    }

    #[test]
    fn replacing_fragment_updates_index() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["a"], &["b"]));
        assert!(!s.insert(frag("f", "t", &["x"], &["b"])), "replacement");
        assert_eq!(s.len(), 1);
        assert!(s.consuming(&[Label::new("a")]).is_empty());
        assert_eq!(s.consuming(&[Label::new("x")]).len(), 1);
    }

    #[test]
    fn replace_prunes_empty_label_buckets() {
        let mut s = InMemoryFragmentStore::new();
        s.insert(frag("f", "t", &["only-a"], &["b"]));
        s.insert(frag("f", "t", &["only-x"], &["b"]));
        // The `only-a` bucket is gone entirely, not left as an empty Vec.
        assert_eq!(s.by_consumed_label.len(), 1);
        assert!(s.by_consumed_label.contains_key(&Label::new("only-x")));
    }

    #[test]
    fn collects_from_iterator() {
        let s: InMemoryFragmentStore = vec![
            frag("f1", "t1", &["a"], &["b"]),
            frag("f2", "t2", &["b"], &["c"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 2);
        let mut s = s;
        s.extend([frag("f3", "t3", &["c"], &["d"])]);
        assert_eq!(s.len(), 3);
        s.extend([Arc::new(frag("f4", "t4", &["d"], &["e"]))]);
        assert_eq!(s.len(), 4);
    }
}
