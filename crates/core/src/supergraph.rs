//! The workflow supergraph (§3.1).
//!
//! "Our strategy is to combine all workflow fragments from K into one large
//! graph, henceforth called the workflow supergraph G. The supergraph
//! represents a unified view of all possible actions represented in the set
//! K, however it is not necessarily a valid workflow since it may have
//! cycles, outputs produced by multiple tasks, unavailable inputs, or
//! undesired outputs."
//!
//! [`Supergraph`] is therefore an *unrestricted* bipartite union of
//! fragments. It keeps per-node and per-edge provenance so that a
//! construction result can report exactly which fragments contributed to
//! the final workflow. Provenance is stored densely (per-node `Vec`s
//! indexed by [`NodeIdx`], interned [`FragmentId`]s) and the node-mapping
//! scratch buffer is reused across merges, so absorbing a fragment does
//! not allocate proportionally to the supergraph.

use std::collections::HashSet;
use std::fmt;

use crate::error::ModelError;
use crate::fragment::{Fragment, FragmentId};
use crate::fx::{FxHashMap, FxHashSet};
use crate::graph::{Graph, NodeIdx};
use crate::ids::Label;

/// Union of workflow fragments with provenance tracking.
#[derive(Clone, Default)]
pub struct Supergraph {
    graph: Graph,
    merged: FxHashSet<FragmentId>,
    /// `node_provenance[i]` = fragments that contributed node `i`.
    node_provenance: Vec<Vec<FragmentId>>,
    edge_provenance: FxHashMap<(NodeIdx, NodeIdx), Vec<FragmentId>>,
    /// Reused node-mapping buffer for [`Graph::merge_from_mapped`].
    merge_scratch: Vec<NodeIdx>,
}

impl Supergraph {
    /// Creates an empty supergraph.
    pub fn new() -> Self {
        Supergraph::default()
    }

    /// Builds a supergraph from a collection of fragments (borrowed,
    /// `Arc`-shared, or owned — anything that dereferences to
    /// [`Fragment`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if two fragments declare
    /// the same task with different modes.
    pub fn from_fragments<I>(fragments: I) -> Result<Self, ModelError>
    where
        I: IntoIterator,
        I::Item: AsRef<Fragment>,
    {
        let mut sg = Supergraph::new();
        for f in fragments {
            sg.try_merge_fragment(f.as_ref())?;
        }
        Ok(sg)
    }

    /// Merges a fragment into the supergraph, deduplicating nodes and edges
    /// by semantic identity. Re-merging a fragment with an already-seen id
    /// is a no-op (idempotent), which the incremental constructor relies on
    /// when the same knowhow arrives from several hosts.
    ///
    /// # Panics
    ///
    /// Panics on conflicting task modes; use
    /// [`Supergraph::try_merge_fragment`] to handle the conflict.
    pub fn merge_fragment(&mut self, fragment: &Fragment) {
        self.try_merge_fragment(fragment)
            .expect("conflicting task mode while merging fragment");
    }

    /// Merges a fragment, reporting mode conflicts.
    ///
    /// Returns `true` if the fragment was new (not previously merged).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if the fragment declares
    /// a task with a different mode than the supergraph already records.
    pub fn try_merge_fragment(&mut self, fragment: &Fragment) -> Result<bool, ModelError> {
        if self.merged.contains(fragment.id()) {
            return Ok(false);
        }
        // Pre-check mode conflicts so a failed merge leaves `self` intact.
        for t in fragment.tasks() {
            if let Some(idx) = self.graph.find_task(&t) {
                let have = self.graph.mode(idx);
                let want = fragment
                    .workflow()
                    .task_mode(&t)
                    .expect("fragment task exists");
                if have != want {
                    return Err(ModelError::ConflictingTaskMode {
                        task: t,
                        existing: have,
                        requested: want,
                    });
                }
            }
        }
        let mut map = std::mem::take(&mut self.merge_scratch);
        self.graph
            .merge_from_mapped(fragment.graph(), &mut map)
            .expect("mode conflicts pre-checked");
        // Record provenance straight off the merge mapping — no key
        // re-resolution, no per-node hashing.
        let fid = fragment.id().clone();
        self.node_provenance
            .resize_with(self.graph.node_count(), Vec::new);
        for &idx in &map {
            self.node_provenance[idx.index()].push(fid.clone());
        }
        for (f, t) in fragment.graph().edges() {
            let fi = map[f.index()];
            let ti = map[t.index()];
            self.edge_provenance
                .entry((fi, ti))
                .or_default()
                .push(fid.clone());
        }
        self.merge_scratch = map;
        self.merged.insert(fid);
        Ok(true)
    }

    /// The underlying (unrestricted) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of distinct fragments merged so far.
    pub fn fragment_count(&self) -> usize {
        self.merged.len()
    }

    /// True if a fragment with this id has been merged.
    pub fn contains_fragment(&self, id: &FragmentId) -> bool {
        self.merged.contains(id)
    }

    /// Fragments that contributed a given node.
    pub fn node_fragments(&self, idx: NodeIdx) -> &[FragmentId] {
        self.node_provenance
            .get(idx.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Fragments that contributed a given edge.
    pub fn edge_fragments(&self, from: NodeIdx, to: NodeIdx) -> &[FragmentId] {
        self.edge_provenance
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The set of fragments covering the given nodes and edges — used to
    /// report which pieces of community knowhow a constructed workflow drew
    /// on.
    pub fn covering_fragments(
        &self,
        nodes: impl IntoIterator<Item = NodeIdx>,
        edges: impl IntoIterator<Item = (NodeIdx, NodeIdx)>,
    ) -> Vec<FragmentId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for n in nodes {
            for f in self.node_fragments(n) {
                if seen.insert(f.clone()) {
                    out.push(f.clone());
                }
            }
        }
        for (a, b) in edges {
            for f in self.edge_fragments(a, b) {
                if seen.insert(f.clone()) {
                    out.push(f.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Labels currently present whose consuming tasks may be missing — i.e.
    /// every label node. Incremental construction queries the community for
    /// fragments consuming frontier labels.
    pub fn contains_label(&self, label: &Label) -> bool {
        self.graph.find_label(label).is_some()
    }
}

impl fmt::Debug for Supergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supergraph")
            .field("fragments", &self.fragment_count())
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Mode, TaskId};

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    #[test]
    fn merging_shares_nodes() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        assert_eq!(sg.fragment_count(), 2);
        // labels: a, b, c; tasks: t1, t2
        assert_eq!(sg.graph().node_count(), 5);
    }

    #[test]
    fn supergraph_tolerates_multi_producers_and_cycles() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "x"));
        sg.merge_fragment(&frag("f2", "t2", "b", "x")); // x produced twice
        sg.merge_fragment(&frag("f3", "t3", "x", "a")); // cycle a -> t1 -> x -> t3 -> a
        assert!(!sg.graph().is_acyclic());
        let x = sg.graph().find_label(&Label::new("x")).unwrap();
        assert_eq!(sg.graph().in_degree(x), 2);
    }

    #[test]
    fn remerging_same_fragment_is_idempotent() {
        let mut sg = Supergraph::new();
        let f = frag("f1", "t1", "a", "b");
        assert!(sg.try_merge_fragment(&f).unwrap());
        assert!(!sg.try_merge_fragment(&f).unwrap());
        assert_eq!(sg.fragment_count(), 1);
        assert_eq!(sg.graph().node_count(), 3);
    }

    #[test]
    fn provenance_tracks_contributors() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        let b = sg.graph().find_label(&Label::new("b")).unwrap();
        let owners = sg.node_fragments(b);
        assert_eq!(owners.len(), 2);
        let t1 = sg.graph().find_task(&TaskId::new("t1")).unwrap();
        assert_eq!(sg.node_fragments(t1), &[FragmentId::new("f1")]);
    }

    #[test]
    fn edge_provenance_tracks_contributors() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        let a = sg.graph().find_label(&Label::new("a")).unwrap();
        let t1 = sg.graph().find_task(&TaskId::new("t1")).unwrap();
        assert_eq!(sg.edge_fragments(a, t1), &[FragmentId::new("f1")]);
        assert!(sg.edge_fragments(t1, a).is_empty());
    }

    #[test]
    fn covering_fragments_dedupes_and_sorts() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        let nodes: Vec<NodeIdx> = sg.graph().node_indices().collect();
        let edges: Vec<(NodeIdx, NodeIdx)> = sg.graph().edges().collect();
        let cover = sg.covering_fragments(nodes, edges);
        assert_eq!(cover, vec![FragmentId::new("f1"), FragmentId::new("f2")]);
    }

    #[test]
    fn mode_conflict_fails_cleanly() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(
            &Fragment::single_task("f1", "t", Mode::Conjunctive, ["a"], ["b"]).unwrap(),
        );
        let before_nodes = sg.graph().node_count();
        let bad = Fragment::single_task("f2", "t", Mode::Disjunctive, ["c"], ["d"]).unwrap();
        assert!(sg.try_merge_fragment(&bad).is_err());
        // failed merge left the supergraph untouched
        assert_eq!(sg.graph().node_count(), before_nodes);
        assert!(!sg.contains_fragment(&FragmentId::new("f2")));
    }

    #[test]
    fn from_fragments_collects() {
        let frags = vec![frag("f1", "t1", "a", "b"), frag("f2", "t2", "b", "c")];
        let sg = Supergraph::from_fragments(&frags).unwrap();
        assert_eq!(sg.fragment_count(), 2);
        assert!(sg.contains_label(&Label::new("a")));
        assert!(!sg.contains_label(&Label::new("z")));
    }
}
