//! The workflow supergraph (§3.1).
//!
//! "Our strategy is to combine all workflow fragments from K into one large
//! graph, henceforth called the workflow supergraph G. The supergraph
//! represents a unified view of all possible actions represented in the set
//! K, however it is not necessarily a valid workflow since it may have
//! cycles, outputs produced by multiple tasks, unavailable inputs, or
//! undesired outputs."
//!
//! [`Supergraph`] is therefore an *unrestricted* bipartite union of
//! fragments. It keeps per-node and per-edge provenance so that a
//! construction result can report exactly which fragments contributed to
//! the final workflow. Provenance is stored densely — append-only logs of
//! contributed node indices and dense edge ids with per-fragment spans —
//! and the mapping scratch buffers are reused across merges, so absorbing
//! a fragment performs no allocation proportional to the supergraph and
//! no per-entry allocation at all. Whole query rounds merge through
//! [`Supergraph::merge_fragments_batch`], which pre-sizes all stores for
//! the batch.

use std::fmt;

use crate::error::ModelError;
use crate::fragment::{Fragment, FragmentId};
use crate::graph::{Graph, NodeIdx};
use crate::ids::Label;

/// Membership set over fragment ids, stored as a bitset indexed by the
/// id's interned symbol: `contains`/`insert` are a shift and a mask into
/// a table bounded by the community vocabulary (kilobytes per million
/// distinct names), instead of hash probes into a growing set — the
/// idempotence check runs for every candidate of every query round.
#[derive(Clone, Debug, Default)]
struct MergedSet {
    words: Vec<u64>,
}

impl MergedSet {
    #[inline]
    fn contains(&self, id: &FragmentId) -> bool {
        let i = id.sym().id() as usize;
        match self.words.get(i / 64) {
            Some(w) => w & (1 << (i % 64)) != 0,
            None => false,
        }
    }

    #[inline]
    fn insert(&mut self, id: &FragmentId) {
        let i = id.sym().id() as usize;
        if i / 64 >= self.words.len() {
            self.words.resize((i / 64 + 1).next_power_of_two(), 0);
        }
        self.words[i / 64] |= 1 << (i % 64);
    }
}

/// Union of workflow fragments with provenance tracking.
///
/// Provenance is stored *densely*: one append-only log of contributed
/// node indices and one of contributed edge ids, with per-fragment spans
/// into both. Absorbing a fragment appends plain integers to two flat
/// `Vec`s — no per-node/per-edge lists, no small allocations on the merge
/// hot path. Coverage queries (which fragments touched these blue
/// nodes/edges?) run once per construction and scan the logs linearly.
#[derive(Clone, Default)]
pub struct Supergraph {
    graph: Graph,
    merged: MergedSet,
    /// Merged fragment ids, in merge order (the provenance ordinal space).
    fragments: Vec<FragmentId>,
    /// Per-fragment `(node_log start, edge_log start)`; a fragment's span
    /// ends where the next fragment's begins (or at the log's end).
    spans: Vec<(u32, u32)>,
    /// Concatenated per-fragment contributed node indices.
    node_log: Vec<NodeIdx>,
    /// Concatenated per-fragment contributed dense edge ids.
    edge_log: Vec<u32>,
    /// Reused node-mapping buffer for [`Graph::merge_from_recorded`].
    merge_scratch: Vec<NodeIdx>,
    /// Reused edge-id buffer for [`Graph::merge_from_recorded`].
    edge_scratch: Vec<u32>,
}

impl Supergraph {
    /// Creates an empty supergraph.
    pub fn new() -> Self {
        Supergraph::default()
    }

    /// Builds a supergraph from a collection of fragments (borrowed,
    /// `Arc`-shared, or owned — anything that dereferences to
    /// [`Fragment`]).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if two fragments declare
    /// the same task with different modes.
    pub fn from_fragments<I>(fragments: I) -> Result<Self, ModelError>
    where
        I: IntoIterator,
        I::Item: AsRef<Fragment>,
    {
        let mut sg = Supergraph::new();
        for f in fragments {
            sg.try_merge_fragment(f.as_ref())?;
        }
        Ok(sg)
    }

    /// Merges a fragment into the supergraph, deduplicating nodes and edges
    /// by semantic identity. Re-merging a fragment with an already-seen id
    /// is a no-op (idempotent), which the incremental constructor relies on
    /// when the same knowhow arrives from several hosts.
    ///
    /// # Panics
    ///
    /// Panics on conflicting task modes; use
    /// [`Supergraph::try_merge_fragment`] to handle the conflict.
    pub fn merge_fragment(&mut self, fragment: &Fragment) {
        self.try_merge_fragment(fragment)
            .expect("conflicting task mode while merging fragment");
    }

    /// Merges a fragment, reporting mode conflicts.
    ///
    /// Returns `true` if the fragment was new (not previously merged).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ConflictingTaskMode`] if the fragment declares
    /// a task with a different mode than the supergraph already records.
    pub fn try_merge_fragment(&mut self, fragment: &Fragment) -> Result<bool, ModelError> {
        if self.merged.contains(fragment.id()) {
            return Ok(false);
        }
        // Pre-check mode conflicts so a failed merge leaves `self` intact.
        // Walks the fragment's nodes directly: mode and kind are direct
        // reads there, so the only hash lookup per task is ours.
        let fg = fragment.graph();
        for idx in fg.node_indices() {
            if fg.kind(idx) != crate::ids::NodeKind::Task {
                continue;
            }
            if let Some(existing) = self
                .graph
                .find_sym(crate::ids::NodeKind::Task, fg.key(idx).sym())
            {
                let have = self.graph.mode(existing);
                let want = fg.mode(idx);
                if have != want {
                    return Err(ModelError::ConflictingTaskMode {
                        task: fg.key(idx).as_task().expect("task kind"),
                        existing: have,
                        requested: want,
                    });
                }
            }
        }
        let mut map = std::mem::take(&mut self.merge_scratch);
        let mut edge_ids = std::mem::take(&mut self.edge_scratch);
        self.graph
            .merge_from_recorded(fragment.graph(), &mut map, Some(&mut edge_ids))
            .expect("mode conflicts pre-checked");
        // Record provenance straight off the merge mapping — no key
        // re-resolution, no per-node hashing, no per-entry allocation.
        let fid = fragment.id().clone();
        self.spans
            .push((self.node_log.len() as u32, self.edge_log.len() as u32));
        self.node_log.extend_from_slice(&map);
        self.edge_log.extend_from_slice(&edge_ids);
        self.fragments.push(fid.clone());
        self.merge_scratch = map;
        self.edge_scratch = edge_ids;
        self.merged.insert(&fid);
        Ok(true)
    }

    /// Merges a whole batch of fragments (one query round's candidates),
    /// pre-sizing the graph and provenance stores for the batch before
    /// merging, and skipping fragments whose task modes conflict with
    /// already-merged knowhow (first definition wins, exactly as the
    /// incremental constructors treat conflicting community answers).
    ///
    /// Returns the number of fragments that were new. Equivalent to
    /// calling [`Supergraph::try_merge_fragment`] on each fragment in
    /// order and ignoring errors — batching changes the cost, not the
    /// result, so sequential and parallel constructions that feed the same
    /// ordered batch produce identical supergraphs.
    pub fn merge_fragments_batch<F: AsRef<Fragment>>(&mut self, batch: &[F]) -> usize {
        let (mut add_nodes, mut add_edges) = (0usize, 0usize);
        for f in batch {
            let f = f.as_ref();
            if !self.merged.contains(f.id()) {
                add_nodes += f.graph().node_count();
                add_edges += f.graph().edge_count();
            }
        }
        self.reserve(batch.len(), add_nodes, add_edges);
        let mut new_fragments = 0;
        for f in batch {
            if let Ok(true) = self.try_merge_fragment(f.as_ref()) {
                new_fragments += 1;
            }
        }
        new_fragments
    }

    /// Pre-sizes the supergraph for roughly `fragments` further merges
    /// totalling `nodes` nodes and `edges` edges (upper bounds are fine:
    /// shared nodes/edges simply leave slack). Incremental constructions
    /// over large universes call this once with universe hints so the node
    /// index and provenance stores do not pay for repeated rehash/regrow.
    pub fn reserve(&mut self, fragments: usize, nodes: usize, edges: usize) {
        self.graph.reserve(nodes, edges);

        self.fragments.reserve(fragments);
        self.spans.reserve(fragments);
        self.node_log.reserve(nodes);
        self.edge_log.reserve(edges);
    }

    /// The underlying (unrestricted) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of distinct fragments merged so far.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// True if a fragment with this id has been merged.
    pub fn contains_fragment(&self, id: &FragmentId) -> bool {
        self.merged.contains(id)
    }

    /// The span of fragment ordinal `i` in the provenance logs.
    fn span(&self, i: usize) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let (n0, e0) = self.spans[i];
        let (n1, e1) = self
            .spans
            .get(i + 1)
            .copied()
            .unwrap_or((self.node_log.len() as u32, self.edge_log.len() as u32));
        (n0 as usize..n1 as usize, e0 as usize..e1 as usize)
    }

    /// Fragments that contributed a given node, in merge order.
    ///
    /// Answered by scanning the provenance log — a per-construction
    /// diagnostic, not a hot-path query.
    pub fn node_fragments(&self, idx: NodeIdx) -> Vec<FragmentId> {
        (0..self.fragments.len())
            .filter(|&i| self.node_log[self.span(i).0].contains(&idx))
            .map(|i| self.fragments[i].clone())
            .collect()
    }

    /// Fragments that contributed a given edge, in merge order.
    ///
    /// Answered by scanning the provenance log — a per-construction
    /// diagnostic, not a hot-path query.
    pub fn edge_fragments(&self, from: NodeIdx, to: NodeIdx) -> Vec<FragmentId> {
        let Some(eid) = self.graph.edge_id(from, to) else {
            return Vec::new();
        };
        (0..self.fragments.len())
            .filter(|&i| self.edge_log[self.span(i).1].contains(&eid))
            .map(|i| self.fragments[i].clone())
            .collect()
    }

    /// The set of fragments covering the given nodes and edges — used to
    /// report which pieces of community knowhow a constructed workflow drew
    /// on. One linear scan of the provenance logs against membership
    /// bitmaps; returns ids sorted by name.
    pub fn covering_fragments(
        &self,
        nodes: impl IntoIterator<Item = NodeIdx>,
        edges: impl IntoIterator<Item = (NodeIdx, NodeIdx)>,
    ) -> Vec<FragmentId> {
        let mut node_hit = vec![false; self.graph.node_count()];
        for n in nodes {
            node_hit[n.index()] = true;
        }
        let mut edge_hit = vec![false; self.graph.edge_count()];
        for (a, b) in edges {
            if let Some(eid) = self.graph.edge_id(a, b) {
                edge_hit[eid as usize] = true;
            }
        }
        let mut out: Vec<FragmentId> = (0..self.fragments.len())
            .filter(|&i| {
                let (nspan, espan) = self.span(i);
                self.node_log[nspan].iter().any(|n| node_hit[n.index()])
                    || self.edge_log[espan].iter().any(|&e| edge_hit[e as usize])
            })
            .map(|i| self.fragments[i].clone())
            .collect();
        out.sort();
        out
    }

    /// Labels currently present whose consuming tasks may be missing — i.e.
    /// every label node. Incremental construction queries the community for
    /// fragments consuming frontier labels.
    pub fn contains_label(&self, label: &Label) -> bool {
        self.graph.find_label(label).is_some()
    }
}

impl fmt::Debug for Supergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supergraph")
            .field("fragments", &self.fragment_count())
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Mode, TaskId};

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    #[test]
    fn merging_shares_nodes() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        assert_eq!(sg.fragment_count(), 2);
        // labels: a, b, c; tasks: t1, t2
        assert_eq!(sg.graph().node_count(), 5);
    }

    #[test]
    fn supergraph_tolerates_multi_producers_and_cycles() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "x"));
        sg.merge_fragment(&frag("f2", "t2", "b", "x")); // x produced twice
        sg.merge_fragment(&frag("f3", "t3", "x", "a")); // cycle a -> t1 -> x -> t3 -> a
        assert!(!sg.graph().is_acyclic());
        let x = sg.graph().find_label(&Label::new("x")).unwrap();
        assert_eq!(sg.graph().in_degree(x), 2);
    }

    #[test]
    fn remerging_same_fragment_is_idempotent() {
        let mut sg = Supergraph::new();
        let f = frag("f1", "t1", "a", "b");
        assert!(sg.try_merge_fragment(&f).unwrap());
        assert!(!sg.try_merge_fragment(&f).unwrap());
        assert_eq!(sg.fragment_count(), 1);
        assert_eq!(sg.graph().node_count(), 3);
    }

    #[test]
    fn provenance_tracks_contributors() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        let b = sg.graph().find_label(&Label::new("b")).unwrap();
        let owners = sg.node_fragments(b);
        assert_eq!(owners.len(), 2);
        let t1 = sg.graph().find_task(&TaskId::new("t1")).unwrap();
        assert_eq!(sg.node_fragments(t1), &[FragmentId::new("f1")]);
    }

    #[test]
    fn edge_provenance_tracks_contributors() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        let a = sg.graph().find_label(&Label::new("a")).unwrap();
        let t1 = sg.graph().find_task(&TaskId::new("t1")).unwrap();
        assert_eq!(sg.edge_fragments(a, t1), &[FragmentId::new("f1")]);
        assert!(sg.edge_fragments(t1, a).is_empty());
    }

    #[test]
    fn covering_fragments_dedupes_and_sorts() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(&frag("f2", "t2", "b", "c"));
        sg.merge_fragment(&frag("f1", "t1", "a", "b"));
        let nodes: Vec<NodeIdx> = sg.graph().node_indices().collect();
        let edges: Vec<(NodeIdx, NodeIdx)> = sg.graph().edges().collect();
        let cover = sg.covering_fragments(nodes, edges);
        assert_eq!(cover, vec![FragmentId::new("f1"), FragmentId::new("f2")]);
    }

    #[test]
    fn mode_conflict_fails_cleanly() {
        let mut sg = Supergraph::new();
        sg.merge_fragment(
            &Fragment::single_task("f1", "t", Mode::Conjunctive, ["a"], ["b"]).unwrap(),
        );
        let before_nodes = sg.graph().node_count();
        let bad = Fragment::single_task("f2", "t", Mode::Disjunctive, ["c"], ["d"]).unwrap();
        assert!(sg.try_merge_fragment(&bad).is_err());
        // failed merge left the supergraph untouched
        assert_eq!(sg.graph().node_count(), before_nodes);
        assert!(!sg.contains_fragment(&FragmentId::new("f2")));
    }

    #[test]
    fn batch_merge_matches_sequential_merges() {
        let frags = vec![
            frag("f1", "t1", "a", "b"),
            frag("f2", "t2", "b", "c"),
            frag("f1", "t1", "a", "b"), // duplicate id: merged once
        ];
        let mut batched = Supergraph::new();
        let new = batched.merge_fragments_batch(&frags);
        assert_eq!(new, 2);

        let mut sequential = Supergraph::new();
        for f in &frags {
            let _ = sequential.try_merge_fragment(f);
        }
        assert_eq!(
            batched.graph().node_count(),
            sequential.graph().node_count()
        );
        assert_eq!(
            batched.graph().edge_count(),
            sequential.graph().edge_count()
        );
        for idx in batched.graph().node_indices() {
            assert_eq!(batched.node_fragments(idx), sequential.node_fragments(idx));
        }
        for (f, t) in batched.graph().edges() {
            assert_eq!(
                batched.edge_fragments(f, t),
                sequential.edge_fragments(f, t)
            );
        }
    }

    #[test]
    fn batch_merge_skips_mode_conflicts() {
        let good = Fragment::single_task("g", "t", Mode::Conjunctive, ["a"], ["b"]).unwrap();
        let bad = Fragment::single_task("c", "t", Mode::Disjunctive, ["x"], ["y"]).unwrap();
        let mut sg = Supergraph::new();
        let new = sg.merge_fragments_batch(&[good, bad]);
        assert_eq!(new, 1, "conflicting fragment is skipped, first wins");
        assert!(sg.contains_fragment(&FragmentId::new("g")));
        assert!(!sg.contains_fragment(&FragmentId::new("c")));
    }

    #[test]
    fn from_fragments_collects() {
        let frags = vec![frag("f1", "t1", "a", "b"), frag("f2", "t2", "b", "c")];
        let sg = Supergraph::from_fragments(&frags).unwrap();
        assert_eq!(sg.fragment_count(), 2);
        assert!(sg.contains_label(&Label::new("a")));
        assert!(!sg.contains_label(&Label::new("z")));
    }
}
