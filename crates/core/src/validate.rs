//! Workflow validity checking.
//!
//! §2.2 of the paper: "A workflow has the additional constraints that
//! (1) all sources (nodes without any incoming edges) and all sinks (nodes
//! without any outgoing edges) are labels, (2) a label can have at most one
//! incoming edge, and (3) there are no duplicate nodes in the graph" — on
//! top of being a bipartite *directed acyclic* graph.
//!
//! Constraint (3) and bipartiteness are enforced structurally by
//! [`crate::graph::Graph`]; this module checks the rest.

use std::error::Error;
use std::fmt;

use crate::graph::Graph;
use crate::ids::{Label, NodeKind, TaskId};

/// A violation of the workflow validity constraints of §2.2.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidityError {
    /// The graph contains a cycle; workflows are DAGs.
    Cyclic,
    /// A task node is a source (constraint 1): it has no inputs.
    TaskIsSource(TaskId),
    /// A task node is a sink (constraint 1): it has no outputs.
    TaskIsSink(TaskId),
    /// A label has more than one incoming edge (constraint 2): two tasks
    /// produce the same label within one workflow.
    LabelMultipleProducers {
        /// The over-produced label.
        label: Label,
        /// How many producers it has.
        producers: usize,
    },
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::Cyclic => f.write_str("workflow graph contains a cycle"),
            ValidityError::TaskIsSource(t) => {
                write!(f, "task `{t}` has no inputs: all sources must be labels")
            }
            ValidityError::TaskIsSink(t) => {
                write!(f, "task `{t}` has no outputs: all sinks must be labels")
            }
            ValidityError::LabelMultipleProducers { label, producers } => write!(
                f,
                "label `{label}` has {producers} producers: a label can have at most one incoming edge"
            ),
        }
    }
}

impl Error for ValidityError {}

/// Checks every workflow validity constraint, returning the first violation
/// in a deterministic order (cycle check, then per-node checks in insertion
/// order).
///
/// # Errors
///
/// Returns the first [`ValidityError`] found, if any.
pub fn validate(graph: &Graph) -> Result<(), ValidityError> {
    validate_with(graph, &mut crate::graph::TraversalScratch::default())
}

/// [`validate`] with caller-owned traversal scratch.
///
/// Identical checks in the identical order; the scratch only removes the
/// per-call allocations of the acyclicity pass, so callers validating
/// many small graphs (a wire decoder re-validating every fragment it
/// rebuilds) amortize them away.
///
/// # Errors
///
/// Returns the first [`ValidityError`] found, if any.
pub fn validate_with(
    graph: &Graph,
    scratch: &mut crate::graph::TraversalScratch,
) -> Result<(), ValidityError> {
    if !graph.is_acyclic_with(scratch) {
        return Err(ValidityError::Cyclic);
    }
    for idx in graph.node_indices() {
        match graph.kind(idx) {
            NodeKind::Task => {
                let task = graph.key(idx).as_task().expect("task kind");
                if graph.in_degree(idx) == 0 {
                    return Err(ValidityError::TaskIsSource(task));
                }
                if graph.out_degree(idx) == 0 {
                    return Err(ValidityError::TaskIsSink(task));
                }
            }
            NodeKind::Label => {
                let producers = graph.in_degree(idx);
                if producers > 1 {
                    return Err(ValidityError::LabelMultipleProducers {
                        label: graph.key(idx).as_label().expect("label kind"),
                        producers,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Collects *all* violations instead of stopping at the first one.
///
/// Useful for diagnostics: the supergraph "is not necessarily a valid
/// workflow since it may have cycles, outputs produced by multiple tasks,
/// unavailable inputs, or undesired outputs" (§3.1), and it is often helpful
/// to report every reason at once.
pub fn violations(graph: &Graph) -> Vec<ValidityError> {
    let mut out = Vec::new();
    if !graph.is_acyclic() {
        out.push(ValidityError::Cyclic);
    }
    for idx in graph.node_indices() {
        match graph.kind(idx) {
            NodeKind::Task => {
                let task = graph.key(idx).as_task().expect("task kind");
                if graph.in_degree(idx) == 0 {
                    out.push(ValidityError::TaskIsSource(task.clone()));
                }
                if graph.out_degree(idx) == 0 {
                    out.push(ValidityError::TaskIsSink(task));
                }
            }
            NodeKind::Label => {
                let producers = graph.in_degree(idx);
                if producers > 1 {
                    out.push(ValidityError::LabelMultipleProducers {
                        label: graph.key(idx).as_label().expect("label kind"),
                        producers,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mode;

    fn chain() -> Graph {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t = g.add_task("t", Mode::Conjunctive);
        let b = g.add_label("b");
        g.add_edge(a, t).unwrap();
        g.add_edge(t, b).unwrap();
        g
    }

    #[test]
    fn valid_chain_passes() {
        assert_eq!(validate(&chain()), Ok(()));
        assert!(violations(&chain()).is_empty());
    }

    #[test]
    fn single_label_is_a_valid_workflow() {
        // A lone label is both source and sink; both are labels, so all
        // constraints hold. This is the degenerate "goal is already a
        // trigger" workflow.
        let mut g = Graph::new();
        g.add_label("x");
        assert_eq!(validate(&g), Ok(()));
    }

    #[test]
    fn empty_graph_is_valid() {
        assert_eq!(validate(&Graph::new()), Ok(()));
    }

    #[test]
    fn task_source_is_invalid() {
        let mut g = Graph::new();
        let t = g.add_task("t", Mode::Conjunctive);
        let b = g.add_label("b");
        g.add_edge(t, b).unwrap();
        assert_eq!(
            validate(&g),
            Err(ValidityError::TaskIsSource(TaskId::new("t")))
        );
    }

    #[test]
    fn task_sink_is_invalid() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t = g.add_task("t", Mode::Conjunctive);
        g.add_edge(a, t).unwrap();
        assert_eq!(
            validate(&g),
            Err(ValidityError::TaskIsSink(TaskId::new("t")))
        );
    }

    #[test]
    fn multi_producer_label_is_invalid() {
        // Figure 1's knowledge graph "is not a valid workflow because some
        // labels have multiple incoming edges" — reproduce that in
        // miniature.
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t1 = g.add_task("t1", Mode::Conjunctive);
        let t2 = g.add_task("t2", Mode::Conjunctive);
        let b = g.add_label("b");
        g.add_edge(a, t1).unwrap();
        g.add_edge(a, t2).unwrap();
        g.add_edge(t1, b).unwrap();
        g.add_edge(t2, b).unwrap();
        assert_eq!(
            validate(&g),
            Err(ValidityError::LabelMultipleProducers {
                label: Label::new("b"),
                producers: 2
            })
        );
    }

    #[test]
    fn cycle_is_reported_first() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t = g.add_task("t", Mode::Conjunctive);
        g.add_edge(a, t).unwrap();
        g.add_edge(t, a).unwrap(); // cycle AND label `a` would have a producer
        assert_eq!(validate(&g), Err(ValidityError::Cyclic));
    }

    #[test]
    fn violations_collects_everything() {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t1 = g.add_task("t1", Mode::Conjunctive); // will be a source AND b gets 2 producers
        let t2 = g.add_task("t2", Mode::Conjunctive);
        let b = g.add_label("b");
        g.add_edge(a, t2).unwrap();
        g.add_edge(t1, b).unwrap();
        g.add_edge(t2, b).unwrap();
        let vs = violations(&g);
        assert_eq!(vs.len(), 2);
        assert!(vs.contains(&ValidityError::TaskIsSource(TaskId::new("t1"))));
        assert!(vs
            .iter()
            .any(|v| matches!(v, ValidityError::LabelMultipleProducers { .. })));
    }
}
