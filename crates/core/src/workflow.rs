//! The validated [`Workflow`] type.

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::{Graph, NodeIdx};
use crate::ids::{Label, Mode, NodeKind, TaskId};
use crate::validate::ValidityError;

/// A valid workflow: "a collection of interlinked abstract tasks" (§2.2).
///
/// A `Workflow` wraps a bipartite label/task graph that satisfies the
/// paper's validity constraints:
///
/// 1. all sources and sinks are labels,
/// 2. every label has at most one incoming edge (one producer),
/// 3. there are no duplicate nodes,
///
/// and the graph is acyclic. The **inset** is the set of source labels
/// (triggering conditions the workflow consumes) and the **outset** is the
/// set of sink labels (results it delivers).
///
/// `Workflow` values are immutable once built; mutating operations (pruning)
/// consume and return them, so a value of this type is always valid.
#[derive(Clone)]
pub struct Workflow {
    graph: Graph,
    inset: BTreeSet<Label>,
    outset: BTreeSet<Label>,
}

impl Workflow {
    /// Validates `graph` and wraps it as a workflow.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidityError`] if the graph violates the
    /// workflow constraints.
    pub fn from_graph(graph: Graph) -> Result<Self, ValidityError> {
        Self::from_graph_with(graph, &mut crate::graph::TraversalScratch::default())
    }

    /// [`Workflow::from_graph`] with caller-owned traversal scratch for
    /// the validity check — same validation, same results, no per-call
    /// traversal allocations. The wire decoder re-validates every
    /// fragment it rebuilds through this entry point.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidityError`] if the graph violates the
    /// workflow constraints.
    pub fn from_graph_with(
        graph: Graph,
        scratch: &mut crate::graph::TraversalScratch,
    ) -> Result<Self, ValidityError> {
        crate::validate::validate_with(&graph, scratch)?;
        let inset = graph
            .sources()
            .filter_map(|i| graph.key(i).as_label())
            .collect();
        let outset = graph
            .sinks()
            .filter_map(|i| graph.key(i).as_label())
            .collect();
        Ok(Workflow {
            graph,
            inset,
            outset,
        })
    }

    /// The empty workflow (no nodes). Composing with it is the identity.
    pub fn empty() -> Self {
        Workflow {
            graph: Graph::new(),
            inset: BTreeSet::new(),
            outset: BTreeSet::new(),
        }
    }

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the workflow, returning the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// The inset `W.in`: source labels, i.e. the triggering conditions the
    /// workflow requires from the environment.
    pub fn inset(&self) -> &BTreeSet<Label> {
        &self.inset
    }

    /// The outset `W.out`: sink labels, i.e. the results the workflow
    /// delivers.
    pub fn outset(&self) -> &BTreeSet<Label> {
        &self.outset
    }

    /// All task identifiers, in insertion order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.graph.tasks()
    }

    /// All label identifiers, in insertion order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.graph.labels()
    }

    /// Number of task nodes.
    pub fn task_count(&self) -> usize {
        self.graph.task_count()
    }

    /// Number of label nodes.
    pub fn label_count(&self) -> usize {
        self.graph.label_count()
    }

    /// True if the workflow has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// True if the workflow contains this label.
    pub fn contains_label(&self, label: &Label) -> bool {
        self.graph.find_label(label).is_some()
    }

    /// True if the workflow contains this task.
    pub fn contains_task(&self, task: &TaskId) -> bool {
        self.graph.find_task(task).is_some()
    }

    /// The mode of a task, if present.
    pub fn task_mode(&self, task: &TaskId) -> Option<Mode> {
        self.graph.find_task(task).map(|i| self.graph.mode(i))
    }

    /// The input labels of a task, in insertion order.
    pub fn task_inputs(&self, task: &TaskId) -> Vec<Label> {
        self.adjacent_labels(task, Direction::Parents)
    }

    /// The output labels of a task, in insertion order.
    pub fn task_outputs(&self, task: &TaskId) -> Vec<Label> {
        self.adjacent_labels(task, Direction::Children)
    }

    /// The task that produces a label, if any (at most one in a valid
    /// workflow).
    pub fn producer(&self, label: &Label) -> Option<TaskId> {
        let idx = self.graph.find_label(label)?;
        self.graph
            .parents(idx)
            .first()
            .and_then(|&p| self.graph.key(p).as_task())
    }

    /// The tasks that consume a label, in insertion order.
    pub fn consumers(&self, label: &Label) -> Vec<TaskId> {
        match self.graph.find_label(label) {
            Some(idx) => self
                .graph
                .children(idx)
                .iter()
                .filter_map(|&c| self.graph.key(c).as_task())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Tasks in a valid execution order: every task appears after all tasks
    /// producing its inputs.
    pub fn execution_order(&self) -> Vec<TaskId> {
        let order = self
            .graph
            .topological_order()
            .expect("workflow invariant: acyclic");
        order
            .into_iter()
            .filter_map(|i| self.graph.key(i).as_task())
            .collect()
    }

    /// The *level* of each task: length of the longest task-path ending at
    /// that task. Tasks at the same level can execute in parallel. Used by
    /// the auction manager to compute scheduling metadata.
    pub fn task_levels(&self) -> Vec<(TaskId, usize)> {
        let order = self
            .graph
            .topological_order()
            .expect("workflow invariant: acyclic");
        let n = self.graph.node_count();
        let mut level = vec![0usize; n];
        // topological_order returns children after parents; walk in that
        // order so parents are final when visited.
        let mut sorted = order;
        // order from Graph::topological_order is a valid topo order already.
        for &idx in &sorted {
            let base = level[idx.index()];
            for &c in self.graph.children(idx) {
                let bump = if self.graph.kind(c) == NodeKind::Task {
                    1
                } else {
                    0
                };
                if level[c.index()] < base + bump {
                    level[c.index()] = base + bump;
                }
            }
        }
        sorted.retain(|i| self.graph.kind(*i) == NodeKind::Task);
        sorted.sort_by_key(|i| (level[i.index()], i.index()));
        sorted
            .into_iter()
            .map(|i| {
                (
                    self.graph.key(i).as_task().expect("task kind"),
                    level[i.index()].saturating_sub(1),
                )
            })
            .collect()
    }

    fn adjacent_labels(&self, task: &TaskId, dir: Direction) -> Vec<Label> {
        match self.graph.find_task(task) {
            Some(idx) => {
                let adj: &[NodeIdx] = match dir {
                    Direction::Parents => self.graph.parents(idx),
                    Direction::Children => self.graph.children(idx),
                };
                adj.iter()
                    .filter_map(|&a| self.graph.key(a).as_label())
                    .collect()
            }
            None => Vec::new(),
        }
    }
}

enum Direction {
    Parents,
    Children,
}

impl fmt::Debug for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workflow")
            .field("tasks", &self.task_count())
            .field("labels", &self.label_count())
            .field("inset", &self.inset)
            .field("outset", &self.outset)
            .finish()
    }
}

impl fmt::Display for Workflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ins: Vec<&str> = self.inset.iter().map(|l| l.as_str()).collect();
        let outs: Vec<&str> = self.outset.iter().map(|l| l.as_str()).collect();
        write!(
            f,
            "workflow({} tasks, {} labels; in={{{}}}, out={{{}}})",
            self.task_count(),
            self.label_count(),
            ins.join(", "),
            outs.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// a -> t1 -> b -> t2 -> c, with t1 also producing d (extra sink).
    fn sample() -> Workflow {
        let mut g = Graph::new();
        let a = g.add_label("a");
        let t1 = g.add_task("t1", Mode::Conjunctive);
        let b = g.add_label("b");
        let t2 = g.add_task("t2", Mode::Disjunctive);
        let c = g.add_label("c");
        let d = g.add_label("d");
        g.add_edge(a, t1).unwrap();
        g.add_edge(t1, b).unwrap();
        g.add_edge(t1, d).unwrap();
        g.add_edge(b, t2).unwrap();
        g.add_edge(t2, c).unwrap();
        Workflow::from_graph(g).unwrap()
    }

    #[test]
    fn inset_and_outset_are_computed() {
        let w = sample();
        assert_eq!(
            w.inset().iter().map(|l| l.as_str()).collect::<Vec<_>>(),
            ["a"]
        );
        assert_eq!(
            w.outset().iter().map(|l| l.as_str()).collect::<Vec<_>>(),
            ["c", "d"]
        );
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let mut g = Graph::new();
        let t = g.add_task("t", Mode::Conjunctive);
        let b = g.add_label("b");
        g.add_edge(t, b).unwrap();
        assert!(Workflow::from_graph(g).is_err());
    }

    #[test]
    fn producer_and_consumers() {
        let w = sample();
        assert_eq!(w.producer(&Label::new("b")), Some(TaskId::new("t1")));
        assert_eq!(w.producer(&Label::new("a")), None);
        assert_eq!(w.consumers(&Label::new("b")), vec![TaskId::new("t2")]);
        assert!(w.consumers(&Label::new("c")).is_empty());
        assert!(w.consumers(&Label::new("zzz")).is_empty());
    }

    #[test]
    fn task_io_lookup() {
        let w = sample();
        assert_eq!(w.task_inputs(&TaskId::new("t1")), vec![Label::new("a")]);
        assert_eq!(
            w.task_outputs(&TaskId::new("t1")),
            vec![Label::new("b"), Label::new("d")]
        );
        assert_eq!(w.task_mode(&TaskId::new("t2")), Some(Mode::Disjunctive));
        assert_eq!(w.task_mode(&TaskId::new("missing")), None);
        assert!(w.task_inputs(&TaskId::new("missing")).is_empty());
    }

    #[test]
    fn execution_order_respects_dependencies() {
        let w = sample();
        let order = w.execution_order();
        let p1 = order.iter().position(|t| t == &TaskId::new("t1")).unwrap();
        let p2 = order.iter().position(|t| t == &TaskId::new("t2")).unwrap();
        assert!(p1 < p2);
    }

    #[test]
    fn task_levels_are_longest_path_depths() {
        let w = sample();
        let levels = w.task_levels();
        assert_eq!(levels, vec![(TaskId::new("t1"), 0), (TaskId::new("t2"), 1)]);
    }

    #[test]
    fn empty_workflow() {
        let w = Workflow::empty();
        assert!(w.is_empty());
        assert!(w.inset().is_empty());
        assert!(w.outset().is_empty());
        assert_eq!(w.execution_order(), Vec::<TaskId>::new());
    }

    #[test]
    fn display_is_informative() {
        let w = sample();
        let s = w.to_string();
        assert!(s.contains("2 tasks"), "{s}");
        assert!(s.contains("in={a}"), "{s}");
    }
}
