//! The §3.1 proof-sketch invariants, checked explicitly on traces.
//!
//! The paper argues correctness of Algorithm 1 through three claims:
//!
//! 1. "every green node is reachable starting from ι, and all of its
//!    prerequisites have a smaller distance";
//! 2. "once ω is colored blue … the graph of blue nodes and blue edges is
//!    a valid workflow" (at phase end);
//! 3. "the coloring of blue nodes will eventually terminate, and upon
//!    termination the graph formed by the blue nodes and edges will be a
//!    workflow satisfying specification S".
//!
//! These tests replay the recorded construction trace and check each
//! claim mechanically on randomized knowledge bases.

use std::collections::HashMap;

use openwf_core::construct::{Color, Constructor, Distance, PickOrder, TraceEvent};
use openwf_core::prelude::*;
use openwf_core::{Label, NodeKind, TaskId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawTask {
    inputs: Vec<u8>,
    outputs: Vec<u8>,
    conjunctive: bool,
}

fn build_fragments(raw: &[RawTask]) -> Vec<Fragment> {
    raw.iter()
        .enumerate()
        .filter_map(|(i, rt)| {
            let inputs: std::collections::BTreeSet<u8> = rt.inputs.iter().copied().collect();
            let outputs: std::collections::BTreeSet<u8> = rt
                .outputs
                .iter()
                .copied()
                .filter(|o| !inputs.contains(o))
                .collect();
            if outputs.is_empty() {
                return None;
            }
            Fragment::single_task(
                format!("f{i}"),
                format!("t{i}"),
                if rt.conjunctive {
                    Mode::Conjunctive
                } else {
                    Mode::Disjunctive
                },
                inputs.iter().map(|x| format!("l{x}")),
                outputs.iter().map(|x| format!("l{x}")),
            )
            .ok()
        })
        .collect()
}

fn arb_world() -> impl Strategy<Value = (Vec<Fragment>, Spec)> {
    (
        proptest::collection::vec(
            (
                proptest::collection::vec(0u8..10, 1..=3),
                proptest::collection::vec(0u8..10, 1..=3),
                any::<bool>(),
            ),
            1..=14,
        ),
        proptest::collection::btree_set(0u8..10, 1..=3),
        proptest::collection::btree_set(0u8..10, 1..=2),
    )
        .prop_map(|(raw, triggers, goals)| {
            let fragments = build_fragments(
                &raw.into_iter()
                    .map(|(inputs, outputs, conjunctive)| RawTask {
                        inputs,
                        outputs,
                        conjunctive,
                    })
                    .collect::<Vec<_>>(),
            );
            let spec = Spec::new(
                triggers.iter().map(|t| format!("l{t}")),
                goals.iter().map(|g| format!("l{g}")),
            );
            (fragments, spec)
        })
}

/// Replays a trace, tracking per-node color and distance history.
struct Replay {
    /// (color, distance) per node key string, updated in trace order.
    state: HashMap<String, (Color, Distance)>,
}

impl Replay {
    fn new() -> Self {
        Replay {
            state: HashMap::new(),
        }
    }

    fn apply(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Colored {
            node,
            color,
            distance,
        } = ev
        {
            self.state.insert(node.to_string(), (*color, *distance));
        }
    }

    fn color(&self, key: &str) -> Color {
        self.state
            .get(key)
            .map(|(c, _)| *c)
            .unwrap_or(Color::Uncolored)
    }

    fn distance(&self, key: &str) -> Distance {
        self.state
            .get(key)
            .map(|(_, d)| *d)
            .unwrap_or(Distance::INFINITY)
    }
}

fn node_key(kind: NodeKind, name: &str) -> String {
    match kind {
        NodeKind::Label => format!("label:{name}"),
        NodeKind::Task => format!("task:{name}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Claim 1: whenever a node turns green at distance d, its
    /// prerequisites (any one parent for disjunctive, all parents for
    /// conjunctive) are already green with strictly smaller distance.
    #[test]
    fn green_invariant_holds_throughout((fragments, spec) in arb_world()) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let Ok(c) = Constructor::new().record_trace(true).construct(&sg, &spec) else {
            return Ok(()); // infeasible: nothing to check
        };
        let g = sg.graph();
        let mut replay = Replay::new();
        for ev in c.trace().unwrap().events() {
            if let TraceEvent::Colored { node, color: Color::Green, distance } = ev {
                // Trigger labels start at 0 with no prerequisites.
                if *distance != Distance::ZERO {
                    let idx = g.find(node).expect("traced node exists");
                    let parents = g.parents(idx);
                    let parent_ok = |p: &openwf_core::NodeIdx| {
                        let key = node_key(g.kind(*p), g.key(*p).name());
                        replay.color(&key) == Color::Green && replay.distance(&key) < *distance
                    };
                    let mode_ok = match g.kind(idx) {
                        NodeKind::Label => parents.iter().any(parent_ok),
                        NodeKind::Task => match g.mode(idx) {
                            Mode::Disjunctive => parents.iter().any(parent_ok),
                            Mode::Conjunctive => {
                                !parents.is_empty() && parents.iter().all(parent_ok)
                            }
                        },
                    };
                    prop_assert!(
                        mode_ok,
                        "green invariant violated at {node} (d={distance})"
                    );
                }
            }
            replay.apply(ev);
        }
    }

    /// Claims 2+3: at termination the blue region is a valid workflow
    /// satisfying S, every blue edge goes to a node that was purple at
    /// some point, and blue disjunctive nodes chose a strictly closer
    /// parent (the termination argument).
    #[test]
    fn blue_region_is_terminating_workflow((fragments, spec) in arb_world()) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let Ok(c) = Constructor::new().record_trace(true).construct(&sg, &spec) else {
            return Ok(());
        };
        // Claim 3's endpoint: result satisfies S (practical acceptance).
        prop_assert!(spec.accepts(c.workflow()));
        prop_assert!(c.workflow().graph().is_acyclic());

        // Every node that became purple later became blue (the purple set
        // empties — termination of the sweep).
        let mut purple_seen: HashMap<String, bool> = HashMap::new();
        for ev in c.trace().unwrap().events() {
            if let TraceEvent::Colored { node, color, .. } = ev {
                match color {
                    Color::Purple => {
                        purple_seen.insert(node.to_string(), false);
                    }
                    Color::Blue => {
                        if let Some(done) = purple_seen.get_mut(&node.to_string()) {
                            *done = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        for (node, done) in purple_seen {
            prop_assert!(done, "node {node} stayed purple");
        }

        // Distance decreases along blue edges into disjunctive nodes.
        let g = sg.graph();
        let mut final_distance: HashMap<String, Distance> = HashMap::new();
        for ev in c.trace().unwrap().events() {
            if let TraceEvent::Colored { node, distance, .. } = ev {
                final_distance.insert(node.to_string(), *distance);
            }
        }
        for ev in c.trace().unwrap().events() {
            if let TraceEvent::EdgeBlue { from, to } = ev {
                let to_idx = g.find(to).expect("traced node");
                let disjunctive = match g.kind(to_idx) {
                    NodeKind::Label => true,
                    NodeKind::Task => g.mode(to_idx) == Mode::Disjunctive,
                };
                if disjunctive {
                    let df = final_distance.get(&from.to_string());
                    let dt = final_distance.get(&to.to_string());
                    if let (Some(df), Some(dt)) = (df, dt) {
                        prop_assert!(
                            df < dt,
                            "blue edge {from}->{to} must decrease distance ({df} !< {dt})"
                        );
                    }
                }
            }
        }
    }
}

/// Deterministic version of the catering wait-staff story at the trace
/// level: the infeasible `serve tables` task is never colored green.
#[test]
fn infeasible_tasks_never_turn_green() {
    let mut sg = Supergraph::new();
    sg.merge_fragment(
        &Fragment::single_task(
            "prep",
            "prepare",
            Mode::Conjunctive,
            ["ingredients"],
            ["meal"],
        )
        .unwrap(),
    );
    sg.merge_fragment(
        &Fragment::single_task("t", "serve tables", Mode::Conjunctive, ["meal"], ["served"])
            .unwrap(),
    );
    sg.merge_fragment(
        &Fragment::single_task("b", "serve buffet", Mode::Conjunctive, ["meal"], ["served"])
            .unwrap(),
    );
    let spec = Spec::new(["ingredients"], ["served"]);
    let c = Constructor::new()
        .record_trace(true)
        .pick_order(PickOrder::Random(3))
        .construct_filtered(&sg, &spec, |t| t != &TaskId::new("serve tables"))
        .unwrap();
    for ev in c.trace().unwrap().events() {
        if let TraceEvent::Colored { node, .. } = ev {
            assert_ne!(
                node.name(),
                "serve tables",
                "infeasible task must stay uncolored"
            );
        }
    }
    assert!(c.workflow().contains_task(&TaskId::new("serve buffet")));
    let _ = Label::new("served"); // silence unused import on some cfgs
}
