//! Property-based tests for the open workflow core.
//!
//! The central claims of §3.1's proof sketch are checked against randomized
//! knowledge bases:
//!
//! * **Soundness** — whenever construction succeeds, the result is a valid
//!   workflow (acyclic, bipartite, single-producer labels, label
//!   sources/sinks) that satisfies the specification.
//! * **Completeness** — construction succeeds exactly when an independent
//!   forward-chaining fixpoint oracle says the goals are reachable.
//! * **Order independence** — every nondeterministic pick order yields a
//!   satisfying workflow (possibly different ones).
//! * **Incremental equivalence** — frontier-driven collection agrees with
//!   full collection on feasibility and spec satisfaction.

use std::collections::{BTreeSet, HashMap, HashSet};

use openwf_core::construct::{ConstructError, Constructor, PickOrder};
use openwf_core::prelude::*;
use openwf_core::prune::prune_to_spec;
use openwf_core::validate::validate;
use openwf_core::{IncrementalConstructor, Label, TaskId};
use proptest::prelude::*;

/// A compact description of a randomly generated single-task fragment.
#[derive(Clone, Debug)]
struct RawTask {
    inputs: Vec<u8>,
    outputs: Vec<u8>,
    conjunctive: bool,
}

fn label_name(i: u8) -> String {
    format!("l{i}")
}

fn build_fragments(raw: &[RawTask]) -> Vec<Fragment> {
    raw.iter()
        .enumerate()
        .filter_map(|(i, rt)| {
            let inputs: BTreeSet<u8> = rt.inputs.iter().copied().collect();
            let outputs: BTreeSet<u8> = rt
                .outputs
                .iter()
                .copied()
                .filter(|o| !inputs.contains(o))
                .collect();
            if inputs.is_empty() || outputs.is_empty() {
                return None;
            }
            let mode = if rt.conjunctive {
                Mode::Conjunctive
            } else {
                Mode::Disjunctive
            };
            Fragment::single_task(
                format!("f{i}"),
                format!("t{i}"),
                mode,
                inputs.iter().map(|&x| label_name(x)),
                outputs.iter().map(|&x| label_name(x)),
            )
            .ok()
        })
        .collect()
}

fn arb_raw_task(alphabet: u8) -> impl Strategy<Value = RawTask> {
    (
        proptest::collection::vec(0..alphabet, 1..=3),
        proptest::collection::vec(0..alphabet, 1..=3),
        any::<bool>(),
    )
        .prop_map(|(inputs, outputs, conjunctive)| RawTask {
            inputs,
            outputs,
            conjunctive,
        })
}

fn arb_world(max_tasks: usize, alphabet: u8) -> impl Strategy<Value = (Vec<Fragment>, Spec)> {
    (
        proptest::collection::vec(arb_raw_task(alphabet), 1..=max_tasks),
        proptest::collection::btree_set(0..alphabet, 1..=3),
        proptest::collection::btree_set(0..alphabet, 1..=2),
    )
        .prop_map(move |(raw, triggers, goals)| {
            let fragments = build_fragments(&raw);
            let spec = Spec::new(
                triggers.iter().map(|&t| label_name(t)),
                goals.iter().map(|&g| label_name(g)),
            );
            (fragments, spec)
        })
}

/// Independent forward-chaining oracle: the set of labels reachable from
/// the triggers by repeatedly firing tasks whose requirements are met.
fn reachable_labels(fragments: &[Fragment], spec: &Spec) -> HashSet<Label> {
    let mut have: HashSet<Label> = spec.triggers().iter().cloned().collect();
    // (inputs, outputs, conjunctive) per task, deduplicated by task id.
    let mut tasks: HashMap<TaskId, (Vec<Label>, Vec<Label>, bool)> = HashMap::new();
    for f in fragments {
        for t in f.tasks() {
            let w = f.workflow();
            tasks.entry(t.clone()).or_insert_with(|| {
                (
                    w.task_inputs(&t),
                    w.task_outputs(&t),
                    w.task_mode(&t) == Some(Mode::Conjunctive),
                )
            });
        }
    }
    loop {
        let mut changed = false;
        for (ins, outs, conj) in tasks.values() {
            let fires = if *conj {
                ins.iter().all(|l| have.contains(l))
            } else {
                ins.iter().any(|l| have.contains(l))
            };
            if fires {
                for o in outs {
                    if have.insert(o.clone()) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return have;
        }
    }
}

fn oracle_feasible(fragments: &[Fragment], spec: &Spec) -> bool {
    let have = reachable_labels(fragments, spec);
    spec.goals().iter().all(|g| have.contains(g))
}

/// A graph re-expressed in pure string space: kind-qualified node names
/// and string edge pairs, collected through plain std collections with no
/// interning involved.
fn graph_strings(g: &openwf_core::Graph) -> (BTreeSet<String>, BTreeSet<(String, String)>) {
    let nodes: BTreeSet<String> = g.nodes().map(|(_, k)| k.to_string()).collect();
    let edges: BTreeSet<(String, String)> = g
        .edges()
        .map(|(a, b)| (g.key(a).to_string(), g.key(b).to_string()))
        .collect();
    (nodes, edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn construction_is_sound((fragments, spec) in arb_world(12, 10)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        if let Ok(c) = Constructor::new().construct(&sg, &spec) {
            let w = c.workflow();
            // Type invariant re-checked explicitly.
            prop_assert!(validate(w.graph()).is_ok());
            prop_assert!(w.graph().is_acyclic());
            prop_assert!(spec.accepts(w), "workflow {w} must satisfy {spec}");
            prop_assert!(w.inset().is_subset(spec.triggers()));
            // Every used fragment must exist in the supergraph.
            for fid in c.fragments_used() {
                prop_assert!(sg.contains_fragment(fid));
            }
        }
    }

    #[test]
    fn construction_is_complete((fragments, spec) in arb_world(12, 10)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let result = Constructor::new().construct(&sg, &spec);
        let feasible = oracle_feasible(&fragments, &spec);
        match result {
            Ok(_) => prop_assert!(feasible, "constructed but oracle says infeasible"),
            Err(ConstructError::NoSolution { .. }) => {
                prop_assert!(!feasible, "oracle says feasible but construction failed")
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    #[test]
    fn every_pick_order_is_sound((fragments, spec) in arb_world(10, 8)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let orders = [
            PickOrder::Fifo,
            PickOrder::Lifo,
            PickOrder::Random(7),
            PickOrder::Random(12345),
        ];
        let mut successes = 0;
        for order in orders {
            match Constructor::new().pick_order(order).construct(&sg, &spec) {
                Ok(c) => {
                    successes += 1;
                    prop_assert!(spec.accepts(c.workflow()), "order {order:?}");
                }
                Err(ConstructError::NoSolution { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }
        }
        // Feasibility must not depend on pick order.
        prop_assert!(successes == 0 || successes == orders.len());
    }

    #[test]
    fn incremental_matches_full((fragments, spec) in arb_world(12, 10)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let full = Constructor::new().construct(&sg, &spec);
        let mut store: InMemoryFragmentStore = fragments.iter().cloned().collect();
        let inc = IncrementalConstructor::new().construct(&mut store, &spec);
        match (full, inc) {
            (Ok(f), Ok((i, partial_sg))) => {
                prop_assert!(spec.accepts(f.workflow()));
                prop_assert!(spec.accepts(i.workflow()));
                prop_assert!(partial_sg.fragment_count() <= fragments.len());
            }
            (Err(ConstructError::NoSolution { .. }), Err(ConstructError::NoSolution { .. })) => {}
            (f, i) => prop_assert!(
                false,
                "full and incremental disagree: {f:?} vs {i:?}"
            ),
        }
    }

    /// Golden equivalence for the symbol-interned hot path: everything the
    /// interned representation computes must be isomorphic (under the
    /// identity mapping on names) to what string-keyed semantics dictate.
    /// A `Sym` collision (two names, one symbol) would merge nodes and
    /// shrink these sets; a split (one name, two symbols) would duplicate
    /// them — either breaks the equalities below.
    #[test]
    fn interned_construction_matches_string_keyed_semantics(
        (fragments, spec) in arb_world(12, 10)
    ) {
        // The string-keyed union of all fragments, built with plain std
        // collections and zero interning — the pre-refactor ground truth.
        let mut union_nodes: BTreeSet<String> = BTreeSet::new();
        let mut union_edges: BTreeSet<(String, String)> = BTreeSet::new();
        for f in &fragments {
            let (n, e) = graph_strings(f.graph());
            union_nodes.extend(n);
            union_edges.extend(e);
        }

        // The interned supergraph must be exactly that union.
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        let (sg_nodes, sg_edges) = graph_strings(sg.graph());
        prop_assert_eq!(&sg_nodes, &union_nodes);
        prop_assert_eq!(&sg_edges, &union_edges);
        prop_assert_eq!(
            sg.graph().node_count(), union_nodes.len(),
            "interning must neither merge distinct names nor split equal ones"
        );
        prop_assert_eq!(sg.graph().edge_count(), union_edges.len());

        // Construction is a function of string semantics alone: repeated
        // runs and the incremental path must satisfy the spec with
        // workflows drawn from the union, and identical runs must agree
        // node-for-node in string space.
        let full = Constructor::new().construct(&sg, &spec);
        let again = Constructor::new().construct(&sg, &spec);
        let mut store: InMemoryFragmentStore = fragments.iter().cloned().collect();
        let inc = IncrementalConstructor::new().construct(&mut store, &spec);
        // Goals that are triggers but appear in no fragment become
        // isolated labels in the result; admit them alongside the union.
        let mut admissible_nodes = union_nodes.clone();
        admissible_nodes.extend(spec.triggers().iter().map(|l| format!("label:{l}")));
        match (full, again, inc) {
            (Ok(f), Ok(f2), Ok((i, _))) => {
                let (fn_, fe) = graph_strings(f.workflow().graph());
                let (fn2, fe2) = graph_strings(f2.workflow().graph());
                prop_assert_eq!(&fn_, &fn2, "identical runs must agree");
                prop_assert_eq!(&fe, &fe2);
                prop_assert!(fn_.is_subset(&admissible_nodes));
                prop_assert!(fe.is_subset(&union_edges));
                let (in_, ie) = graph_strings(i.workflow().graph());
                prop_assert!(in_.is_subset(&admissible_nodes));
                prop_assert!(ie.is_subset(&union_edges));
                // Conjunctive tasks keep their *complete* string-keyed
                // input sets in any constructed workflow.
                for w in [f.workflow(), i.workflow()] {
                    let g = w.graph();
                    for t in w.tasks() {
                        if w.task_mode(&t) != Some(Mode::Conjunctive) {
                            continue;
                        }
                        let idx = g.find_task(&t).unwrap();
                        let have: BTreeSet<String> = g
                            .parents(idx)
                            .iter()
                            .map(|&p| g.key(p).to_string())
                            .collect();
                        let want: BTreeSet<String> = union_edges
                            .iter()
                            .filter(|(_, to)| *to == g.key(idx).to_string())
                            .map(|(from, _)| from.clone())
                            .collect();
                        prop_assert_eq!(have, want, "conjunctive task {} lost inputs", t);
                    }
                }
            }
            (Err(ConstructError::NoSolution { .. }),
             Err(ConstructError::NoSolution { .. }),
             Err(ConstructError::NoSolution { .. })) => {
                prop_assert!(!oracle_feasible(&fragments, &spec));
            }
            (f, f2, i) => prop_assert!(
                false,
                "interned paths disagree: {f:?} vs {f2:?} vs {i:?}"
            ),
        }
    }

    /// Parallel frontier exploration is a pure implementation strategy:
    /// for every worker count and shard count, construction over a
    /// sharded store must produce a supergraph isomorphic to (in fact,
    /// string-identical with) sequential construction over a monolithic
    /// store, and the same workflow — across pick orders.
    #[test]
    fn parallel_construction_is_isomorphic_to_sequential(
        (fragments, spec) in arb_world(12, 10)
    ) {
        for order in [PickOrder::Fifo, PickOrder::Lifo, PickOrder::Random(7)] {
            let mut seq_store: InMemoryFragmentStore = fragments.iter().cloned().collect();
            let sequential = IncrementalConstructor::new()
                .pick_order(order)
                .construct(&mut seq_store, &spec);
            for workers in [2usize, 4] {
                let mut store = ShardedFragmentStore::with_shards(3);
                store.extend(fragments.iter().cloned());
                let parallel = IncrementalConstructor::new()
                    .pick_order(order)
                    .workers(workers)
                    .construct_parallel(&store, &spec);
                match (&sequential, &parallel) {
                    (Ok((sc, ssg)), Ok((pc, psg))) => {
                        // Same supergraph in string space…
                        prop_assert_eq!(
                            graph_strings(ssg.graph()),
                            graph_strings(psg.graph()),
                            "supergraph must be isomorphic ({:?}, {} workers)",
                            order, workers
                        );
                        prop_assert_eq!(ssg.fragment_count(), psg.fragment_count());
                        // …and the same constructed workflow.
                        prop_assert_eq!(
                            graph_strings(sc.workflow().graph()),
                            graph_strings(pc.workflow().graph()),
                            "workflow must match ({:?}, {} workers)",
                            order, workers
                        );
                        prop_assert_eq!(sc.stats(), pc.stats());
                    }
                    (
                        Err(ConstructError::NoSolution { .. }),
                        Err(ConstructError::NoSolution { .. }),
                    ) => {}
                    (s, p) => prop_assert!(
                        false,
                        "sequential and parallel disagree ({order:?}, {workers} workers): \
                         {s:?} vs {p:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn blue_workflow_is_subset_of_knowledge((fragments, spec) in arb_world(12, 10)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        if let Ok(c) = Constructor::new().construct(&sg, &spec) {
            let w = c.workflow();
            for t in w.tasks() {
                let idx = sg.graph().find_task(&t);
                prop_assert!(idx.is_some(), "task {t} must come from the supergraph");
            }
            for l in w.labels() {
                prop_assert!(
                    sg.graph().find_label(&l).is_some() || spec.triggers().contains(&l),
                    "label {l} must come from the supergraph or be a trivial goal"
                );
            }
        }
    }

    #[test]
    fn prune_to_spec_preserves_acceptance((fragments, spec) in arb_world(10, 8)) {
        // Compose everything that *can* be composed into one workflow, then
        // prune to the goals that exist in it.
        let mut acc = Workflow::empty();
        for f in &fragments {
            if let Ok(next) = openwf_core::compose(&acc, f.workflow()) {
                acc = next;
            }
        }
        let present_goals: Vec<Label> = spec
            .goals()
            .iter()
            .filter(|g| acc.contains_label(g))
            .cloned()
            .collect();
        prop_assume!(!present_goals.is_empty());
        let narrowed = Spec::new(
            acc.inset().iter().cloned(),
            present_goals.iter().cloned(),
        );
        let pruned = prune_to_spec(&acc, &narrowed).unwrap();
        prop_assert!(validate(pruned.graph()).is_ok());
        // Pruning never grows the workflow.
        prop_assert!(pruned.task_count() <= acc.task_count());
        // All goals still present.
        for g in &present_goals {
            prop_assert!(pruned.contains_label(g));
        }
    }

    #[test]
    fn feasibility_filter_only_removes_options((fragments, spec) in arb_world(10, 8)) {
        let sg = Supergraph::from_fragments(&fragments).unwrap();
        // Unfiltered failure implies filtered failure.
        let unfiltered = Constructor::new().construct(&sg, &spec);
        let filtered = Constructor::new().construct_filtered(&sg, &spec, |t| {
            // Arbitrary deterministic filter: drop tasks with even suffix.
            !t.as_str().ends_with('0') && !t.as_str().ends_with('2')
        });
        if unfiltered.is_err() {
            prop_assert!(filtered.is_err(), "filtering cannot create solutions");
        }
        if let Ok(c) = filtered {
            for t in c.workflow().tasks() {
                prop_assert!(!t.as_str().ends_with('0') && !t.as_str().ends_with('2'));
            }
        }
    }
}

/// Deterministic regression: same seed, same construction result.
#[test]
fn random_order_is_deterministic_per_seed() {
    let fragments: Vec<Fragment> = (0..20)
        .map(|i| {
            Fragment::single_task(
                format!("f{i}"),
                format!("t{i}"),
                Mode::Disjunctive,
                [format!("l{}", i % 7)],
                [format!("l{}", (i + 3) % 7 + 7)],
            )
            .unwrap()
        })
        .collect();
    let sg = Supergraph::from_fragments(&fragments).unwrap();
    // Tasks consume l{i%7} and produce l{(i+3)%7+7}; from triggers l0/l1
    // the reachable outputs are l10 and l11.
    let spec = Spec::new(["l0", "l1"], ["l10"]);
    let a = Constructor::new()
        .pick_order(PickOrder::Random(99))
        .construct(&sg, &spec)
        .unwrap();
    let b = Constructor::new()
        .pick_order(PickOrder::Random(99))
        .construct(&sg, &spec)
        .unwrap();
    let ta: Vec<TaskId> = a.workflow().tasks().collect();
    let tb: Vec<TaskId> = b.workflow().tasks().collect();
    assert_eq!(ta, tb);
    assert_eq!(a.stats(), b.stats());
}
