//! 2D points and rectangles (meters).

use std::fmt;

/// A position on the site plane, in meters.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Point {
    /// East-west coordinate (m).
    pub x: f64,
    /// North-south coordinate (m).
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, in meters.
    pub fn distance_to(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// The point a fraction `t` (0..=1) of the way towards `other`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// An axis-aligned rectangle, used as the arena for random-waypoint
/// mobility.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Rect {
    /// Minimum corner.
    pub min: Point,
    /// Maximum corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners (normalized so `min <= max`).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square arena of the given side length anchored at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// True if the point lies inside (inclusive of borders).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn lerp_interpolates_and_clamps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 0.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 2.0), b, "clamped above");
        assert_eq!(a.lerp(b, -1.0), a, "clamped below");
    }

    #[test]
    fn rect_normalizes_and_contains() {
        let r = Rect::new(Point::new(10.0, 10.0), Point::new(0.0, 0.0));
        assert_eq!(r.min, Point::ORIGIN);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)), "border inclusive");
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 10.0);
    }

    #[test]
    fn rect_clamp_snaps_outside_points() {
        let r = Rect::square(100.0);
        assert_eq!(r.clamp(Point::new(-5.0, 50.0)), Point::new(0.0, 50.0));
        assert_eq!(r.clamp(Point::new(500.0, 500.0)), Point::new(100.0, 100.0));
    }

    #[test]
    fn display_is_metric() {
        assert_eq!(Point::new(1.25, 3.0).to_string(), "(1.2m, 3.0m)");
    }
}
