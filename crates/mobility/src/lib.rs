//! # openwf-mobility — location and travel substrate
//!
//! Open workflow allocation and execution are "sensitive to the time and
//! location considerations necessary when performing activities in the real
//! world" (§1): a participant can only commit to a task if it can travel to
//! the task's location in time, and its schedule must block out travel
//! time (§3.2, §4.1's screenshot shows travel blocked in the calendar).
//!
//! This crate provides the minimal geometry the runtime needs:
//!
//! * [`Point`] — 2D positions in meters ([`geometry`]).
//! * [`Place`] / [`SiteMap`] — named locations ([`map`]).
//! * [`Motion`] — speed and travel-time estimation ([`motion`]).
//! * [`WaypointPlan`] — scripted and random-waypoint mobility
//!   ([`waypoint`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod geometry;
pub mod map;
pub mod motion;
pub mod waypoint;

pub use geometry::{Point, Rect};
pub use map::{Place, SiteMap};
pub use motion::Motion;
pub use waypoint::{RandomWaypoint, WaypointPlan};
