//! Named places: the site vocabulary tasks and services refer to.
//!
//! Task metadata in the runtime names locations symbolically ("kitchen",
//! "conference room", "spill site"); the [`SiteMap`] resolves names to
//! coordinates so schedules can estimate travel.

use std::collections::BTreeMap;
use std::fmt;

use crate::geometry::Point;

/// A named location on the site.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Place {
    /// The symbolic name.
    pub name: String,
    /// Its position.
    pub position: Point,
}

impl Place {
    /// Creates a place.
    pub fn new(name: impl Into<String>, position: Point) -> Self {
        Place {
            name: name.into(),
            position,
        }
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.name, self.position)
    }
}

/// A registry of named places.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct SiteMap {
    places: BTreeMap<String, Point>,
}

impl SiteMap {
    /// An empty map.
    pub fn new() -> Self {
        SiteMap::default()
    }

    /// Adds (or moves) a place; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, position: Point) -> Self {
        self.insert(name, position);
        self
    }

    /// Adds (or moves) a place.
    pub fn insert(&mut self, name: impl Into<String>, position: Point) {
        self.places.insert(name.into(), position);
    }

    /// Resolves a place name.
    pub fn resolve(&self, name: &str) -> Option<Point> {
        self.places.get(name).copied()
    }

    /// Distance in meters between two named places, if both exist.
    pub fn distance(&self, a: &str, b: &str) -> Option<f64> {
        Some(self.resolve(a)?.distance_to(self.resolve(b)?))
    }

    /// Number of registered places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// True if no places are registered.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Iterates over places in name order.
    pub fn iter(&self) -> impl Iterator<Item = Place> + '_ {
        self.places.iter().map(|(n, &p)| Place::new(n.clone(), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> SiteMap {
        SiteMap::new()
            .with("kitchen", Point::new(0.0, 0.0))
            .with("office", Point::new(30.0, 40.0))
            .with("dock", Point::new(100.0, 0.0))
    }

    #[test]
    fn resolve_and_distance() {
        let m = site();
        assert_eq!(m.resolve("kitchen"), Some(Point::ORIGIN));
        assert_eq!(m.resolve("nowhere"), None);
        assert!((m.distance("kitchen", "office").unwrap() - 50.0).abs() < 1e-12);
        assert!(m.distance("kitchen", "nowhere").is_none());
    }

    #[test]
    fn insert_moves_existing_place() {
        let mut m = site();
        m.insert("kitchen", Point::new(1.0, 1.0));
        assert_eq!(m.resolve("kitchen"), Some(Point::new(1.0, 1.0)));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let names: Vec<String> = site().iter().map(|p| p.name).collect();
        assert_eq!(names, ["dock", "kitchen", "office"]);
    }

    #[test]
    fn display_shows_name_and_position() {
        let p = Place::new("kitchen", Point::new(1.0, 2.0));
        assert_eq!(p.to_string(), "kitchen @ (1.0m, 2.0m)");
    }
}
