//! Speed and travel-time estimation.
//!
//! §3.2: to meet a commitment a participant must "(2) be at the required
//! location for executing the service … The participant monitors these
//! conditions and, based upon their knowledge of their location and the
//! travel times involved, travels and communicates as necessary."

use std::fmt;

use crate::geometry::Point;

/// A participant's motion capability: how fast it can move.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Motion {
    /// Sustained speed in meters per second.
    pub speed_mps: f64,
}

impl Motion {
    /// Walking pace (~1.4 m/s).
    pub const WALKING: Motion = Motion { speed_mps: 1.4 };

    /// A brisk service cart / bicycle pace (~4 m/s).
    pub const CART: Motion = Motion { speed_mps: 4.0 };

    /// An immobile participant (a fixed appliance offering services).
    pub const STATIONARY: Motion = Motion { speed_mps: 0.0 };

    /// Creates a motion profile.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite speeds.
    pub fn new(speed_mps: f64) -> Self {
        assert!(
            speed_mps.is_finite() && speed_mps >= 0.0,
            "speed must be finite and non-negative"
        );
        Motion { speed_mps }
    }

    /// True if this participant cannot move.
    pub fn is_stationary(&self) -> bool {
        self.speed_mps == 0.0
    }

    /// Seconds needed to travel from `from` to `to`, or `None` if the
    /// participant is stationary and the points differ.
    pub fn travel_seconds(&self, from: Point, to: Point) -> Option<f64> {
        let d = from.distance_to(to);
        if d == 0.0 {
            return Some(0.0);
        }
        if self.is_stationary() {
            return None;
        }
        Some(d / self.speed_mps)
    }

    /// True if the trip can be completed within `budget_seconds`.
    pub fn can_reach_within(&self, from: Point, to: Point, budget_seconds: f64) -> bool {
        match self.travel_seconds(from, to) {
            Some(t) => t <= budget_seconds,
            None => false,
        }
    }
}

impl fmt::Display for Motion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} m/s", self.speed_mps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_time_scales_with_distance() {
        let m = Motion::new(2.0);
        let t = m
            .travel_seconds(Point::ORIGIN, Point::new(10.0, 0.0))
            .unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_is_free_even_when_stationary() {
        let m = Motion::STATIONARY;
        assert_eq!(m.travel_seconds(Point::ORIGIN, Point::ORIGIN), Some(0.0));
        assert_eq!(m.travel_seconds(Point::ORIGIN, Point::new(1.0, 0.0)), None);
    }

    #[test]
    fn reachability_budget() {
        let m = Motion::WALKING;
        let near = Point::new(10.0, 0.0);
        assert!(m.can_reach_within(Point::ORIGIN, near, 10.0));
        assert!(!m.can_reach_within(Point::ORIGIN, near, 5.0));
        assert!(!Motion::STATIONARY.can_reach_within(Point::ORIGIN, near, 1e9));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_panics() {
        let _ = Motion::new(-1.0);
    }

    #[test]
    fn display_formats_speed() {
        assert_eq!(Motion::WALKING.to_string(), "1.4 m/s");
    }
}
