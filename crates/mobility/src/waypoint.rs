//! Mobility plans: where a participant is at any given time.
//!
//! Two models are provided:
//!
//! * [`WaypointPlan`] — a scripted sequence of `(time, point)` waypoints
//!   with linear interpolation; used by scenarios that choreograph
//!   participant movement (the catering staff moving between kitchen and
//!   dining room).
//! * [`RandomWaypoint`] — the classical MANET random-waypoint model
//!   (pick a random destination, travel at fixed speed, pause, repeat),
//!   used to stress connectivity-sensitive behavior.

use rand::RngExt;

use crate::geometry::{Point, Rect};
use crate::motion::Motion;

/// A scripted mobility plan: piecewise-linear movement through waypoints.
///
/// Positions before the first waypoint equal the first; after the last,
/// the participant stays at the last.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WaypointPlan {
    /// `(seconds since start, position)`, sorted by time.
    waypoints: Vec<(f64, Point)>,
}

impl WaypointPlan {
    /// A plan that stays at one point forever.
    pub fn stationary(at: Point) -> Self {
        WaypointPlan {
            waypoints: vec![(0.0, at)],
        }
    }

    /// Builds a plan from `(seconds, point)` pairs (sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains a non-finite time.
    pub fn new(points: impl IntoIterator<Item = (f64, Point)>) -> Self {
        let mut waypoints: Vec<(f64, Point)> = points.into_iter().collect();
        assert!(!waypoints.is_empty(), "a plan needs at least one waypoint");
        assert!(
            waypoints.iter().all(|(t, _)| t.is_finite()),
            "waypoint times must be finite"
        );
        waypoints.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        WaypointPlan { waypoints }
    }

    /// Appends a waypoint.
    pub fn then_at(mut self, seconds: f64, point: Point) -> Self {
        assert!(seconds.is_finite());
        self.waypoints.push((seconds, point));
        self.waypoints
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        self
    }

    /// The position at `seconds` since start.
    pub fn position_at(&self, seconds: f64) -> Point {
        let ws = &self.waypoints;
        if seconds <= ws[0].0 {
            return ws[0].1;
        }
        for pair in ws.windows(2) {
            let (t0, p0) = pair[0];
            let (t1, p1) = pair[1];
            if seconds <= t1 {
                if t1 == t0 {
                    return p1;
                }
                return p0.lerp(p1, (seconds - t0) / (t1 - t0));
            }
        }
        ws[ws.len() - 1].1
    }

    /// The final scripted position.
    pub fn final_position(&self) -> Point {
        self.waypoints[self.waypoints.len() - 1].1
    }
}

/// The random waypoint mobility model over a rectangular arena.
#[derive(Clone, Debug)]
pub struct RandomWaypoint {
    arena: Rect,
    motion: Motion,
    pause_seconds: f64,
    position: Point,
    destination: Point,
    pause_left: f64,
}

impl RandomWaypoint {
    /// Creates a walker starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the motion is stationary (the model requires movement) or
    /// the pause is negative.
    pub fn new(arena: Rect, start: Point, motion: Motion, pause_seconds: f64) -> Self {
        assert!(!motion.is_stationary(), "random waypoint requires movement");
        assert!(pause_seconds >= 0.0);
        let start = arena.clamp(start);
        RandomWaypoint {
            arena,
            motion,
            pause_seconds,
            position: start,
            destination: start,
            pause_left: 0.0,
        }
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Advances the walker by `dt` seconds, drawing new destinations from
    /// `rng` as needed.
    pub fn advance(&mut self, mut dt: f64, rng: &mut dyn rand::Rng) {
        while dt > 0.0 {
            if self.pause_left > 0.0 {
                let used = self.pause_left.min(dt);
                self.pause_left -= used;
                dt -= used;
                continue;
            }
            let remaining = self.position.distance_to(self.destination);
            if remaining == 0.0 {
                self.destination = Point::new(
                    rng.random_range(self.arena.min.x..=self.arena.max.x),
                    rng.random_range(self.arena.min.y..=self.arena.max.y),
                );
                self.pause_left = self.pause_seconds;
                continue;
            }
            let step = self.motion.speed_mps * dt;
            if step >= remaining {
                let used = remaining / self.motion.speed_mps;
                self.position = self.destination;
                dt -= used;
            } else {
                let t = step / remaining;
                self.position = self.position.lerp(self.destination, t);
                dt = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scripted_plan_interpolates() {
        let plan = WaypointPlan::new([
            (0.0, Point::new(0.0, 0.0)),
            (10.0, Point::new(10.0, 0.0)),
            (20.0, Point::new(10.0, 10.0)),
        ]);
        assert_eq!(plan.position_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(plan.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(plan.position_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(plan.position_at(100.0), Point::new(10.0, 10.0));
        assert_eq!(plan.final_position(), Point::new(10.0, 10.0));
    }

    #[test]
    fn stationary_plan_never_moves() {
        let p = WaypointPlan::stationary(Point::new(3.0, 4.0));
        assert_eq!(p.position_at(0.0), Point::new(3.0, 4.0));
        assert_eq!(p.position_at(1e6), Point::new(3.0, 4.0));
    }

    #[test]
    fn then_at_keeps_sorted_order() {
        let p = WaypointPlan::stationary(Point::ORIGIN)
            .then_at(20.0, Point::new(2.0, 0.0))
            .then_at(10.0, Point::new(1.0, 0.0));
        assert_eq!(p.position_at(10.0), Point::new(1.0, 0.0));
        assert_eq!(p.position_at(20.0), Point::new(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one waypoint")]
    fn empty_plan_panics() {
        let _ = WaypointPlan::new(std::iter::empty());
    }

    #[test]
    fn random_waypoint_stays_in_arena() {
        let arena = Rect::square(100.0);
        let mut rw = RandomWaypoint::new(arena, Point::new(50.0, 50.0), Motion::new(5.0), 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            rw.advance(1.0, &mut rng);
            assert!(
                arena.contains(rw.position()),
                "escaped to {}",
                rw.position()
            );
        }
    }

    #[test]
    fn random_waypoint_actually_moves() {
        let arena = Rect::square(100.0);
        let start = Point::new(0.0, 0.0);
        let mut rw = RandomWaypoint::new(arena, start, Motion::new(5.0), 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        rw.advance(30.0, &mut rng);
        assert!(rw.position().distance_to(start) > 0.0);
    }

    #[test]
    fn random_waypoint_is_deterministic_per_seed() {
        let arena = Rect::square(50.0);
        let run = |seed: u64| {
            let mut rw = RandomWaypoint::new(arena, Point::ORIGIN, Motion::new(3.0), 0.5);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                rw.advance(0.7, &mut rng);
            }
            rw.position()
        };
        assert_eq!(run(11), run(11));
    }
}
