//! `owms-serve` — the standalone open-workflow community server.
//!
//! One process hosts any number of `(community, host)` protocol cores
//! over real TCP (see [`openwf_net::NetServer`]), with durable fragment
//! stores, `net.*` transport metrics, causal trace export, and graceful
//! shutdown. Several processes running this binary — one per community
//! member — construct workflows together over actual sockets; the
//! `serve_process` integration test drives three of them and compares
//! know-how digests against a simulator run of the same scenario.
//!
//! ```text
//! owms-serve --listen 127.0.0.1:7401 --name worker-b \
//!     --config 0:1:host1.xml --durable 0:1:/var/owms/b \
//!     --community 0:0,1,2 --peer 0:0=127.0.0.1:7400 --peer 0:2=127.0.0.1:7402
//! ```
//!
//! Machine-readable stdout lines (stable, parsed by the integration
//! test): `listening on ADDR`, `digest C:H HEX`, `event …`,
//! `report PROBLEM STATUS`, `metrics JSON`, `done`.
//!
//! A process with `--submit` is the run's *initiator*: it dials its
//! routed peers (`--wait-peers N` gates on N being connected), submits
//! each spec in order — waiting for the previous one to finish, plus
//! `--pause-ms` — and broadcasts a shutdown frame to every peer once
//! all submissions are terminal. A process without `--submit` serves
//! until that shutdown frame (or `--max-runtime-ms`) arrives.

use std::collections::HashSet;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use openwf_net::{NetServer, QueueCaps, ServerConfig, WallClock};
use openwf_obs::{to_jsonl, Obs};
use openwf_runtime::config::parse_host_config;
use openwf_runtime::{HostConfig, ProblemId, RuntimeParams, WorkflowEvent};
use openwf_simnet::HostId;
use openwf_wire::StoragePolicy;

/// One `--submit C:H:in1+in2->g1+g2` directive.
struct Submission {
    community: u64,
    host: HostId,
    spec: openwf_core::Spec,
    raw: String,
}

/// Parsed command line.
struct Args {
    name: String,
    listen: Option<String>,
    hosts: Vec<(u64, HostId, Option<String>)>,
    durable: Vec<(u64, HostId, String)>,
    peers: Vec<(u64, HostId, String)>,
    communities: Vec<(u64, Vec<HostId>)>,
    submits: Vec<Submission>,
    wait_peers: usize,
    dial: bool,
    fast: bool,
    pause_ms: u64,
    max_runtime_ms: u64,
    print_metrics: bool,
    trace_jsonl: Option<String>,
    digests: Vec<(u64, HostId)>,
    seed: Option<u64>,
    queue_frames: usize,
    compact_min_bytes: Option<u64>,
    operator_ingest: Option<usize>,
}

fn usage(err: &str) -> String {
    format!(
        "owms-serve: {err}\n\
         usage: owms-serve [--listen ADDR|none] [--name NAME]\n\
           [--host C:H]... [--config C:H:PATH]... [--durable C:H:DIR]...\n\
           [--peer C:H=ADDR]... [--community C:H0,H1,...]...\n\
           [--submit C:H:in1+in2->g1+g2]... [--wait-peers N] [--dial] [--fast]\n\
           [--pause-ms MS]\n\
           [--max-runtime-ms MS] [--metrics] [--trace-jsonl PATH]\n\
           [--print-digest C:H]... [--seed N] [--queue-frames N]\n\
           [--compact-min-bytes N] [--operator-ingest NAME_CAP]"
    )
}

fn parse_pair(s: &str) -> Result<(u64, HostId), String> {
    let (c, h) = s
        .split_once(':')
        .ok_or_else(|| format!("expected C:H, got {s:?}"))?;
    let community = c.parse().map_err(|_| format!("bad community {c:?}"))?;
    let host: u32 = h.parse().map_err(|_| format!("bad host {h:?}"))?;
    Ok((community, HostId(host)))
}

fn parse_triple(s: &str) -> Result<(u64, HostId, String), String> {
    let mut parts = s.splitn(3, ':');
    let c = parts.next().unwrap_or("");
    let h = parts
        .next()
        .ok_or_else(|| format!("expected C:H:X, got {s:?}"))?;
    let rest = parts
        .next()
        .ok_or_else(|| format!("expected C:H:X, got {s:?}"))?;
    let (community, host) = parse_pair(&format!("{c}:{h}"))?;
    Ok((community, host, rest.to_string()))
}

fn parse_spec(s: &str) -> Result<openwf_core::Spec, String> {
    let (ins, outs) = s
        .split_once("->")
        .ok_or_else(|| format!("expected inputs->goals, got {s:?}"))?;
    let triggers: Vec<&str> = ins.split('+').filter(|l| !l.is_empty()).collect();
    let goals: Vec<&str> = outs.split('+').filter(|l| !l.is_empty()).collect();
    if triggers.is_empty() || goals.is_empty() {
        return Err(format!("empty spec side in {s:?}"));
    }
    Ok(openwf_core::Spec::new(triggers, goals))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        name: "owms".into(),
        listen: Some("127.0.0.1:0".into()),
        hosts: Vec::new(),
        durable: Vec::new(),
        peers: Vec::new(),
        communities: Vec::new(),
        submits: Vec::new(),
        wait_peers: 0,
        dial: false,
        fast: false,
        pause_ms: 0,
        max_runtime_ms: 120_000,
        print_metrics: false,
        trace_jsonl: None,
        digests: Vec::new(),
        seed: None,
        queue_frames: QueueCaps::default().max_frames,
        compact_min_bytes: None,
        operator_ingest: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--name" => args.name = value("--name")?.clone(),
            "--listen" => {
                let v = value("--listen")?;
                args.listen = (v != "none").then(|| v.clone());
            }
            "--host" => {
                let (c, h) = parse_pair(value("--host")?)?;
                args.hosts.push((c, h, None));
            }
            "--config" => {
                let (c, h, path) = parse_triple(value("--config")?)?;
                args.hosts.push((c, h, Some(path)));
            }
            "--durable" => args.durable.push(parse_triple(value("--durable")?)?),
            "--peer" => {
                let v = value("--peer")?;
                let (pair, addr) = v
                    .split_once('=')
                    .ok_or_else(|| format!("expected C:H=ADDR, got {v:?}"))?;
                let (c, h) = parse_pair(pair)?;
                args.peers.push((c, h, addr.to_string()));
            }
            "--community" => {
                let v = value("--community")?;
                let (c, list) = v
                    .split_once(':')
                    .ok_or_else(|| format!("expected C:H0,H1,..., got {v:?}"))?;
                let community = c.parse().map_err(|_| format!("bad community {c:?}"))?;
                let hosts = list
                    .split(',')
                    .map(|h| h.parse::<u32>().map(HostId))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| format!("bad host list {list:?}"))?;
                args.communities.push((community, hosts));
            }
            "--submit" => {
                let raw = value("--submit")?.clone();
                let (c, h, spec) = parse_triple(&raw)?;
                args.submits.push(Submission {
                    community: c,
                    host: h,
                    spec: parse_spec(&spec)?,
                    raw,
                });
            }
            "--wait-peers" => {
                args.wait_peers = value("--wait-peers")?
                    .parse()
                    .map_err(|_| "bad --wait-peers".to_string())?;
            }
            "--pause-ms" => {
                args.pause_ms = value("--pause-ms")?
                    .parse()
                    .map_err(|_| "bad --pause-ms".to_string())?;
            }
            "--max-runtime-ms" => {
                args.max_runtime_ms = value("--max-runtime-ms")?
                    .parse()
                    .map_err(|_| "bad --max-runtime-ms".to_string())?;
            }
            "--dial" => args.dial = true,
            "--fast" => args.fast = true,
            "--metrics" => args.print_metrics = true,
            "--trace-jsonl" => args.trace_jsonl = Some(value("--trace-jsonl")?.clone()),
            "--print-digest" => args.digests.push(parse_pair(value("--print-digest")?)?),
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| "bad --seed".to_string())?,
                );
            }
            "--queue-frames" => {
                args.queue_frames = value("--queue-frames")?
                    .parse()
                    .map_err(|_| "bad --queue-frames".to_string())?;
            }
            "--compact-min-bytes" => {
                args.compact_min_bytes = Some(
                    value("--compact-min-bytes")?
                        .parse()
                        .map_err(|_| "bad --compact-min-bytes".to_string())?,
                );
            }
            // Off by default: accepting fragment/spec envelopes from
            // the open listen socket is the operator's call, and the
            // cap bounds the names each connection may intern.
            "--operator-ingest" => {
                args.operator_ingest = Some(
                    value("--operator-ingest")?
                        .parse()
                        .map_err(|_| "bad --operator-ingest".to_string())?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.hosts.is_empty() {
        return Err("no --host/--config given; nothing to serve".into());
    }
    Ok(args)
}

fn flush() {
    let _ = std::io::stdout().flush();
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("{}", usage(&err));
            return ExitCode::from(1);
        }
    };

    let obs = Obs::enabled();
    let mut server = match NetServer::new(ServerConfig {
        name: args.name.clone(),
        listen: args.listen.clone(),
        queue_caps: QueueCaps {
            max_frames: args.queue_frames,
            ..QueueCaps::default()
        },
        obs: obs.clone(),
        clock: WallClock::new(),
        operator_ingest: args.operator_ingest,
        ..ServerConfig::default()
    }) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("owms-serve: bind failed: {err}");
            return ExitCode::from(1);
        }
    };
    if let Some(addr) = server.listen_addr() {
        println!("listening on {addr}");
        flush();
    }
    if let Some(seed) = args.seed {
        println!("seed {seed}");
    }

    // ---- build the served cores ----------------------------------------
    for (community, host, config_path) in &args.hosts {
        let mut config = match config_path {
            Some(path) => {
                let xml = match std::fs::read_to_string(path) {
                    Ok(xml) => xml,
                    Err(err) => {
                        eprintln!("owms-serve: cannot read {path}: {err}");
                        return ExitCode::from(1);
                    }
                };
                match parse_host_config(&xml) {
                    Ok(config) => config,
                    Err(err) => {
                        eprintln!("owms-serve: bad config {path}: {err:?}");
                        return ExitCode::from(1);
                    }
                }
            }
            None => HostConfig::new(),
        };
        for (dc, dh, dir) in &args.durable {
            if dc == community && dh == host {
                config = config.with_durable_storage(dir);
                if let Some(min) = args.compact_min_bytes {
                    config = config.with_storage_policy(StoragePolicy {
                        compact_min_bytes: min,
                        ..StoragePolicy::default()
                    });
                }
            }
        }
        config = config.with_observability(obs.clone());
        // `--fast` trades patience for wall-clock speed: bounded CI
        // smoke runs and examples finish in seconds instead of waiting
        // out production round/auction timeouts in real time.
        let params = if args.fast {
            RuntimeParams {
                round_timeout: openwf_simnet::SimDuration::from_millis(150),
                bid_patience: openwf_simnet::SimDuration::from_millis(30),
                auction_timeout: openwf_simnet::SimDuration::from_millis(400),
                execution_watchdog: openwf_simnet::SimDuration::from_secs(10),
                ..RuntimeParams::default()
            }
        } else {
            RuntimeParams::default()
        };
        server.add_core(*community, *host, config, params);
    }
    for (community, hosts) in &args.communities {
        server.set_community(*community, hosts.clone());
    }
    for (community, host, addr) in &args.peers {
        match addr.parse() {
            Ok(addr) => server.add_route(*community, *host, addr),
            Err(_) => {
                eprintln!("owms-serve: bad peer address {addr:?}");
                return ExitCode::from(1);
            }
        }
    }
    // Start-of-life digests let a restart test verify durable recovery
    // restored the exact pre-crash know-how.
    for (community, host) in &args.digests {
        println!(
            "digest {community}:{} {}",
            host.0,
            server.knowhow_digest_hex(*community, *host)
        );
    }
    flush();

    let started = Instant::now();
    let deadline = started + Duration::from_millis(args.max_runtime_ms);

    // A restarted worker (fresh ephemeral port) announces itself: its
    // hello carries the new listen address, which peers fold into their
    // routing tables in place of the dead one.
    if args.dial {
        server.dial_routes();
    }

    // ---- initiator: wait for routed peers ------------------------------
    if args.wait_peers > 0 {
        loop {
            server.dial_routes();
            if server.connected_remote_hosts() >= args.wait_peers {
                break;
            }
            if Instant::now() > deadline {
                eprintln!(
                    "owms-serve: timed out waiting for {} peers ({} connected)",
                    args.wait_peers,
                    server.connected_remote_hosts()
                );
                return ExitCode::from(3);
            }
            server.poll(Duration::from_millis(50));
        }
        println!("peers {}", server.connected_remote_hosts());
        flush();
    }

    // ---- serve ---------------------------------------------------------
    let is_initiator = !args.submits.is_empty();
    let mut submits = args.submits.into_iter();
    let mut pending: HashSet<ProblemId> = HashSet::new();
    // (community, initiator host) of every submitted problem, for report
    // lookup once it finishes.
    let mut submitted: Vec<(u64, HostId, ProblemId)> = Vec::new();
    let mut next_submit_at: Option<Instant> = Some(Instant::now());
    let mut exhausted = false;
    let exit_code = loop {
        if Instant::now() > deadline {
            eprintln!("owms-serve: max runtime exceeded");
            break ExitCode::from(2);
        }
        // Submit the next spec when its predecessor finished and the
        // inter-wave pause elapsed.
        if pending.is_empty() {
            if let Some(at) = next_submit_at {
                if Instant::now() >= at {
                    next_submit_at = None;
                    match submits.next() {
                        Some(sub) => {
                            let handle = server.submit(sub.community, sub.host, sub.spec);
                            println!("submitted {} {}", sub.raw, handle.id);
                            flush();
                            pending.insert(handle.id);
                            submitted.push((sub.community, sub.host, handle.id));
                        }
                        None => exhausted = true,
                    }
                }
            }
        }
        server.poll(Duration::from_millis(25));
        for (community, host, event) in server.drain_workflow_events() {
            match &event {
                WorkflowEvent::Completed { problem } | WorkflowEvent::Failed { problem, .. } => {
                    println!("event {community}:{} {event:?}", host.0);
                    if pending.remove(problem) && pending.is_empty() {
                        next_submit_at =
                            Some(Instant::now() + Duration::from_millis(args.pause_ms));
                    }
                }
                _ => println!("event {community}:{} {event:?}", host.0),
            }
        }
        flush();
        if is_initiator {
            if exhausted && pending.is_empty() {
                for (community, host, id) in &submitted {
                    if let Some(ws) = server.core(*community, *host).latest_attempt(*id) {
                        let mut assigns: Vec<String> = ws
                            .report
                            .assignments
                            .iter()
                            .map(|(task, host)| format!("{}={}", task.as_str(), host.0))
                            .collect();
                        assigns.sort();
                        println!("report {id} {:?} [{}]", ws.report.status, assigns.join(","));
                    }
                }
                server.broadcast_shutdown();
                // One more poll gives the writer threads a head start on
                // the shutdown frames (shutdown() below still drains).
                server.poll(Duration::from_millis(25));
                break ExitCode::SUCCESS;
            }
        } else if server.shutdown_requested() {
            break ExitCode::SUCCESS;
        }
    };

    // ---- graceful stop -------------------------------------------------
    for (community, host) in &args.digests {
        println!(
            "digest {community}:{} {}",
            host.0,
            server.knowhow_digest_hex(*community, *host)
        );
    }
    if args.print_metrics {
        let snapshot = server.scrape();
        println!("metrics {}", openwf_net::value_to_json(&snapshot));
    }
    if let Some(path) = &args.trace_jsonl {
        let events = obs.trace.snapshot();
        if let Err(err) = std::fs::write(path, to_jsonl(&events)) {
            eprintln!("owms-serve: trace export failed: {err}");
        }
    }
    let report = server.shutdown();
    println!(
        "done flushed={} synced={} sync_errors={}",
        report.flushed_conns, report.synced_cores, report.sync_errors
    );
    flush();
    exit_code
}
