//! Wall-clock to virtual-time mapping.
//!
//! The protocol core counts time in [`SimTime`] microseconds from an
//! arbitrary origin. The simulated drivers advance that clock by
//! discrete events; a socket driver lives on the machine's monotonic
//! clock instead, so it anchors `SimTime::ZERO` at construction and
//! reads elapsed wall time micro-for-micro. All servers of one process
//! (or one [`crate::TcpCommunityDriver`]) share a single anchor so
//! their cores agree on "now".

use std::time::{Duration, Instant};

use openwf_simnet::SimTime;

/// A shared monotonic anchor translating wall time into [`SimTime`].
///
/// `Copy`: handing a clock to another server copies the anchor, so every
/// copy reads the same timeline.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Anchors `SimTime::ZERO` at the current instant.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since the anchor, as virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// The wall instant at which `at` virtual time is (or was) reached —
    /// what a poll loop sleeps until to fire a timer due at `at`.
    pub fn instant_of(&self, at: SimTime) -> Instant {
        self.start + Duration::from_micros(at.as_micros())
    }

    /// How long until `at` is reached ([`Duration::ZERO`] if already
    /// past) — a ready-made `recv_timeout` bound.
    pub fn until(&self, at: SimTime) -> Duration {
        self.instant_of(at)
            .saturating_duration_since(Instant::now())
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_shared() {
        let clock = WallClock::new();
        let copy = clock;
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        let b = copy.now();
        assert!(b > a, "copies share the anchor and time advances");
    }

    #[test]
    fn until_saturates_for_past_deadlines() {
        let clock = WallClock::new();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(clock.until(SimTime::ZERO), Duration::ZERO);
        let far = SimTime::from_micros(u64::from(u32::MAX));
        assert!(clock.until(far) > Duration::from_secs(1));
    }
}
