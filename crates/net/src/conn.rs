//! Per-connection I/O: a blocking reader thread, a writer thread
//! draining a **bounded** outbound queue, and the backpressure contract
//! between them.
//!
//! The reactor core ([`crate::NetServer`]) is single-threaded; sockets
//! are not. Each accepted or dialed connection gets exactly two
//! threads:
//!
//! * the **reader** blocks in `read`, forwarding raw chunks to the
//!   server's event channel (framing is reassembled server-side by the
//!   per-connection [`openwf_wire::FrameDecoder`], so a chunk may end
//!   mid-varint, mid-name-table, anywhere);
//! * the **writer** blocks on the [`OutboundQueue`] condvar, popping
//!   complete frames and `write_all`-ing them to the socket.
//!
//! The queue is the backpressure boundary: it is bounded in both frame
//! count and bytes, [`OutboundQueue::push`] never blocks the reactor,
//! and a full queue is a *policy decision* surfaced to the caller
//! ([`PushError::Full`]) — the server's slow-peer policy disconnects
//! rather than buffer without bound or stall every other connection.
//! On graceful close the writer drains whatever was queued before
//! exiting, so joining it is the "outbound flushed" barrier — bounded
//! by a drain deadline, because a peer that stopped *reading* must not
//! hang shutdown (past the deadline the backlog is discarded and the
//! socket severed).
//!
//! Inbound is bounded symmetrically: the reader charges every chunk it
//! forwards against [`QueueCaps::max_rx_inflight_bytes`] and pauses at
//! the cap until the reactor credits processed chunks back
//! ([`ConnIo::rx_credit`]). A paused reader stops draining the kernel
//! receive buffer, so TCP flow control pushes back on the peer instead
//! of the reactor's event channel growing without bound.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a graceful close waits for the writer to drain the
/// outbound backlog before giving up and severing (see
/// [`ConnIo::close_graceful`]).
pub const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Identifies one live connection within a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Caps on one connection's queues, both directions.
#[derive(Clone, Copy, Debug)]
pub struct QueueCaps {
    /// Maximum queued outbound frames.
    pub max_frames: usize,
    /// Maximum queued outbound bytes (sum of frame lengths).
    pub max_bytes: usize,
    /// Maximum inbound bytes forwarded to the reactor but not yet
    /// processed; at the cap the reader pauses (and TCP flow control
    /// pushes back on the peer) until [`ConnIo::rx_credit`] frees room.
    pub max_rx_inflight_bytes: usize,
}

impl Default for QueueCaps {
    fn default() -> Self {
        QueueCaps {
            max_frames: 1024,
            max_bytes: 8 * 1024 * 1024,
            max_rx_inflight_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at one of its caps; the peer is not keeping up.
    Full,
    /// The queue was closed (connection tearing down).
    Closed,
}

#[derive(Default)]
struct QueueState {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    /// No further pushes; the writer exits once the queue drains.
    closed: bool,
    /// Drop queued frames instead of writing them (error teardown).
    discard: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    cv: Condvar,
}

fn lock_state(inner: &QueueInner) -> std::sync::MutexGuard<'_, QueueState> {
    // A poisoned lock means an I/O thread panicked mid-pop; the queue
    // holds plain data with no invariant a partial update could break.
    inner
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The bounded outbound frame queue shared by the reactor (producer)
/// and one writer thread (consumer).
#[derive(Clone)]
pub struct OutboundQueue {
    inner: Arc<QueueInner>,
    caps: QueueCaps,
}

impl std::fmt::Debug for OutboundQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutboundQueue")
            .field("depth", &self.depth())
            .field("caps", &self.caps)
            .finish()
    }
}

impl OutboundQueue {
    /// An empty queue with the given caps.
    pub fn new(caps: QueueCaps) -> Self {
        OutboundQueue {
            inner: Arc::new(QueueInner {
                state: Mutex::new(QueueState::default()),
                cv: Condvar::new(),
            }),
            caps,
        }
    }

    /// Enqueues one complete frame for the writer. Never blocks.
    /// Returns the queue depth (in frames) *after* the push, for the
    /// caller's depth histogram.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when either cap is hit (slow peer — caller
    /// decides the policy), [`PushError::Closed`] during teardown.
    pub fn push(&self, frame: Vec<u8>) -> Result<usize, PushError> {
        let mut state = lock_state(&self.inner);
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.frames.len() >= self.caps.max_frames
            || state.bytes + frame.len() > self.caps.max_bytes
        {
            return Err(PushError::Full);
        }
        state.bytes += frame.len();
        state.frames.push_back(frame);
        let depth = state.frames.len();
        drop(state);
        self.inner.cv.notify_one();
        Ok(depth)
    }

    /// Closes the queue. With `discard` false the writer drains what is
    /// already queued before exiting (graceful close); with `discard`
    /// true queued frames are dropped (error/slow-peer teardown).
    pub fn close(&self, discard: bool) {
        let mut state = lock_state(&self.inner);
        state.closed = true;
        if discard {
            state.discard = true;
            state.frames.clear();
            state.bytes = 0;
        }
        drop(state);
        self.inner.cv.notify_all();
    }

    /// Current depth in frames.
    pub fn depth(&self) -> usize {
        lock_state(&self.inner).frames.len()
    }

    /// Blocks until a frame is available (returning it) or the queue is
    /// closed-and-drained (returning `None`). Writer-thread side.
    fn pop_blocking(&self) -> Option<Vec<u8>> {
        let mut state = lock_state(&self.inner);
        loop {
            if state.discard {
                return None;
            }
            if let Some(frame) = state.frames.pop_front() {
                state.bytes -= frame.len();
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Raw input from the I/O threads, delivered to the reactor's channel.
#[derive(Debug)]
pub enum IoEvent {
    /// The listener thread accepted an inbound connection; the reactor
    /// registers it (spawning its I/O threads) on the next poll.
    Accepted {
        /// The accepted socket.
        stream: TcpStream,
        /// The remote (ephemeral) address, for diagnostics.
        peer: std::net::SocketAddr,
    },
    /// A chunk of bytes read from the socket (arbitrary segmentation).
    Bytes {
        /// Source connection.
        conn: ConnId,
        /// The raw chunk.
        bytes: Vec<u8>,
    },
    /// The connection reached EOF or errored; no more bytes will come.
    Closed {
        /// The finished connection.
        conn: ConnId,
    },
}

/// The per-connection I/O bundle the server keeps.
#[derive(Debug)]
pub struct ConnIo {
    /// Outbound frames (reactor pushes, writer drains).
    pub queue: OutboundQueue,
    /// A handle onto the socket for `shutdown` (threads own clones).
    pub stream: TcpStream,
    writer: Option<JoinHandle<()>>,
    /// Inbound bytes forwarded but not yet credited back (shared with
    /// the reader, which pauses at the cap).
    rx_inflight: Arc<AtomicUsize>,
    /// Set on teardown so a reader paused at the inbound cap exits
    /// instead of waiting for credits that will never come.
    closed: Arc<AtomicBool>,
}

impl ConnIo {
    /// Severs the connection immediately: queued frames are dropped and
    /// both socket directions are shut down, which unblocks the reader
    /// (EOF) and lets it report [`IoEvent::Closed`].
    pub fn sever(&mut self) {
        self.closed.store(true, Ordering::Release);
        self.queue.close(true);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.join_writer();
    }

    /// Graceful close: lets the writer drain everything already queued,
    /// joins it (the flush barrier), then shuts the socket down. The
    /// drain is bounded by [`DRAIN_DEADLINE`]: a peer that stopped
    /// reading (more queued than its socket buffers absorb) would block
    /// the writer's `write_all` forever, so past the deadline the
    /// backlog is discarded and the socket severed instead of hanging
    /// the caller — typically `NetServer::shutdown`.
    pub fn close_graceful(&mut self) {
        self.close_graceful_within(DRAIN_DEADLINE);
    }

    /// [`ConnIo::close_graceful`] with an explicit drain deadline.
    pub fn close_graceful_within(&mut self, deadline: Duration) {
        self.queue.close(false);
        self.closed.store(true, Ordering::Release);
        let drained = self.wait_writer_finished(deadline);
        if !drained {
            // Abandon the drain: drop the backlog and shut the socket
            // down, which errors the blocked write and ends the writer.
            self.queue.close(true);
            let _ = self.stream.shutdown(Shutdown::Both);
        }
        self.join_writer();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Returns `n` inbound bytes to the reader's budget once the
    /// reactor has processed them.
    pub fn rx_credit(&self, n: usize) {
        self.rx_inflight.fetch_sub(n, Ordering::AcqRel);
    }

    /// Polls the writer thread up to `deadline`; `std` has no timed
    /// join, and the writer may be blocked in `write_all` on a peer
    /// that stopped reading.
    fn wait_writer_finished(&self, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        loop {
            match &self.writer {
                None => return true,
                Some(h) if h.is_finished() => return true,
                Some(_) if Instant::now() >= until => return false,
                Some(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
    }

    fn join_writer(&mut self) {
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ConnIo {
    fn drop(&mut self) {
        self.sever();
    }
}

/// Spawns the reader and writer threads for `stream` and returns the
/// server-side bundle. `events` receives every inbound chunk and the
/// final [`IoEvent::Closed`]; the reader exits on its own when the
/// socket closes or the server (receiver) goes away.
///
/// # Errors
///
/// Fails when the stream cannot be cloned for the second thread.
pub fn spawn_io(
    stream: TcpStream,
    id: ConnId,
    caps: QueueCaps,
    events: Sender<IoEvent>,
) -> std::io::Result<ConnIo> {
    let queue = OutboundQueue::new(caps);
    let rx_inflight = Arc::new(AtomicUsize::new(0));
    let closed = Arc::new(AtomicBool::new(false));
    let writer_stream = stream.try_clone()?;
    let reader_stream = stream.try_clone()?;

    let writer_queue = queue.clone();
    let writer = std::thread::Builder::new()
        .name(format!("owms-net-writer-{}", id.0))
        .spawn(move || {
            let mut stream = writer_stream;
            while let Some(frame) = writer_queue.pop_blocking() {
                if stream.write_all(&frame).is_err() {
                    // The peer is gone; the reader will observe the same
                    // failure and report Closed. Discard the backlog.
                    writer_queue.close(true);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            let _ = stream.flush();
        })?;

    let reader_inflight = Arc::clone(&rx_inflight);
    let reader_closed = Arc::clone(&closed);
    std::thread::Builder::new()
        .name(format!("owms-net-reader-{}", id.0))
        .spawn(move || {
            let mut stream = reader_stream;
            let mut buf = vec![0u8; 16 * 1024];
            loop {
                // Inbound backpressure: at the in-flight cap, stop
                // draining the kernel buffer until the reactor credits
                // processed chunks back — TCP flow control then pushes
                // back on the peer instead of reactor memory growing.
                while reader_inflight.load(Ordering::Acquire) >= caps.max_rx_inflight_bytes {
                    if reader_closed.load(Ordering::Acquire) {
                        return; // severed while paused; credits stop coming
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        let _ = events.send(IoEvent::Closed { conn: id });
                        return;
                    }
                    Ok(n) => {
                        reader_inflight.fetch_add(n, Ordering::AcqRel);
                        if events
                            .send(IoEvent::Bytes {
                                conn: id,
                                bytes: buf[..n].to_vec(),
                            })
                            .is_err()
                        {
                            return; // server gone; stop reading
                        }
                    }
                }
            }
        })?;

    Ok(ConnIo {
        queue,
        stream,
        writer: Some(writer),
        rx_inflight,
        closed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::mpsc::channel;

    #[test]
    fn queue_enforces_both_caps_and_close_semantics() {
        let q = OutboundQueue::new(QueueCaps {
            max_frames: 2,
            max_bytes: 10,
            ..QueueCaps::default()
        });
        assert_eq!(q.push(vec![0; 4]), Ok(1));
        assert_eq!(q.push(vec![0; 4]), Ok(2));
        assert_eq!(q.push(vec![0; 1]), Err(PushError::Full), "frame cap");
        assert_eq!(q.pop_blocking().unwrap().len(), 4);
        assert_eq!(q.push(vec![0; 9]), Err(PushError::Full), "byte cap");
        assert_eq!(q.push(vec![0; 2]), Ok(2));
        q.close(false);
        assert_eq!(q.push(vec![0; 1]), Err(PushError::Closed));
        // Drain semantics: both queued frames still come out.
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn discard_close_drops_the_backlog() {
        let q = OutboundQueue::new(QueueCaps::default());
        q.push(vec![1, 2, 3]).unwrap();
        q.close(true);
        assert!(q.pop_blocking().is_none());
        assert_eq!(q.depth(), 0);
    }

    /// Graceful close flushes every queued frame onto the socket before
    /// the writer exits — the serving path's drop-flush guarantee.
    #[test]
    fn graceful_close_drains_queued_frames_to_the_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let (tx, rx) = channel();
        let mut io = spawn_io(server_side, ConnId(1), QueueCaps::default(), tx).unwrap();
        for i in 0..50u8 {
            io.queue.push(vec![i; 100]).unwrap();
        }
        io.close_graceful();

        let mut got = Vec::new();
        let mut client = client;
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), 50 * 100, "every queued byte arrived");
        drop(rx);
    }

    /// A peer that stops *reading* cannot hang graceful close: once the
    /// drain deadline passes, the backlog is discarded and the close
    /// returns instead of blocking on the writer's stalled `write_all`.
    #[test]
    fn graceful_close_gives_up_on_a_peer_that_stops_reading() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let (tx, _rx) = channel();
        let mut io = spawn_io(server_side, ConnId(3), QueueCaps::default(), tx).unwrap();
        // Queue far more than loopback socket buffers absorb; the
        // client never reads a byte, so the writer wedges mid-drain.
        let mut queued = 0usize;
        while queued < 8 * 1024 * 1024 {
            match io.queue.push(vec![0u8; 64 * 1024]) {
                Ok(_) => queued += 64 * 1024,
                Err(PushError::Full) => break,
                Err(PushError::Closed) => panic!("queue closed early"),
            }
        }
        let started = std::time::Instant::now();
        io.close_graceful_within(Duration::from_millis(300));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "bounded drain must not hang on an unread backlog"
        );
        drop(client);
    }

    /// The reader pauses at the inbound in-flight cap and resumes when
    /// the reactor credits processed bytes back — the inbound
    /// counterpart of the bounded outbound queue.
    #[test]
    fn reader_pauses_at_the_inbound_cap_until_credited() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let caps = QueueCaps {
            max_rx_inflight_bytes: 4 * 1024,
            ..QueueCaps::default()
        };
        let (tx, rx) = channel();
        let mut io = spawn_io(server_side, ConnId(5), caps, tx).unwrap();
        client.write_all(&vec![0u8; 256 * 1024]).unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(300));

        // Without credits the reader forwards at most cap + one read
        // chunk (the cap check precedes each read of up to 16 KiB).
        let mut first = 0usize;
        while let Ok(ev) = rx.try_recv() {
            if let IoEvent::Bytes { bytes, .. } = ev {
                first += bytes.len();
            }
        }
        assert!(first > 0, "some bytes must flow");
        assert!(
            first <= 4 * 1024 + 16 * 1024,
            "reader must pause at the inbound cap, forwarded {first}"
        );

        // Crediting the processed bytes resumes the flow.
        io.rx_credit(first);
        std::thread::sleep(Duration::from_millis(300));
        let mut second = 0usize;
        while let Ok(ev) = rx.try_recv() {
            if let IoEvent::Bytes { bytes, .. } = ev {
                second += bytes.len();
            }
        }
        assert!(second > 0, "credits must unpause the reader");
        io.sever();
    }

    #[test]
    fn reader_reports_closed_on_peer_disconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let (tx, rx) = channel();
        let mut io = spawn_io(server_side, ConnId(7), QueueCaps::default(), tx).unwrap();
        client.shutdown(Shutdown::Both).unwrap();
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match rx.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(IoEvent::Closed { conn }) => {
                    assert_eq!(conn, ConnId(7));
                    break;
                }
                Ok(_) => {}
                Err(_) if std::time::Instant::now() > deadline => {
                    panic!("reader never reported Closed")
                }
                Err(_) => {}
            }
        }
        io.sever();
    }
}
