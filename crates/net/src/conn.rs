//! Per-connection I/O: a blocking reader thread, a writer thread
//! draining a **bounded** outbound queue, and the backpressure contract
//! between them.
//!
//! The reactor core ([`crate::NetServer`]) is single-threaded; sockets
//! are not. Each accepted or dialed connection gets exactly two
//! threads:
//!
//! * the **reader** blocks in `read`, forwarding raw chunks to the
//!   server's event channel (framing is reassembled server-side by the
//!   per-connection [`openwf_wire::FrameDecoder`], so a chunk may end
//!   mid-varint, mid-name-table, anywhere);
//! * the **writer** blocks on the [`OutboundQueue`] condvar, popping
//!   complete frames and `write_all`-ing them to the socket.
//!
//! The queue is the backpressure boundary: it is bounded in both frame
//! count and bytes, [`OutboundQueue::push`] never blocks the reactor,
//! and a full queue is a *policy decision* surfaced to the caller
//! ([`PushError::Full`]) — the server's slow-peer policy disconnects
//! rather than buffer without bound or stall every other connection.
//! On graceful close the writer drains whatever was queued before
//! exiting, so joining it is the "outbound flushed" barrier.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifies one live connection within a server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Caps on one connection's outbound queue.
#[derive(Clone, Copy, Debug)]
pub struct QueueCaps {
    /// Maximum queued frames.
    pub max_frames: usize,
    /// Maximum queued bytes (sum of frame lengths).
    pub max_bytes: usize,
}

impl Default for QueueCaps {
    fn default() -> Self {
        QueueCaps {
            max_frames: 1024,
            max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at one of its caps; the peer is not keeping up.
    Full,
    /// The queue was closed (connection tearing down).
    Closed,
}

#[derive(Default)]
struct QueueState {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    /// No further pushes; the writer exits once the queue drains.
    closed: bool,
    /// Drop queued frames instead of writing them (error teardown).
    discard: bool,
}

struct QueueInner {
    state: Mutex<QueueState>,
    cv: Condvar,
}

fn lock_state(inner: &QueueInner) -> std::sync::MutexGuard<'_, QueueState> {
    // A poisoned lock means an I/O thread panicked mid-pop; the queue
    // holds plain data with no invariant a partial update could break.
    inner
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The bounded outbound frame queue shared by the reactor (producer)
/// and one writer thread (consumer).
#[derive(Clone)]
pub struct OutboundQueue {
    inner: Arc<QueueInner>,
    caps: QueueCaps,
}

impl std::fmt::Debug for OutboundQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutboundQueue")
            .field("depth", &self.depth())
            .field("caps", &self.caps)
            .finish()
    }
}

impl OutboundQueue {
    /// An empty queue with the given caps.
    pub fn new(caps: QueueCaps) -> Self {
        OutboundQueue {
            inner: Arc::new(QueueInner {
                state: Mutex::new(QueueState::default()),
                cv: Condvar::new(),
            }),
            caps,
        }
    }

    /// Enqueues one complete frame for the writer. Never blocks.
    /// Returns the queue depth (in frames) *after* the push, for the
    /// caller's depth histogram.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when either cap is hit (slow peer — caller
    /// decides the policy), [`PushError::Closed`] during teardown.
    pub fn push(&self, frame: Vec<u8>) -> Result<usize, PushError> {
        let mut state = lock_state(&self.inner);
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.frames.len() >= self.caps.max_frames
            || state.bytes + frame.len() > self.caps.max_bytes
        {
            return Err(PushError::Full);
        }
        state.bytes += frame.len();
        state.frames.push_back(frame);
        let depth = state.frames.len();
        drop(state);
        self.inner.cv.notify_one();
        Ok(depth)
    }

    /// Closes the queue. With `discard` false the writer drains what is
    /// already queued before exiting (graceful close); with `discard`
    /// true queued frames are dropped (error/slow-peer teardown).
    pub fn close(&self, discard: bool) {
        let mut state = lock_state(&self.inner);
        state.closed = true;
        if discard {
            state.discard = true;
            state.frames.clear();
            state.bytes = 0;
        }
        drop(state);
        self.inner.cv.notify_all();
    }

    /// Current depth in frames.
    pub fn depth(&self) -> usize {
        lock_state(&self.inner).frames.len()
    }

    /// Blocks until a frame is available (returning it) or the queue is
    /// closed-and-drained (returning `None`). Writer-thread side.
    fn pop_blocking(&self) -> Option<Vec<u8>> {
        let mut state = lock_state(&self.inner);
        loop {
            if state.discard {
                return None;
            }
            if let Some(frame) = state.frames.pop_front() {
                state.bytes -= frame.len();
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Raw input from the I/O threads, delivered to the reactor's channel.
#[derive(Debug)]
pub enum IoEvent {
    /// The listener thread accepted an inbound connection; the reactor
    /// registers it (spawning its I/O threads) on the next poll.
    Accepted {
        /// The accepted socket.
        stream: TcpStream,
        /// The remote (ephemeral) address, for diagnostics.
        peer: std::net::SocketAddr,
    },
    /// A chunk of bytes read from the socket (arbitrary segmentation).
    Bytes {
        /// Source connection.
        conn: ConnId,
        /// The raw chunk.
        bytes: Vec<u8>,
    },
    /// The connection reached EOF or errored; no more bytes will come.
    Closed {
        /// The finished connection.
        conn: ConnId,
    },
}

/// The per-connection I/O bundle the server keeps.
#[derive(Debug)]
pub struct ConnIo {
    /// Outbound frames (reactor pushes, writer drains).
    pub queue: OutboundQueue,
    /// A handle onto the socket for `shutdown` (threads own clones).
    pub stream: TcpStream,
    writer: Option<JoinHandle<()>>,
}

impl ConnIo {
    /// Severs the connection immediately: queued frames are dropped and
    /// both socket directions are shut down, which unblocks the reader
    /// (EOF) and lets it report [`IoEvent::Closed`].
    pub fn sever(&mut self) {
        self.queue.close(true);
        let _ = self.stream.shutdown(Shutdown::Both);
        self.join_writer();
    }

    /// Graceful close: lets the writer drain everything already queued,
    /// joins it (the flush barrier), then shuts the socket down.
    pub fn close_graceful(&mut self) {
        self.queue.close(false);
        self.join_writer();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn join_writer(&mut self) {
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ConnIo {
    fn drop(&mut self) {
        self.sever();
    }
}

/// Spawns the reader and writer threads for `stream` and returns the
/// server-side bundle. `events` receives every inbound chunk and the
/// final [`IoEvent::Closed`]; the reader exits on its own when the
/// socket closes or the server (receiver) goes away.
///
/// # Errors
///
/// Fails when the stream cannot be cloned for the second thread.
pub fn spawn_io(
    stream: TcpStream,
    id: ConnId,
    caps: QueueCaps,
    events: Sender<IoEvent>,
) -> std::io::Result<ConnIo> {
    let queue = OutboundQueue::new(caps);
    let writer_stream = stream.try_clone()?;
    let reader_stream = stream.try_clone()?;

    let writer_queue = queue.clone();
    let writer = std::thread::Builder::new()
        .name(format!("owms-net-writer-{}", id.0))
        .spawn(move || {
            let mut stream = writer_stream;
            while let Some(frame) = writer_queue.pop_blocking() {
                if stream.write_all(&frame).is_err() {
                    // The peer is gone; the reader will observe the same
                    // failure and report Closed. Discard the backlog.
                    writer_queue.close(true);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            let _ = stream.flush();
        })?;

    std::thread::Builder::new()
        .name(format!("owms-net-reader-{}", id.0))
        .spawn(move || {
            let mut stream = reader_stream;
            let mut buf = vec![0u8; 16 * 1024];
            loop {
                match stream.read(&mut buf) {
                    Ok(0) | Err(_) => {
                        let _ = events.send(IoEvent::Closed { conn: id });
                        return;
                    }
                    Ok(n) => {
                        if events
                            .send(IoEvent::Bytes {
                                conn: id,
                                bytes: buf[..n].to_vec(),
                            })
                            .is_err()
                        {
                            return; // server gone; stop reading
                        }
                    }
                }
            }
        })?;

    Ok(ConnIo {
        queue,
        stream,
        writer: Some(writer),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::mpsc::channel;

    #[test]
    fn queue_enforces_both_caps_and_close_semantics() {
        let q = OutboundQueue::new(QueueCaps {
            max_frames: 2,
            max_bytes: 10,
        });
        assert_eq!(q.push(vec![0; 4]), Ok(1));
        assert_eq!(q.push(vec![0; 4]), Ok(2));
        assert_eq!(q.push(vec![0; 1]), Err(PushError::Full), "frame cap");
        assert_eq!(q.pop_blocking().unwrap().len(), 4);
        assert_eq!(q.push(vec![0; 9]), Err(PushError::Full), "byte cap");
        assert_eq!(q.push(vec![0; 2]), Ok(2));
        q.close(false);
        assert_eq!(q.push(vec![0; 1]), Err(PushError::Closed));
        // Drain semantics: both queued frames still come out.
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_some());
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn discard_close_drops_the_backlog() {
        let q = OutboundQueue::new(QueueCaps::default());
        q.push(vec![1, 2, 3]).unwrap();
        q.close(true);
        assert!(q.pop_blocking().is_none());
        assert_eq!(q.depth(), 0);
    }

    /// Graceful close flushes every queued frame onto the socket before
    /// the writer exits — the serving path's drop-flush guarantee.
    #[test]
    fn graceful_close_drains_queued_frames_to_the_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let (tx, rx) = channel();
        let mut io = spawn_io(server_side, ConnId(1), QueueCaps::default(), tx).unwrap();
        for i in 0..50u8 {
            io.queue.push(vec![i; 100]).unwrap();
        }
        io.close_graceful();

        let mut got = Vec::new();
        let mut client = client;
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got.len(), 50 * 100, "every queued byte arrived");
        drop(rx);
    }

    #[test]
    fn reader_reports_closed_on_peer_disconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let (tx, rx) = channel();
        let mut io = spawn_io(server_side, ConnId(7), QueueCaps::default(), tx).unwrap();
        client.shutdown(Shutdown::Both).unwrap();
        drop(client);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            match rx.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(IoEvent::Closed { conn }) => {
                    assert_eq!(conn, ConnId(7));
                    break;
                }
                Ok(_) => {}
                Err(_) if std::time::Instant::now() > deadline => {
                    panic!("reader never reported Closed")
                }
                Err(_) => {}
            }
        }
        io.sever();
    }
}
