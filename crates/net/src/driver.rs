//! The third [`Driver`]: a whole community over real TCP.
//!
//! [`TcpCommunityDriver`] gives every host its **own** [`NetServer`] —
//! own listener, own port, own reactor state — inside one process, with
//! a full routing mesh over `127.0.0.1`. Every protocol message crosses
//! a real socket as encoded wire bytes: kernel buffering, arbitrary
//! segmentation, genuine reader/writer threads. The cores cannot tell
//! this transport from a distributed deployment, which is the point —
//! it is the same reactor `owms-serve` runs, driven through the same
//! [`Driver`] surface as [`openwf_runtime::SimDriver`] and
//! [`openwf_runtime::LoopbackBytesDriver`], so any scenario written
//! against the trait runs unchanged on real I/O.
//!
//! # Quiescence on a wall clock
//!
//! The simulated drivers know exactly when nothing remains. A socket
//! driver cannot: silence might be in-flight bytes. [`Driver::step`]
//! therefore reports quiescence only after `idle_grace` of continuous
//! silence **and** no core timer due within `timer_horizon`. The
//! horizon matters: [`openwf_runtime::RuntimeParams`] defaults include
//! a 24-hour execution watchdog, which must not keep a wall-clock
//! driver alive — a wedged run stops after the grace period and the
//! caller reads the non-terminal report. Timers *within* the horizon
//! (round timeouts, bid patience) are waited for and fired, which is
//! how a silent peer's timeout drives repair instead of a wedge.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use openwf_obs::Obs;
use openwf_runtime::{Driver, HostConfig, HostCore, ProblemHandle, RuntimeParams, WorkflowEvent};
use openwf_simnet::{HostId, SimTime};

use crate::clock::WallClock;
use crate::server::{NetServer, ServerConfig, ShutdownReport};

/// The community id a [`TcpCommunityDriver`] serves (it hosts exactly
/// one community).
pub const DRIVER_COMMUNITY: u64 = 0;

/// A community of [`HostCore`]s cooperating over real TCP sockets.
pub struct TcpCommunityDriver {
    servers: Vec<NetServer>,
    clock: WallClock,
    idle_grace: Duration,
    timer_horizon: Duration,
    last_activity: Instant,
}

impl TcpCommunityDriver {
    /// Builds one server per host config, all listening on ephemeral
    /// `127.0.0.1` ports, fully route-meshed, sharing one clock anchor
    /// and one observability registry.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn build(params: RuntimeParams, configs: Vec<HostConfig>) -> std::io::Result<Self> {
        let clock = WallClock::new();
        let obs = Obs::enabled();
        let n = configs.len();
        let mut servers = Vec::with_capacity(n);
        for (i, config) in configs.into_iter().enumerate() {
            let mut server = NetServer::new(ServerConfig {
                name: format!("tcp-driver-{i}"),
                obs: obs.clone(),
                clock,
                ..ServerConfig::default()
            })?;
            server.add_core(DRIVER_COMMUNITY, HostId(i as u32), config, params.clone());
            servers.push(server);
        }
        let addrs: Vec<SocketAddr> = servers
            .iter()
            .map(|s| s.listen_addr().expect("driver servers always listen"))
            .collect();
        let hosts: Vec<HostId> = (0..n as u32).map(HostId).collect();
        for (i, server) in servers.iter_mut().enumerate() {
            server.set_community(DRIVER_COMMUNITY, hosts.clone());
            for (j, addr) in addrs.iter().enumerate() {
                if i != j {
                    server.add_route(DRIVER_COMMUNITY, HostId(j as u32), *addr);
                }
            }
        }
        Ok(TcpCommunityDriver {
            servers,
            clock,
            idle_grace: Duration::from_millis(200),
            timer_horizon: Duration::from_secs(2),
            last_activity: Instant::now(),
        })
    }

    /// Overrides the quiescence tuning (tests shortening a wedge wait).
    pub fn set_quiescence(&mut self, idle_grace: Duration, timer_horizon: Duration) {
        self.idle_grace = idle_grace;
        self.timer_horizon = timer_horizon;
    }

    /// The shared observability registry (`net.*` transport metrics of
    /// every server; core metrics if configs enabled them).
    pub fn obs(&self) -> &Obs {
        self.servers[0].obs()
    }

    /// One host's reactor, for transport-level inspection.
    pub fn server(&self, id: HostId) -> &NetServer {
        &self.servers[id.index()]
    }

    /// Mutable access to one host's reactor (scrapes, digests).
    pub fn server_mut(&mut self, id: HostId) -> &mut NetServer {
        &mut self.servers[id.index()]
    }

    /// Drains every server's workflow events, tagged by emitting host.
    pub fn drain_events(&mut self) -> Vec<(HostId, WorkflowEvent)> {
        self.servers
            .iter_mut()
            .flat_map(|s| {
                s.drain_workflow_events()
                    .into_iter()
                    .map(|(_, host, ev)| (host, ev))
            })
            .collect()
    }

    /// Gracefully stops every server: drains outbound queues, syncs
    /// durable stores, publishes final metrics.
    pub fn shutdown(self) -> Vec<ShutdownReport> {
        self.servers.into_iter().map(NetServer::shutdown).collect()
    }
}

impl std::fmt::Debug for TcpCommunityDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpCommunityDriver")
            .field("hosts", &self.servers.len())
            .finish()
    }
}

impl Driver for TcpCommunityDriver {
    fn hosts(&self) -> Vec<HostId> {
        (0..self.servers.len() as u32).map(HostId).collect()
    }

    fn core(&self, id: HostId) -> &HostCore {
        self.servers[id.index()].core(DRIVER_COMMUNITY, id)
    }

    fn core_mut(&mut self, id: HostId) -> &mut HostCore {
        self.servers[id.index()].core_mut(DRIVER_COMMUNITY, id)
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn submit(&mut self, initiator: HostId, spec: openwf_core::Spec) -> ProblemHandle {
        let handle = self.servers[initiator.index()].submit(DRIVER_COMMUNITY, initiator, spec);
        self.last_activity = Instant::now();
        handle
    }

    fn step(&mut self) -> bool {
        let mut any = false;
        for server in &mut self.servers {
            any |= server.poll(Duration::from_millis(1));
        }
        if any {
            self.last_activity = Instant::now();
            return true;
        }
        // Silent. A timer inside the horizon is pending progress: sleep
        // toward it and stay live so the next poll fires it.
        if let Some(due) = self
            .servers
            .iter()
            .filter_map(NetServer::next_timer_due)
            .min()
        {
            let until = self.clock.until(due);
            if until <= self.timer_horizon {
                std::thread::sleep(until.min(Duration::from_millis(20)));
                return true;
            }
        }
        // No near timer, nothing moving: quiesce once the grace elapses
        // (in-flight bytes would have surfaced well within it).
        self.last_activity.elapsed() < self.idle_grace
    }
}
