//! Rendering a serde-shim [`Value`] tree as JSON text — what a metrics
//! scrape prints. The workspace's serde shim carries no serializer
//! backends, so the few lines of emission live here.

use serde::Value;

/// Renders `value` as compact JSON.
pub fn value_to_json(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match key {
                    Value::Str(s) => write_string(s, out),
                    other => write_string(&value_to_json(other), out),
                }
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_as_valid_json() {
        let v = Value::Map(vec![
            (
                Value::Str("counters".into()),
                Value::Map(vec![(Value::Str("net.rx\"x\"".into()), Value::U64(3))]),
            ),
            (
                Value::Str("seq".into()),
                Value::Seq(vec![Value::I64(-1), Value::Bool(true), Value::Unit]),
            ),
        ]);
        let json = value_to_json(&v);
        assert_eq!(
            json,
            r#"{"counters":{"net.rx\"x\"":3},"seq":[-1,true,null]}"#
        );
        openwf_obs::validate_json(&json).expect("valid json");
    }
}
