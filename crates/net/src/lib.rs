//! # openwf-net — the real-I/O serving tier
//!
//! Everything below this crate is sans-io: the protocol cores
//! ([`openwf_runtime::HostCore`]) return effect queues and never touch
//! a socket, and the two simulated drivers replay them under virtual
//! time. This crate is the third transport — **real TCP** — built from
//! `std::net` only (the workspace builds offline; no async runtime, no
//! poll library):
//!
//! * [`NetServer`] — one process's reactor: many communities' cores,
//!   one listener, per-connection reader/writer threads around bounded
//!   outbound queues, all protocol logic single-threaded in
//!   [`NetServer::poll`]. Frames cross sockets length-prefixed and are
//!   reassembled by the streaming [`openwf_wire::FrameDecoder`];
//!   [`openwf_wire::frame_tag`] routes them. Timer-driven progress
//!   comes from [`openwf_runtime::HostCore::next_timer_due`] bounding
//!   every socket wait, with [`openwf_runtime::HostCore::tick`] firing
//!   matured timeouts — a silent peer cannot wedge a workflow.
//! * [`TcpCommunityDriver`] — the [`openwf_runtime::Driver`] trait over
//!   that reactor: one server per host, meshed over `127.0.0.1`, so any
//!   scenario written against the trait runs unchanged on real sockets.
//! * `owms-serve` — the standalone community server binary on top of
//!   [`NetServer`]: XML host configs, durable fragment stores, metrics
//!   scrapes, trace export, graceful shutdown. Multiple OS processes
//!   running it construct one workflow over real wires (the
//!   `serve_process` integration test proves digest-identical know-how
//!   against a simulator run of the same scenario).
//!
//! Transport metrics land in the crate's [`openwf_obs`] registry under
//! `net.*` (`net.rx_frames`, `net.tx_bytes`, `net.conn_slow_drops`,
//! `net.tx_queue_depth`, …); scrape with [`NetServer::scrape`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod conn;
pub mod json;
pub mod proto;
pub mod server;

mod driver;

pub use clock::WallClock;
pub use conn::{ConnId, IoEvent, OutboundQueue, PushError, QueueCaps};
pub use driver::{TcpCommunityDriver, DRIVER_COMMUNITY};
pub use json::value_to_json;
pub use proto::{
    Envelope, Hello, NET_PROTO_VERSION, TAG_NET_ENVELOPE, TAG_NET_GOODBYE, TAG_NET_HELLO,
    TAG_NET_SHUTDOWN,
};
pub use server::{NetServer, ServerConfig, ShutdownReport};
