//! The transport-level frame vocabulary of the serving tier.
//!
//! Everything that crosses a socket is an `openwf-wire` length-prefixed
//! frame, so one streaming [`openwf_wire::FrameDecoder`] per connection
//! reassembles arbitrary TCP segmentation and
//! [`openwf_wire::frame_tag`] routes each complete frame by its tag
//! byte. The serving tier adds four tags on top of the protocol's
//! `TAG_MSG`/`TAG_FRAGMENT`/`TAG_SPEC`:
//!
//! * [`TAG_NET_HELLO`] — connection handshake: each side announces its
//!   process name, its *listen* address (so the acceptor can fold the
//!   ephemeral socket into its routing table), and the set of
//!   `(community, host)` pairs it serves.
//! * [`TAG_NET_ENVELOPE`] — one routed protocol frame: community,
//!   source host, destination host, an optional trace-correlation id,
//!   and the complete inner frame as the payload tail. The inner frame
//!   is routed by **its** tag: `TAG_MSG` feeds
//!   `HostCore::handle_frame`, `TAG_FRAGMENT` feeds the destination's
//!   fragment store (operator ingest), `TAG_SPEC` submits a problem.
//! * [`TAG_NET_GOODBYE`] — graceful connection close announcement.
//! * [`TAG_NET_SHUTDOWN`] — asks the receiving *process* to shut down
//!   cleanly (sync durable stores, drain outbound queues). Emitted by
//!   an initiator that owns the run, e.g. the multi-process example.
//!
//! None of these frames put anything in the wire name table — transport
//! metadata must never charge a peer's vocabulary budget — so their
//! name tables are empty and decoding them cannot intern a single name.

use openwf_simnet::HostId;
use openwf_wire::{FrameEncoder, PayloadReader, WireError};

/// Handshake frame tag (see module docs).
pub const TAG_NET_HELLO: u8 = 0x10;
/// Routed-protocol-frame envelope tag.
pub const TAG_NET_ENVELOPE: u8 = 0x11;
/// Graceful connection close tag.
pub const TAG_NET_GOODBYE: u8 = 0x12;
/// Process shutdown request tag.
pub const TAG_NET_SHUTDOWN: u8 = 0x13;

/// Version of the *net-level* handshake (independent of the wire format
/// version, which every frame already carries).
pub const NET_PROTO_VERSION: u64 = 1;

/// A decoded [`TAG_NET_HELLO`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Handshake version the peer speaks.
    pub proto: u64,
    /// Free-form process name (diagnostics only).
    pub name: String,
    /// The peer's *listen* address (`"host:port"`), or empty when the
    /// peer does not accept connections (a pure client).
    pub listen: String,
    /// Every `(community, host)` the peer serves.
    pub hosts: Vec<(u64, HostId)>,
}

/// Encodes a [`TAG_NET_HELLO`] as a complete frame onto `out`.
pub fn encode_hello(hello: &Hello, out: &mut Vec<u8>) {
    let mut enc = FrameEncoder::new(TAG_NET_HELLO);
    enc.varint(hello.proto);
    enc.inline_str(&hello.name);
    enc.inline_str(&hello.listen);
    enc.varint(hello.hosts.len() as u64);
    for (community, host) in &hello.hosts {
        enc.varint(*community);
        enc.varint(u64::from(host.0));
    }
    enc.finish(out);
}

/// Decodes a hello payload from an already-routed frame reader.
///
/// # Errors
///
/// Any [`WireError`] on corrupt input; never panics.
pub fn read_hello(r: &mut PayloadReader<'_, '_>) -> Result<Hello, WireError> {
    let proto = r.varint()?;
    let name = r.inline_str()?.to_string();
    let listen = r.inline_str()?.to_string();
    let raw_count = r.varint()?;
    let count = r.guard_count(raw_count, 2)?;
    let mut hosts = Vec::with_capacity(count);
    for _ in 0..count {
        let community = r.varint()?;
        let host = r.varint()?;
        if host > u64::from(u32::MAX) {
            return Err(WireError::Malformed("host id out of range"));
        }
        hosts.push((community, HostId(host as u32)));
    }
    r.expect_end()?;
    Ok(Hello {
        proto,
        name,
        listen,
        hosts,
    })
}

/// A decoded [`TAG_NET_ENVELOPE`] header; `inner` borrows the outer
/// frame's payload tail and is itself a complete wire frame.
#[derive(Debug, PartialEq, Eq)]
pub struct Envelope<'a> {
    /// Community the enclosed traffic belongs to.
    pub community: u64,
    /// Sending host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Trace-correlation id, when the sender propagated one.
    pub trace: Option<u64>,
    /// The complete inner frame (route by [`openwf_wire::frame_tag`]).
    pub inner: &'a [u8],
}

/// Encodes a routed envelope as a complete frame onto `out`. The inner
/// frame bytes are embedded verbatim as the payload tail.
pub fn encode_envelope(
    community: u64,
    from: HostId,
    to: HostId,
    trace: Option<u64>,
    inner: &[u8],
    out: &mut Vec<u8>,
) {
    let mut enc = FrameEncoder::new(TAG_NET_ENVELOPE);
    enc.varint(community);
    enc.varint(u64::from(from.0));
    enc.varint(u64::from(to.0));
    match trace {
        Some(id) => {
            enc.byte(1);
            enc.varint(id);
        }
        None => enc.byte(0),
    }
    enc.bytes(inner);
    enc.finish(out);
}

/// Decodes an envelope header (and borrows the inner frame) from an
/// already-routed frame reader.
///
/// # Errors
///
/// Any [`WireError`] on corrupt input; never panics.
pub fn read_envelope<'a>(r: &mut PayloadReader<'a, '_>) -> Result<Envelope<'a>, WireError> {
    let community = r.varint()?;
    let from = r.varint()?;
    let to = r.varint()?;
    if from > u64::from(u32::MAX) || to > u64::from(u32::MAX) {
        return Err(WireError::Malformed("host id out of range"));
    }
    let trace = match r.byte()? {
        0 => None,
        1 => Some(r.varint()?),
        _ => return Err(WireError::Malformed("bad trace flag")),
    };
    Ok(Envelope {
        community,
        from: HostId(from as u32),
        to: HostId(to as u32),
        trace,
        inner: r.rest(),
    })
}

/// Encodes a [`TAG_NET_GOODBYE`] (with a free-form reason) onto `out`.
pub fn encode_goodbye(reason: &str, out: &mut Vec<u8>) {
    let mut enc = FrameEncoder::new(TAG_NET_GOODBYE);
    enc.inline_str(reason);
    enc.finish(out);
}

/// Encodes a [`TAG_NET_SHUTDOWN`] onto `out`.
pub fn encode_shutdown(out: &mut Vec<u8>) {
    let enc = FrameEncoder::new(TAG_NET_SHUTDOWN);
    enc.finish(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_wire::{frame_tag, read_frame};

    #[test]
    fn hello_round_trips_with_empty_name_table() {
        let hello = Hello {
            proto: NET_PROTO_VERSION,
            name: "alpha".into(),
            listen: "127.0.0.1:7401".into(),
            hosts: vec![(0, HostId(0)), (0, HostId(2)), (7, HostId(1))],
        };
        let mut bytes = Vec::new();
        encode_hello(&hello, &mut bytes);
        assert_eq!(frame_tag(&bytes).unwrap(), Some(TAG_NET_HELLO));
        let (frame, consumed) = read_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(
            frame.name_count(),
            0,
            "transport frames must not mint names"
        );
        let decoded = read_hello(&mut frame.reader()).unwrap();
        assert_eq!(decoded, hello);
    }

    #[test]
    fn envelope_round_trips_and_embeds_the_inner_frame() {
        let mut inner = Vec::new();
        encode_shutdown(&mut inner); // any complete frame will do
        for trace in [None, Some(0xFEED_u64)] {
            let mut bytes = Vec::new();
            encode_envelope(3, HostId(1), HostId(2), trace, &inner, &mut bytes);
            assert_eq!(frame_tag(&bytes).unwrap(), Some(TAG_NET_ENVELOPE));
            let (frame, _) = read_frame(&bytes).unwrap();
            assert_eq!(frame.name_count(), 0);
            let env = read_envelope(&mut frame.reader()).unwrap();
            assert_eq!(env.community, 3);
            assert_eq!(env.from, HostId(1));
            assert_eq!(env.to, HostId(2));
            assert_eq!(env.trace, trace);
            assert_eq!(env.inner, &inner[..]);
            assert_eq!(frame_tag(env.inner).unwrap(), Some(TAG_NET_SHUTDOWN));
        }
    }

    #[test]
    fn every_truncation_of_every_net_frame_errors_cleanly() {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut hello = Vec::new();
        encode_hello(
            &Hello {
                proto: 1,
                name: "n".into(),
                listen: String::new(),
                hosts: vec![(0, HostId(4))],
            },
            &mut hello,
        );
        frames.push(hello);
        let mut env = Vec::new();
        encode_envelope(0, HostId(0), HostId(1), Some(9), b"xyz", &mut env);
        frames.push(env);
        let mut bye = Vec::new();
        encode_goodbye("done", &mut bye);
        frames.push(bye);

        for bytes in &frames {
            for cut in 0..bytes.len() {
                assert!(
                    read_frame(&bytes[..cut]).is_err(),
                    "truncation at {cut} must not parse"
                );
            }
        }
    }
}
