//! The serving reactor: many [`HostCore`]s, one process, real sockets.
//!
//! A [`NetServer`] owns every protocol core this process serves (keyed
//! by `(community, host)`), one optional `TcpListener`, and the routing
//! state that maps remote `(community, host)` pairs onto live
//! connections. All protocol logic runs single-threaded inside
//! [`NetServer::poll`]; only the byte-moving edges (accept, read,
//! write) live on threads (see [`crate::conn`]). That keeps the cores'
//! sans-io discipline intact — the reactor is just another driver that
//! feeds [`HostCore::handle_frame`] and polls [`HostCore::tick`].
//!
//! # Timers
//!
//! The cores track their own armed timers; [`Action::SetTimer`] is
//! deliberately ignored and [`HostCore::tick`] fires everything due at
//! each poll (the documented alternative to timer delivery — doing both
//! would double-fire). [`NetServer::poll`] bounds its socket wait by
//! the earliest [`HostCore::next_timer_due`] across all local cores, so
//! a silent peer cannot stall timeout-driven progress: the wait wakes
//! exactly when the next timeout matures.
//!
//! # Backpressure
//!
//! Every connection's outbound queue is bounded ([`QueueCaps`]). A push
//! that finds the queue full marks the peer *slow* and the policy is to
//! disconnect it (`net.conn_slow_drops`): the alternative — buffering
//! without bound or blocking the reactor — would let one stalled peer
//! starve every community this process serves. Workflow-layer repair
//! (timeouts, re-auction) recovers whatever the dropped frames carried.
//! Inbound is bounded too: each reader pauses at
//! [`QueueCaps::max_rx_inflight_bytes`] of unprocessed chunks, letting
//! TCP flow control hold back a peer that sends faster than the
//! reactor dispatches (see [`crate::conn`]).
//!
//! # Quarantine
//!
//! When a core quarantines a peer
//! ([`WorkflowEvent::PeerQuarantined`]), the server escalates the
//! protocol-level verdict to the transport: connections serving that
//! peer are severed, outbound frames to it are dropped
//! (`net.conn_quarantine_drops`), future handshakes announcing the
//! denied `(community, host)` pair are refused (`net.conn_denied`), and
//! inbound envelopes *from* a denied pair are dropped regardless of
//! which connection delivers them — reconnecting with a sanitized hello
//! does not lift the verdict. Envelopes on a connection that has not
//! completed its handshake are refused outright: hello is always the
//! first frame a conforming peer sends, so pre-hello traffic is an
//! unannounced peer dodging these gates. This is deliberately blunt —
//! one bad host condemns the connection announcing it — because a
//! process that houses a flooding host is not a peer worth
//! multiplexing with.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use openwf_obs::{Counter, Histogram, Obs};
use openwf_runtime::{
    encode_msg_traced, Action, ActionQueue, HostConfig, HostCore, Msg, OutboundMode, ProblemHandle,
    ProblemId, RuntimeParams, WorkflowEvent,
};
use openwf_simnet::HostId;
use openwf_wire::{frame_tag, FrameDecoder, VocabularyBudget, TAG_FRAGMENT, TAG_MSG, TAG_SPEC};
use serde::Value;

use crate::clock::WallClock;
use crate::conn::{spawn_io, ConnId, ConnIo, IoEvent, PushError, QueueCaps};
use crate::proto::{
    encode_envelope, encode_goodbye, encode_hello, encode_shutdown, read_envelope, read_hello,
    Hello, NET_PROTO_VERSION, TAG_NET_ENVELOPE, TAG_NET_GOODBYE, TAG_NET_HELLO, TAG_NET_SHUTDOWN,
};

/// Construction parameters for a [`NetServer`].
#[derive(Debug)]
pub struct ServerConfig {
    /// Process name announced in handshakes (diagnostics only).
    pub name: String,
    /// Listen address (`"127.0.0.1:0"` for an ephemeral port), or
    /// `None` for a pure client (initiator-only) process.
    pub listen: Option<String>,
    /// Outbound queue caps applied to every connection.
    pub queue_caps: QueueCaps,
    /// TCP connect timeout for on-demand dials.
    pub connect_timeout: Duration,
    /// How long a failed dial suppresses re-dials of the same address.
    pub dial_backoff: Duration,
    /// Observability sinks; `net.*` transport metrics land here. Pass
    /// the same [`Obs`] to each core's
    /// [`HostConfig::with_observability`] to get one unified registry.
    pub obs: Obs,
    /// The wall-clock anchor. Every server of one logical deployment
    /// step (e.g. a [`crate::TcpCommunityDriver`]) shares one anchor so
    /// the cores agree on "now"; the default is a fresh anchor.
    pub clock: WallClock,
    /// Operator-plane ingest policy. `Some(cap)` accepts `TAG_FRAGMENT`
    /// (direct know-how ingest) and `TAG_SPEC` (remote problem
    /// submission) envelopes from handshaken connections, with `cap`
    /// bounding the distinct names each connection may intern — the
    /// same wire-trust budgeting the protocol plane enforces. The
    /// default `None` refuses both tags (`net.rx_ingest_refused`):
    /// anyone can dial the listen socket, so ingest must be opted into
    /// by the operator, never on by default.
    pub operator_ingest: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "owms".into(),
            listen: Some("127.0.0.1:0".into()),
            queue_caps: QueueCaps::default(),
            connect_timeout: Duration::from_millis(500),
            dial_backoff: Duration::from_millis(250),
            obs: Obs::enabled(),
            clock: WallClock::new(),
            operator_ingest: None,
        }
    }
}

/// Transport metric handles, registered once at construction.
struct NetMetrics {
    conn_accepted: Counter,
    conn_dialed: Counter,
    conn_closed: Counter,
    conn_denied: Counter,
    conn_slow_drops: Counter,
    conn_quarantine_drops: Counter,
    rx_frames: Counter,
    rx_bytes: Counter,
    tx_frames: Counter,
    tx_bytes: Counter,
    tx_dropped: Counter,
    decode_rejections: Counter,
    rx_misrouted: Counter,
    rx_ingest_refused: Counter,
    tx_queue_depth: Histogram,
}

impl NetMetrics {
    fn register(obs: &Obs) -> Self {
        let m = &obs.metrics;
        NetMetrics {
            conn_accepted: m.counter("net.conn_accepted"),
            conn_dialed: m.counter("net.conn_dialed"),
            conn_closed: m.counter("net.conn_closed"),
            conn_denied: m.counter("net.conn_denied"),
            conn_slow_drops: m.counter("net.conn_slow_drops"),
            conn_quarantine_drops: m.counter("net.conn_quarantine_drops"),
            rx_frames: m.counter("net.rx_frames"),
            rx_bytes: m.counter("net.rx_bytes"),
            tx_frames: m.counter("net.tx_frames"),
            tx_bytes: m.counter("net.tx_bytes"),
            tx_dropped: m.counter("net.tx_dropped"),
            decode_rejections: m.counter("net.decode_rejections"),
            rx_misrouted: m.counter("net.rx_misrouted"),
            rx_ingest_refused: m.counter("net.rx_ingest_refused"),
            tx_queue_depth: m.histogram("net.tx_queue_depth"),
        }
    }
}

/// One live connection's reactor-side state.
struct Conn {
    io: ConnIo,
    peer: SocketAddr,
    decoder: FrameDecoder,
    /// Peer process name, once its hello arrived.
    name: Option<String>,
    /// Every `(community, host)` the peer announced.
    announced: Vec<(u64, HostId)>,
    /// True once a valid hello arrived. Envelopes before the handshake
    /// are a protocol violation and sever the connection — a peer must
    /// announce itself (and survive the quarantine gate) before any of
    /// its traffic is dispatched.
    hello_done: bool,
    /// Vocabulary budget charged by operator-plane ingest
    /// ([`TAG_FRAGMENT`]/[`TAG_SPEC`]) on this connection; capped by
    /// [`ServerConfig::operator_ingest`].
    ingest_vocab: VocabularyBudget,
}

/// A frame decoded off a connection, lifted to owned data so the
/// decoder borrow ends before the reactor reacts (which may write to
/// other connections).
enum Inbound {
    Hello(Hello),
    Envelope {
        community: u64,
        from: HostId,
        to: HostId,
        inner: Vec<u8>,
    },
    Goodbye,
    Shutdown,
    Unknown,
    Corrupt,
}

/// What a graceful [`NetServer::shutdown`] accomplished.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShutdownReport {
    /// Connections whose outbound queues were drained to the socket.
    pub flushed_conns: usize,
    /// Cores whose fragment stores were synced.
    pub synced_cores: usize,
    /// Durable-store sync failures (already-lost peers etc.).
    pub sync_errors: usize,
}

/// The serving reactor (see module docs).
pub struct NetServer {
    name: String,
    clock: WallClock,
    obs: Obs,
    metrics: NetMetrics,
    /// `(community, host)` → its protocol core. `BTreeMap` so every
    /// iteration (hellos, digests, shutdown sync) is in stable order.
    cores: BTreeMap<(u64, HostId), HostCore>,
    /// Static + hello-learned dial addresses for remote hosts.
    routes: HashMap<(u64, HostId), SocketAddr>,
    /// Which live connection currently serves a remote host.
    conn_of: HashMap<(u64, HostId), ConnId>,
    conns: HashMap<ConnId, Conn>,
    /// Quarantine-denied pairs: no sends, no dials, no hellos.
    denied: HashSet<(u64, HostId)>,
    events_tx: Sender<IoEvent>,
    events_rx: Receiver<IoEvent>,
    listener_stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
    listen_addr: Option<SocketAddr>,
    next_conn: u64,
    next_seq: HashMap<(u64, HostId), u32>,
    /// Frames between cores of this process: `(community, from, to,
    /// inner)` delivered without touching a socket.
    local: VecDeque<(u64, HostId, HostId, Vec<u8>)>,
    /// Workflow events the embedder has not drained yet.
    events: Vec<(u64, HostId, WorkflowEvent)>,
    /// Failed dial suppression.
    backoff: HashMap<SocketAddr, Instant>,
    queue_caps: QueueCaps,
    connect_timeout: Duration,
    dial_backoff: Duration,
    operator_ingest: Option<usize>,
    shutdown_requested: bool,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("name", &self.name)
            .field("listen", &self.listen_addr)
            .field("cores", &self.cores.len())
            .field("conns", &self.conns.len())
            .finish()
    }
}

impl NetServer {
    /// Builds the reactor, binds the listener (when configured) and
    /// starts its accept thread.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures.
    pub fn new(config: ServerConfig) -> std::io::Result<Self> {
        let (events_tx, events_rx) = channel();
        let metrics = NetMetrics::register(&config.obs);
        let listener_stop = Arc::new(AtomicBool::new(false));
        let (listener, listen_addr) = match &config.listen {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                let local = listener.local_addr()?;
                listener.set_nonblocking(true)?;
                let tx = events_tx.clone();
                let stop = Arc::clone(&listener_stop);
                let handle = std::thread::Builder::new()
                    .name(format!("owms-net-accept-{}", config.name))
                    .spawn(move || accept_loop(listener, tx, stop))?;
                (Some(handle), Some(local))
            }
            None => (None, None),
        };
        Ok(NetServer {
            name: config.name,
            clock: config.clock,
            obs: config.obs,
            metrics,
            cores: BTreeMap::new(),
            routes: HashMap::new(),
            conn_of: HashMap::new(),
            conns: HashMap::new(),
            denied: HashSet::new(),
            events_tx,
            events_rx,
            listener_stop,
            listener,
            listen_addr,
            next_conn: 0,
            next_seq: HashMap::new(),
            local: VecDeque::new(),
            events: Vec::new(),
            backoff: HashMap::new(),
            queue_caps: config.queue_caps,
            connect_timeout: config.connect_timeout,
            dial_backoff: config.dial_backoff,
            operator_ingest: config.operator_ingest,
            shutdown_requested: false,
        })
    }

    /// The bound listen address (`None` for a pure client).
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    /// The shared clock anchor.
    pub fn clock(&self) -> WallClock {
        self.clock
    }

    /// The observability sinks (transport metrics live here).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Adds a local host to serve. The core is bound, kept in
    /// [`OutboundMode::Typed`] (the server encodes outbound messages
    /// itself through [`encode_msg_traced`] so every wire frame carries
    /// its trace-correlation id), and polled from then on.
    pub fn add_core(
        &mut self,
        community: u64,
        host: HostId,
        config: HostConfig,
        params: RuntimeParams,
    ) {
        let mut core = HostCore::new(config, params);
        core.bind(host);
        core.set_outbound_mode(OutboundMode::Typed);
        self.cores.insert((community, host), core);
    }

    /// Sets the membership list of `community` on every local core of
    /// that community.
    pub fn set_community(&mut self, community: u64, hosts: Vec<HostId>) {
        for ((c, _), core) in self.cores.iter_mut() {
            if *c == community {
                core.set_community(hosts.clone());
            }
        }
    }

    /// Registers a static dial address for a remote host.
    pub fn add_route(&mut self, community: u64, host: HostId, addr: SocketAddr) {
        self.routes.insert((community, host), addr);
    }

    /// Dials every routed address that has no live connection yet and
    /// sends the handshake — used by processes that must know their
    /// peers are reachable *before* acting (e.g. an initiator honoring
    /// `--wait-peers`). On-demand dialing makes this optional.
    pub fn dial_routes(&mut self) {
        let targets: Vec<(u64, HostId)> = self
            .routes
            .keys()
            .filter(|key| !self.conn_of.contains_key(*key) && !self.denied.contains(*key))
            .copied()
            .collect();
        for key in targets {
            let _ = self.conn_for(key);
        }
    }

    /// Remote `(community, host)` pairs currently reachable over a live,
    /// handshaken connection.
    pub fn connected_remote_hosts(&self) -> usize {
        self.conn_of.len()
    }

    /// The local cores, in stable `(community, host)` order.
    pub fn local_cores(&self) -> Vec<(u64, HostId)> {
        self.cores.keys().copied().collect()
    }

    /// One local core, for inspection. Panics when absent — serving a
    /// host you never added is a caller bug, not a runtime condition.
    pub fn core(&self, community: u64, host: HostId) -> &HostCore {
        &self.cores[&(community, host)]
    }

    /// Mutable access to one local core (service hooks, test plumbing).
    /// Panics when absent, as [`NetServer::core`] does.
    pub fn core_mut(&mut self, community: u64, host: HostId) -> &mut HostCore {
        self.cores.get_mut(&(community, host)).expect("local core")
    }

    /// True once a [`TAG_NET_SHUTDOWN`] frame arrived: the process
    /// owning the run asked this server to stop.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// Drains the workflow events observed since the last call, tagged
    /// with the `(community, host)` that emitted each.
    pub fn drain_workflow_events(&mut self) -> Vec<(u64, HostId, WorkflowEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Submits a problem to a local initiator core (the Workflow
    /// Initiator role): typed local bootstrap, no wire frame, like the
    /// simulator drivers.
    pub fn submit(
        &mut self,
        community: u64,
        initiator: HostId,
        spec: openwf_core::Spec,
    ) -> ProblemHandle {
        let seq = self.next_seq.entry((community, initiator)).or_insert(0);
        let id = ProblemId::new(initiator, *seq);
        *seq += 1;
        let now = self.clock.now();
        let q = self
            .cores
            .get_mut(&(community, initiator))
            .expect("local core")
            .initiate(id, spec, now);
        self.apply_actions(community, initiator, q);
        ProblemHandle { id }
    }

    /// One reactor turn: waits up to `max_wait` for socket input
    /// (bounded by the earliest core timer), processes everything
    /// pending — inbound frames, local deliveries, due timers — and
    /// returns whether anything happened.
    pub fn poll(&mut self, max_wait: Duration) -> bool {
        let mut activity = self.pump_local();
        let wait = if activity {
            Duration::ZERO
        } else {
            self.bounded_wait(max_wait)
        };
        match self.events_rx.recv_timeout(wait) {
            Ok(ev) => {
                activity = true;
                self.on_io_event(ev);
                // Drain the backlog without further waiting.
                while let Ok(ev) = self.events_rx.try_recv() {
                    self.on_io_event(ev);
                }
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
        }
        activity |= self.pump_local();
        activity |= self.fire_due_timers();
        activity |= self.pump_local();
        activity
    }

    /// Earliest timer due across every local core.
    pub fn next_timer_due(&self) -> Option<openwf_simnet::SimTime> {
        self.cores
            .values()
            .filter_map(HostCore::next_timer_due)
            .min()
    }

    /// Publishes every core's metric deltas and snapshots the registry —
    /// the scrape endpoint's body.
    pub fn scrape(&mut self) -> Value {
        for core in self.cores.values_mut() {
            core.publish_metrics();
        }
        self.obs.metrics.snapshot()
    }

    /// The know-how digest of one local core: every stored fragment's
    /// wire encoding, sorted. Order-insensitive, so a socket run and a
    /// simulator run of the same scenario compare bit-identical.
    pub fn knowhow_digest(&self, community: u64, host: HostId) -> Vec<Vec<u8>> {
        let mut digest: Vec<Vec<u8>> = self
            .core(community, host)
            .fragment_mgr()
            .fragments()
            .map(|f| {
                let mut bytes = Vec::new();
                openwf_wire::encode_fragment(f, &mut bytes);
                bytes
            })
            .collect();
        digest.sort();
        digest
    }

    /// [`NetServer::knowhow_digest`] folded to a printable 64-bit FNV-1a
    /// hex string — what `owms-serve` prints so a test can compare
    /// digests across OS processes.
    pub fn knowhow_digest_hex(&self, community: u64, host: HostId) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for enc in self.knowhow_digest(community, host) {
            eat(&(enc.len() as u64).to_le_bytes());
            eat(&enc);
        }
        format!("{h:016x}")
    }

    /// Sends a [`TAG_NET_SHUTDOWN`] to every routed peer and every live
    /// connection — the run owner's "we are done, stop cleanly".
    pub fn broadcast_shutdown(&mut self) {
        let mut frame = Vec::new();
        encode_shutdown(&mut frame);
        let targets: Vec<(u64, HostId)> = self
            .routes
            .keys()
            .filter(|key| !self.denied.contains(*key))
            .copied()
            .collect();
        let mut sent: HashSet<ConnId> = HashSet::new();
        for key in targets {
            if let Some(conn_id) = self.conn_for(key) {
                if sent.insert(conn_id) {
                    self.push_frame(conn_id, frame.clone());
                }
            }
        }
        let rest: Vec<ConnId> = self
            .conns
            .keys()
            .filter(|id| !sent.contains(id))
            .copied()
            .collect();
        for conn_id in rest {
            self.push_frame(conn_id, frame.clone());
        }
    }

    /// Graceful stop: stops accepting, announces goodbye on and drains
    /// every outbound queue (joining the writers — the flush barrier,
    /// bounded per connection by [`crate::conn::DRAIN_DEADLINE`] so a
    /// peer that stopped reading cannot hang shutdown), syncs every
    /// core's fragment store, and publishes final metric deltas. Clean
    /// stop must lose no accepted state.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.listener_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        let mut report = ShutdownReport::default();
        let mut goodbye = Vec::new();
        encode_goodbye("shutdown", &mut goodbye);
        for (_, mut conn) in self.conns.drain() {
            let _ = conn.io.queue.push(goodbye.clone());
            conn.io.close_graceful();
            report.flushed_conns += 1;
        }
        self.conn_of.clear();
        for core in self.cores.values_mut() {
            match core.fragment_mgr_mut().sync() {
                Ok(()) => report.synced_cores += 1,
                Err(_) => report.sync_errors += 1,
            }
            core.publish_metrics();
        }
        report
    }

    // ---- reactor internals ----------------------------------------------

    /// The socket wait for this poll: `max_wait`, shortened to the
    /// earliest core timer so timeouts fire on time even when every
    /// peer is silent.
    fn bounded_wait(&self, max_wait: Duration) -> Duration {
        match self.next_timer_due() {
            Some(due) => max_wait.min(self.clock.until(due)),
            None => max_wait,
        }
    }

    /// Fires `tick` on every core with a matured timer.
    fn fire_due_timers(&mut self) -> bool {
        let now = self.clock.now();
        let due: Vec<(u64, HostId)> = self
            .cores
            .iter()
            .filter(|(_, core)| core.next_timer_due().is_some_and(|t| t <= now))
            .map(|(key, _)| *key)
            .collect();
        let mut fired = false;
        for (community, host) in due {
            let q = self
                .cores
                .get_mut(&(community, host))
                .expect("key from iteration")
                .tick(now);
            fired |= !q.is_empty();
            self.apply_actions(community, host, q);
        }
        fired
    }

    /// Delivers queued local (same-process) frames until none remain.
    /// Inter-host frames stay on the full wire-trust path —
    /// [`HostCore::handle_frame`] with vocabulary budgeting — even when
    /// both hosts live in this process.
    fn pump_local(&mut self) -> bool {
        let mut any = false;
        while let Some((community, from, to, inner)) = self.local.pop_front() {
            any = true;
            let now = self.clock.now();
            let Some(core) = self.cores.get_mut(&(community, to)) else {
                self.metrics.rx_misrouted.inc();
                continue;
            };
            let q = core.handle_frame(from, &inner, now);
            self.apply_actions(community, to, q);
        }
        any
    }

    /// Performs one core's action queue: encode + route sends, surface
    /// events, ignore timer arms (tick discipline, see module docs).
    fn apply_actions(&mut self, community: u64, me: HostId, q: ActionQueue) {
        for action in q {
            match action {
                Action::Send { to, msg } => self.send_msg(community, me, to, &msg),
                Action::SendBytes { to, bytes } => self.route_inner(community, me, to, bytes),
                Action::SetTimer { .. } => {}
                Action::Event(ev) => self.on_workflow_event(community, me, ev),
                // `Action` is non-exhaustive; a future variant is a bug
                // here, not something to silently drop — but there is no
                // sane fallback, so count it as misrouted.
                _ => self.metrics.rx_misrouted.inc(),
            }
        }
    }

    /// Encodes a typed outbound message — with its trace-correlation id
    /// on the wire — and routes it.
    fn send_msg(&mut self, community: u64, from: HostId, to: HostId, msg: &Msg) {
        let mut inner = Vec::new();
        encode_msg_traced(msg, msg.trace_id(), &mut inner);
        self.route_inner(community, from, to, inner);
    }

    /// Routes one complete inner frame: local queue for a core of this
    /// process, an envelope over a connection otherwise.
    fn route_inner(&mut self, community: u64, from: HostId, to: HostId, inner: Vec<u8>) {
        if self.cores.contains_key(&(community, to)) {
            self.local.push_back((community, from, to, inner));
            return;
        }
        if self.denied.contains(&(community, to)) {
            self.metrics.conn_quarantine_drops.inc();
            return;
        }
        let Some(conn_id) = self.conn_for((community, to)) else {
            self.metrics.tx_dropped.inc();
            return;
        };
        let mut frame = Vec::new();
        encode_envelope(community, from, to, None, &inner, &mut frame);
        self.push_frame(conn_id, frame);
    }

    /// Pushes one outbound frame, applying the slow-peer policy on a
    /// full queue.
    fn push_frame(&mut self, conn_id: ConnId, frame: Vec<u8>) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            self.metrics.tx_dropped.inc();
            return;
        };
        let len = frame.len() as u64;
        match conn.io.queue.push(frame) {
            Ok(depth) => {
                self.metrics.tx_frames.inc();
                self.metrics.tx_bytes.add(len);
                self.metrics.tx_queue_depth.record(depth as u64);
            }
            Err(PushError::Full) => {
                self.metrics.conn_slow_drops.inc();
                self.metrics.tx_dropped.inc();
                self.sever_conn(conn_id);
            }
            Err(PushError::Closed) => {
                self.metrics.tx_dropped.inc();
            }
        }
    }

    /// The live connection serving a remote pair, dialing on demand.
    fn conn_for(&mut self, key: (u64, HostId)) -> Option<ConnId> {
        if let Some(&id) = self.conn_of.get(&key) {
            if self.conns.contains_key(&id) {
                return Some(id);
            }
            self.conn_of.remove(&key);
        }
        let addr = *self.routes.get(&key)?;
        if self
            .backoff
            .get(&addr)
            .is_some_and(|until| Instant::now() < *until)
        {
            return None;
        }
        match TcpStream::connect_timeout(&addr, self.connect_timeout) {
            Ok(stream) => {
                let id = self.register_conn(stream, addr)?;
                self.metrics.conn_dialed.inc();
                // The dial address authoritatively serves this pair; the
                // peer's hello will confirm (and widen) the mapping.
                self.conn_of.insert(key, id);
                Some(id)
            }
            Err(_) => {
                self.backoff
                    .insert(addr, Instant::now() + self.dial_backoff);
                None
            }
        }
    }

    /// Registers a socket (accepted or dialed): spawns its I/O threads
    /// and queues our handshake as the first outbound frame.
    fn register_conn(&mut self, stream: TcpStream, peer: SocketAddr) -> Option<ConnId> {
        let _ = stream.set_nodelay(true);
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        let io = match spawn_io(stream, id, self.queue_caps, self.events_tx.clone()) {
            Ok(io) => io,
            Err(_) => return None,
        };
        let mut hello = Vec::new();
        encode_hello(
            &Hello {
                proto: NET_PROTO_VERSION,
                name: self.name.clone(),
                listen: self.listen_addr.map(|a| a.to_string()).unwrap_or_default(),
                hosts: self.local_cores(),
            },
            &mut hello,
        );
        let _ = io.queue.push(hello);
        self.conns.insert(
            id,
            Conn {
                io,
                peer,
                decoder: FrameDecoder::new(),
                name: None,
                announced: Vec::new(),
                hello_done: false,
                ingest_vocab: match self.operator_ingest {
                    Some(cap) => VocabularyBudget::with_cap(cap),
                    None => VocabularyBudget::unlimited(), // never consulted
                },
            },
        );
        Some(id)
    }

    fn on_io_event(&mut self, ev: IoEvent) {
        match ev {
            IoEvent::Accepted { stream, peer } => {
                if self.register_conn(stream, peer).is_some() {
                    self.metrics.conn_accepted.inc();
                }
            }
            IoEvent::Bytes { conn, bytes } => self.on_bytes(conn, &bytes),
            IoEvent::Closed { conn } => {
                if self.conns.contains_key(&conn) {
                    self.sever_conn(conn);
                }
            }
        }
    }

    /// Feeds a raw chunk through the connection's streaming decoder and
    /// reacts to every completed frame.
    fn on_bytes(&mut self, conn_id: ConnId, bytes: &[u8]) {
        self.metrics.rx_bytes.add(bytes.len() as u64);
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // raced with a sever; drop the tail
        };
        // The chunk is processed synchronously below; return it to the
        // reader's in-flight budget (inbound backpressure counterpart
        // of the bounded outbound queue).
        conn.io.rx_credit(bytes.len());
        conn.decoder.feed(bytes);
        // Lift completed frames to owned data first: reacting to a frame
        // may write to other connections, which needs `&mut self`.
        let mut decoder = std::mem::take(&mut conn.decoder);
        let mut inbound = Vec::new();
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => inbound.push(match frame.tag {
                    TAG_NET_HELLO => match read_hello(&mut frame.reader()) {
                        Ok(hello) => Inbound::Hello(hello),
                        Err(_) => Inbound::Corrupt,
                    },
                    TAG_NET_ENVELOPE => match read_envelope(&mut frame.reader()) {
                        Ok(env) => Inbound::Envelope {
                            community: env.community,
                            from: env.from,
                            to: env.to,
                            inner: env.inner.to_vec(),
                        },
                        Err(_) => Inbound::Corrupt,
                    },
                    TAG_NET_GOODBYE => Inbound::Goodbye,
                    TAG_NET_SHUTDOWN => Inbound::Shutdown,
                    _ => Inbound::Unknown,
                }),
                Ok(None) => break,
                Err(_) => {
                    inbound.push(Inbound::Corrupt);
                    break;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.decoder = decoder;
        }
        for frame in inbound {
            // Reacting to an earlier frame may have severed this
            // connection (refused hello, quarantine escalation); the
            // rest of its chunk must not reach the cores.
            if !self.conns.contains_key(&conn_id) {
                break;
            }
            self.metrics.rx_frames.inc();
            match frame {
                Inbound::Hello(hello) => self.on_hello(conn_id, hello),
                Inbound::Envelope {
                    community,
                    from,
                    to,
                    inner,
                } => self.on_envelope(conn_id, community, from, to, inner),
                Inbound::Goodbye => {
                    // The peer announced an orderly close; our reader
                    // will see EOF shortly. Nothing to flush for them.
                }
                Inbound::Shutdown => self.shutdown_requested = true,
                Inbound::Unknown => self.metrics.rx_misrouted.inc(),
                Inbound::Corrupt => {
                    // Framing is lost; the stream is unrecoverable.
                    self.metrics.decode_rejections.inc();
                    self.sever_conn(conn_id);
                    return;
                }
            }
        }
    }

    /// Handshake processing: version gate, quarantine gate, then route
    /// learning.
    fn on_hello(&mut self, conn_id: ConnId, hello: Hello) {
        if hello.proto != NET_PROTO_VERSION {
            self.metrics.conn_denied.inc();
            self.sever_conn(conn_id);
            return;
        }
        if hello.hosts.iter().any(|pair| self.denied.contains(pair)) {
            // A connection willing to carry a quarantined host's traffic
            // is refused wholesale (see module docs).
            self.metrics.conn_denied.inc();
            self.send_goodbye(conn_id, "quarantined");
            self.sever_conn(conn_id);
            return;
        }
        let listen: Option<SocketAddr> = hello.listen.parse().ok();
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.name = Some(hello.name);
            conn.announced = hello.hosts.clone();
            conn.hello_done = true;
        }
        for pair in hello.hosts {
            self.conn_of.insert(pair, conn_id);
            if let Some(addr) = listen {
                self.routes.insert(pair, addr);
            }
        }
    }

    /// Routed traffic: gate on the handshake and the quarantine verdict,
    /// find the destination core, then dispatch the inner frame by its
    /// own tag.
    fn on_envelope(
        &mut self,
        conn_id: ConnId,
        community: u64,
        from: HostId,
        to: HostId,
        inner: Vec<u8>,
    ) {
        let Some(conn) = self.conns.get(&conn_id) else {
            return;
        };
        if !conn.hello_done {
            // Hello is always the first frame a conforming peer sends;
            // traffic before it is an unannounced (possibly evasive)
            // peer. Refuse the connection rather than dispatch blind.
            self.metrics.conn_denied.inc();
            self.sever_conn(conn_id);
            return;
        }
        if self.denied.contains(&(community, from)) {
            // The quarantine verdict outlives the severed socket: a
            // reconnecting peer delivering for a denied pair is dropped
            // even though its hello did not announce the pair.
            self.metrics.conn_quarantine_drops.inc();
            return;
        }
        if !self.cores.contains_key(&(community, to)) {
            self.metrics.rx_misrouted.inc();
            return;
        }
        let now = self.clock.now();
        match frame_tag(&inner) {
            Ok(Some(TAG_MSG)) => {
                let q = self
                    .cores
                    .get_mut(&(community, to))
                    .expect("checked above")
                    .handle_frame(from, &inner, now);
                self.apply_actions(community, to, q);
            }
            Ok(Some(TAG_FRAGMENT)) => {
                // Operator/admin plane: direct know-how ingest (seeding,
                // replication). Off by default — any peer can dial the
                // listen socket, so acceptance requires the operator's
                // explicit [`ServerConfig::operator_ingest`] opt-in and
                // decodes through a per-connection vocabulary budget.
                if self.operator_ingest.is_none() {
                    self.metrics.rx_ingest_refused.inc();
                    return;
                }
                let decoded = {
                    let conn = self.conns.get_mut(&conn_id).expect("checked above");
                    openwf_wire::decode_fragment(&inner, &mut conn.ingest_vocab)
                };
                match decoded {
                    Ok((fragment, _)) => {
                        let core = self.cores.get_mut(&(community, to)).expect("checked above");
                        if core.fragment_mgr_mut().try_add(fragment).is_err() {
                            self.metrics.decode_rejections.inc();
                        }
                    }
                    Err(_) => {
                        // Corrupt or over-budget (a flooding "operator"
                        // minting unbounded names): either way the
                        // connection is not worth keeping.
                        self.metrics.decode_rejections.inc();
                        self.sever_conn(conn_id);
                    }
                }
            }
            Ok(Some(TAG_SPEC)) => {
                // Remote problem submission: the addressed core becomes
                // the initiator. Same operator opt-in and budget as
                // fragment ingest.
                if self.operator_ingest.is_none() {
                    self.metrics.rx_ingest_refused.inc();
                    return;
                }
                let decoded = {
                    let conn = self.conns.get_mut(&conn_id).expect("checked above");
                    openwf_wire::decode_spec(&inner, &mut conn.ingest_vocab)
                };
                match decoded {
                    Ok((spec, _)) => {
                        let _ = self.submit(community, to, spec);
                    }
                    Err(_) => {
                        self.metrics.decode_rejections.inc();
                        self.sever_conn(conn_id);
                    }
                }
            }
            _ => self.metrics.rx_misrouted.inc(),
        }
    }

    /// Records a workflow event and escalates quarantine verdicts to the
    /// transport.
    fn on_workflow_event(&mut self, community: u64, me: HostId, ev: WorkflowEvent) {
        if let WorkflowEvent::PeerQuarantined { peer, .. } = &ev {
            let pair = (community, *peer);
            self.denied.insert(pair);
            self.routes.remove(&pair);
            // Sever every connection that announced the quarantined
            // host — it has agreed to carry the flooder's traffic.
            let guilty: Vec<ConnId> = self
                .conns
                .iter()
                .filter(|(_, conn)| conn.announced.contains(&pair))
                .map(|(id, _)| *id)
                .collect();
            let routed = self.conn_of.get(&pair).copied();
            for conn_id in guilty.into_iter().chain(routed) {
                if self.conns.contains_key(&conn_id) {
                    self.metrics.conn_quarantine_drops.inc();
                    self.send_goodbye(conn_id, "quarantined");
                    self.sever_conn(conn_id);
                }
            }
        }
        self.events.push((community, me, ev));
    }

    fn send_goodbye(&mut self, conn_id: ConnId, reason: &str) {
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            let mut frame = Vec::new();
            encode_goodbye(reason, &mut frame);
            let _ = conn.io.queue.push(frame);
        }
    }

    /// Drops a connection immediately and unmaps every pair it served.
    fn sever_conn(&mut self, conn_id: ConnId) {
        if let Some(mut conn) = self.conns.remove(&conn_id) {
            conn.io.sever();
            self.metrics.conn_closed.inc();
            let _ = conn.peer; // diagnostics only
        }
        self.conn_of.retain(|_, id| *id != conn_id);
    }
}

/// The accept thread: non-blocking accept with a stop flag, forwarding
/// sockets to the reactor's event channel.
fn accept_loop(listener: TcpListener, tx: Sender<IoEvent>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if tx.send(IoEvent::Accepted { stream, peer }).is_err() {
                    return; // reactor gone
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_envelope, encode_hello};
    use openwf_core::{Fragment, Mode};
    use std::io::Write as _;

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    fn test_server(operator_ingest: Option<usize>) -> NetServer {
        let mut server = NetServer::new(ServerConfig {
            name: "gate-test".into(),
            operator_ingest,
            ..ServerConfig::default()
        })
        .unwrap();
        server.add_core(
            0,
            HostId(0),
            HostConfig::new().with_fragment(frag("svt-f0", "svt-t0", "svt-a", "svt-b")),
            RuntimeParams::default(),
        );
        server
    }

    fn hello_bytes(hosts: Vec<(u64, HostId)>) -> Vec<u8> {
        let mut bytes = Vec::new();
        encode_hello(
            &Hello {
                proto: NET_PROTO_VERSION,
                name: "client".into(),
                listen: String::new(),
                hosts,
            },
            &mut bytes,
        );
        bytes
    }

    fn fragment_envelope(from: HostId, fragment: &Fragment) -> Vec<u8> {
        let mut inner = Vec::new();
        openwf_wire::encode_fragment(fragment, &mut inner);
        let mut bytes = Vec::new();
        encode_envelope(0, from, HostId(0), None, &inner, &mut bytes);
        bytes
    }

    fn poll_until(server: &mut NetServer, mut done: impl FnMut(&NetServer) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !done(server) {
            assert!(Instant::now() < deadline, "condition never reached");
            server.poll(Duration::from_millis(10));
        }
    }

    /// Envelopes before the handshake sever the connection: an
    /// unannounced peer cannot slip traffic past the hello gates, even
    /// with operator ingest enabled.
    #[test]
    fn pre_hello_envelope_is_refused_and_severs() {
        let mut server = test_server(Some(64));
        let addr = server.listen_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(&fragment_envelope(
                HostId(9),
                &frag("svp-f1", "svp-t1", "svp-b", "svp-c"),
            ))
            .unwrap();
        client.flush().unwrap();
        poll_until(&mut server, |s| s.metrics.conn_denied.get() >= 1);
        assert_eq!(
            server.core(0, HostId(0)).fragment_mgr().len(),
            1,
            "nothing ingested from the unannounced peer"
        );
        assert!(server.conns.is_empty(), "connection severed");
    }

    /// The quarantine verdict gates inbound envelopes by *source*, not
    /// just hellos: a denied pair delivering over a fresh connection
    /// with a sanitized hello is still dropped.
    #[test]
    fn denied_source_envelopes_are_dropped_even_after_reconnect() {
        let mut server = test_server(Some(64));
        server.denied.insert((0, HostId(9)));
        let addr = server.listen_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // The hello does not announce the denied pair, so it passes.
        let mut bytes = hello_bytes(vec![(0, HostId(8))]);
        bytes.extend(fragment_envelope(
            HostId(9),
            &frag("svd-f1", "svd-t1", "svd-b", "svd-c"),
        ));
        client.write_all(&bytes).unwrap();
        client.flush().unwrap();
        poll_until(&mut server, |s| s.metrics.conn_quarantine_drops.get() >= 1);
        assert_eq!(
            server.core(0, HostId(0)).fragment_mgr().len(),
            1,
            "denied source must not ingest"
        );
    }

    /// Fragment/spec ingest is an explicit operator opt-in: the default
    /// configuration refuses the envelopes (counted, connection kept).
    #[test]
    fn fragment_ingest_requires_operator_opt_in() {
        let mut server = test_server(None);
        let addr = server.listen_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut bytes = hello_bytes(vec![(0, HostId(8))]);
        bytes.extend(fragment_envelope(
            HostId(8),
            &frag("svo-f1", "svo-t1", "svo-b", "svo-c"),
        ));
        client.write_all(&bytes).unwrap();
        client.flush().unwrap();
        poll_until(&mut server, |s| s.metrics.rx_ingest_refused.get() >= 1);
        assert_eq!(
            server.core(0, HostId(0)).fragment_mgr().len(),
            1,
            "ingest is off by default"
        );
        assert_eq!(server.conns.len(), 1, "refusal is a drop, not a sever");
    }

    /// An enabled operator plane still budgets vocabulary: a connection
    /// minting more distinct names than the configured cap is severed
    /// with nothing interned, closing the flooding loophole the
    /// protocol plane already guards against.
    #[test]
    fn operator_ingest_budget_severs_a_flooding_connection() {
        let mut server = test_server(Some(6));
        let addr = server.listen_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut bytes = hello_bytes(vec![(0, HostId(8))]);
        // Within budget: one fragment (4 distinct names) ingests.
        bytes.extend(fragment_envelope(
            HostId(8),
            &frag("svb-f1", "svb-t1", "svb-b", "svb-c"),
        ));
        // Over budget: a second fragment of 4 fresh names blows the cap
        // of 6 and must sever the connection, interning nothing.
        bytes.extend(fragment_envelope(
            HostId(8),
            &frag("svb-f2", "svb-t2", "svb-d", "svb-e"),
        ));
        client.write_all(&bytes).unwrap();
        client.flush().unwrap();
        poll_until(&mut server, |s| s.metrics.decode_rejections.get() >= 1);
        assert_eq!(
            server.core(0, HostId(0)).fragment_mgr().len(),
            2,
            "the within-budget fragment ingested"
        );
        assert!(server.conns.is_empty(), "the flooding connection severed");
    }
}
