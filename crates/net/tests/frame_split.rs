//! TCP delivers arbitrary segmentation; the serving tier depends on the
//! streaming [`FrameDecoder`] reassembling *exactly* the frames that
//! were sent no matter where the kernel cuts the stream. This property
//! test feeds a multi-frame buffer split at **every** byte boundary
//! (and byte-by-byte, the worst case) and requires bit-identical
//! results to the whole-buffer decode — including fragment payloads
//! decoded through a reused [`DecodeScratch`], the serving path's
//! steady-state configuration.

use openwf_core::{Fragment, Mode, Sym};
use openwf_wire::{
    decode_fragment_with, encode_fragment, read_frame, DecodeScratch, FrameDecoder, FrameEncoder,
    VocabularyBudget, TAG_FRAGMENT,
};
use proptest::collection;
use proptest::prelude::*;

/// What one decoded frame contains, lifted to owned data so runs can be
/// compared bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Decoded {
    tag: u8,
    names: Vec<String>,
    payload: Vec<u8>,
}

/// Drains every complete frame currently buffered in `decoder`.
fn drain(decoder: &mut FrameDecoder, out: &mut Vec<Decoded>) {
    while let Some(frame) = decoder.next_frame().expect("generated frames are valid") {
        let names = frame.names().map(str::to_string).collect();
        let payload = frame.reader().rest().to_vec();
        out.push(Decoded {
            tag: frame.tag,
            names,
            payload,
        });
    }
}

/// An encoded fragment frame whose shape varies with the inputs.
fn fragment_frame(idx: usize, tasks: u8, fan: u8) -> (Fragment, Vec<u8>) {
    let tasks = 1 + (tasks % 3) as usize;
    let fan = 1 + (fan % 3) as usize;
    let mut b = Fragment::builder(format!("fs{idx}-frag"));
    for t in 0..tasks {
        let ins: Vec<String> = (0..fan).map(|i| format!("fs{idx}-in{t}-{i}")).collect();
        b = b
            .task(format!("fs{idx}-t{t}"), Mode::Disjunctive)
            .inputs(ins)
            .outputs([format!("fs{idx}-out{t}")])
            .done();
    }
    let fragment = b.build().expect("generated fragments are valid");
    let mut bytes = Vec::new();
    encode_fragment(&fragment, &mut bytes);
    (fragment, bytes)
}

/// An arbitrary non-fragment frame: tag, a few pooled names, raw bytes.
fn misc_frame(idx: usize, tag: u8, names: u8, payload: &[u8]) -> Vec<u8> {
    let mut enc = FrameEncoder::new(0x20 | (tag % 0x20));
    for n in 0..(names % 4) {
        enc.name(Sym::intern(&format!("fs-pool-{}", (idx as u8 + n) % 8)));
    }
    enc.bytes(payload);
    let mut out = Vec::new();
    enc.finish(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Splitting the stream at every byte boundary yields bit-identical
    /// frames to the whole-buffer decode.
    #[test]
    fn every_split_boundary_decodes_identically(
        shapes in collection::vec((any::<u8>(), any::<u8>()), 1..4),
        misc in collection::vec(
            (any::<u8>(), any::<u8>(), collection::vec(any::<u8>(), 0..24)),
            1..4,
        ),
    ) {
        // Interleave fragment frames and misc frames into one stream.
        let mut stream = Vec::new();
        let mut fragments = Vec::new();
        for (i, (tasks, fan)) in shapes.iter().enumerate() {
            let (fragment, bytes) = fragment_frame(i, *tasks, *fan);
            fragments.push(fragment);
            stream.extend_from_slice(&bytes);
            if let Some((tag, names, payload)) = misc.get(i) {
                stream.extend_from_slice(&misc_frame(i, *tag, *names, payload));
            }
        }

        // Reference: whole-buffer decode via read_frame.
        let mut reference = Vec::new();
        let mut rest = &stream[..];
        while !rest.is_empty() {
            let (frame, consumed) = read_frame(rest).expect("whole-buffer frames are valid");
            reference.push(Decoded {
                tag: frame.tag,
                names: frame.names().map(str::to_string).collect(),
                payload: frame.reader().rest().to_vec(),
            });
            rest = &rest[consumed..];
        }

        // Fragment payloads through one *reused* scratch — the serving
        // path reuses its scratch across every frame of a connection.
        let mut scratch = DecodeScratch::default();
        let mut decoded_fragments = Vec::new();
        let mut rest = &stream[..];
        while !rest.is_empty() {
            let (frame, consumed) = read_frame(rest).expect("valid");
            if frame.tag == TAG_FRAGMENT {
                let (fragment, used) = decode_fragment_with(
                    &rest[..consumed],
                    &mut VocabularyBudget::unlimited(),
                    &mut scratch,
                )
                .expect("fragment frames decode");
                prop_assert_eq!(used, consumed);
                decoded_fragments.push(fragment);
            }
            rest = &rest[consumed..];
        }
        prop_assert_eq!(decoded_fragments.len(), fragments.len());
        for (decoded, original) in decoded_fragments.iter().zip(&fragments) {
            let mut re = Vec::new();
            encode_fragment(decoded, &mut re);
            let mut orig = Vec::new();
            encode_fragment(original, &mut orig);
            prop_assert_eq!(re, orig, "scratch-decoded fragment re-encodes identically");
        }

        // Every split boundary: two feeds, same frames.
        for cut in 0..=stream.len() {
            let mut decoder = FrameDecoder::new();
            let mut got = Vec::new();
            decoder.feed(&stream[..cut]);
            drain(&mut decoder, &mut got);
            decoder.feed(&stream[cut..]);
            drain(&mut decoder, &mut got);
            prop_assert_eq!(decoder.buffered(), 0, "no bytes may linger");
            prop_assert_eq!(&got, &reference, "split at {} diverged", cut);
        }

        // Worst case: one byte per feed.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            decoder.feed(std::slice::from_ref(b));
            drain(&mut decoder, &mut got);
        }
        prop_assert_eq!(&got, &reference, "byte-by-byte feed diverged");
    }
}
