//! The acceptance proof for the serving tier: **three OS processes**
//! running `owms-serve` construct workflows together over localhost
//! TCP, survive one member being killed and restarted mid-run (on a
//! fresh ephemeral port, re-announcing itself), and finish with
//! know-how digests bit-identical to a simulator run of the exact same
//! XML-deployed scenario. Trace export from two different processes
//! stitches on a shared trace id.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use openwf_core::{Fragment, Mode, Spec};
use openwf_runtime::config::{parse_host_config, write_host_config};
use openwf_runtime::{
    Driver, HostConfig, HostCore, LoopbackBytesDriver, ProblemStatus, RuntimeParams,
    ServiceDescription,
};
use openwf_simnet::SimDuration;

/// One spawned `owms-serve`, its stdout collected line-by-line on a
/// reader thread. Killed on drop so a failing assertion cannot leak
/// processes.
struct Proc {
    name: &'static str,
    child: Child,
    lines: Arc<Mutex<Vec<String>>>,
}

impl Proc {
    fn spawn(name: &'static str, args: &[String]) -> Proc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_owms-serve"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn owms-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        std::thread::Builder::new()
            .name(format!("stdout-{name}"))
            .spawn(move || {
                for line in BufReader::new(stdout).lines().map_while(Result::ok) {
                    sink.lock().unwrap().push(line);
                }
            })
            .expect("spawn reader thread");
        Proc { name, child, lines }
    }

    fn all_lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }

    /// First stdout line matching `pred`, waiting up to `timeout`.
    fn wait_for_line(&self, what: &str, pred: impl Fn(&str) -> bool, timeout: Duration) -> String {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(line) = self.lines.lock().unwrap().iter().find(|l| pred(l)) {
                return line.clone();
            }
            assert!(
                Instant::now() < deadline,
                "{}: timed out waiting for {what}; stdout so far: {:#?}",
                self.name,
                self.all_lines()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn wait_exit(&mut self, timeout: Duration) -> std::process::ExitStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                // Give the reader thread a beat to drain the tail.
                std::thread::sleep(Duration::from_millis(50));
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "{}: never exited; stdout so far: {:#?}",
                self.name,
                self.all_lines()
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A free localhost port: bind ephemeral, read the assignment, drop the
/// listener. (No connection is ever made, so no TIME_WAIT lingers.)
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .expect("bind")
        .local_addr()
        .expect("local_addr")
        .port()
}

fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
    Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
}

/// The scenario: knowledge and capability are split three ways, so the
/// workflow `spt-a -> spt-d` cannot be built — let alone executed —
/// without all three processes cooperating over the sockets.
fn configs() -> Vec<HostConfig> {
    vec![
        HostConfig::new()
            .with_fragment(frag("spt-f1", "spt-t1", "spt-a", "spt-b"))
            .with_service(ServiceDescription::new(
                "spt-t2",
                SimDuration::from_millis(5),
            )),
        HostConfig::new()
            .with_fragment(frag("spt-f2", "spt-t2", "spt-b", "spt-c"))
            .with_service(ServiceDescription::new(
                "spt-t1",
                SimDuration::from_millis(5),
            )),
        HostConfig::new()
            .with_fragment(frag("spt-f3", "spt-t3", "spt-c", "spt-d"))
            .with_service(ServiceDescription::new(
                "spt-t3",
                SimDuration::from_millis(5),
            )),
    ]
}

/// Mirrors `owms-serve --fast` exactly; the simulator reference must
/// run the same parameters to claim outcome equivalence.
fn fast_params() -> RuntimeParams {
    RuntimeParams {
        round_timeout: SimDuration::from_millis(150),
        bid_patience: SimDuration::from_millis(30),
        auction_timeout: SimDuration::from_millis(400),
        execution_watchdog: SimDuration::from_secs(10),
        ..RuntimeParams::default()
    }
}

/// Reimplements `NetServer::knowhow_digest_hex` (sorted fragment
/// encodings folded through FNV-1a64) so the simulator run's digests
/// are comparable with the `digest C:H HEX` lines other *processes*
/// print.
fn digest_hex(core: &HostCore) -> String {
    let mut encodings: Vec<Vec<u8>> = core
        .fragment_mgr()
        .fragments()
        .map(|f| {
            let mut bytes = Vec::new();
            openwf_wire::encode_fragment(f, &mut bytes);
            bytes
        })
        .collect();
    encodings.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for enc in &encodings {
        eat(&(enc.len() as u64).to_le_bytes());
        eat(enc);
    }
    format!("{h:016x}")
}

/// Every nonzero trace-correlation id (the `"trace": N` field of the
/// lines `to_jsonl` emits) present in a trace export.
fn trace_ids(path: &std::path::Path) -> std::collections::HashSet<u64> {
    let text = std::fs::read_to_string(path).expect("trace file");
    let mut ids = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(at) = line.find("\"trace\": ") {
            let digits: String = line[at + 9..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(id) = digits.parse::<u64>() {
                if id != 0 {
                    ids.insert(id);
                }
            }
        }
    }
    ids
}

fn strs(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// ≥3 OS processes, one workflow fabric: two back-to-back workflow
/// constructions over real localhost TCP, a SIGKILL + restart of one
/// member between them (fresh ephemeral port, `--dial` re-announce),
/// digests bit-identical to the simulator, traces stitching across
/// process boundaries, and clean shutdown everywhere.
#[test]
fn three_processes_construct_workflows_and_survive_churn() {
    let dir = std::env::temp_dir().join(format!("owms-serve-proc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Deploy the scenario as XML documents — the persistent artifact
    // the paper describes — and keep the parsed round-trip for the
    // simulator reference so both runs consume the identical pipeline.
    let mut xml_paths = Vec::new();
    let mut parsed = Vec::new();
    for (i, config) in configs().into_iter().enumerate() {
        let xml = write_host_config(&config);
        let path = dir.join(format!("host{i}.xml"));
        std::fs::write(&path, &xml).unwrap();
        parsed.push(parse_host_config(&xml).expect("round-trip"));
        xml_paths.push(path.display().to_string());
    }

    // ---- simulator reference: same configs, same params, two runs ----
    let mut sim = LoopbackBytesDriver::build(fast_params(), parsed);
    let mut expected_reports = Vec::new();
    for _ in 0..2 {
        let handle = sim.submit(sim.hosts()[0], Spec::new(["spt-a"], ["spt-d"]));
        let report = sim.run_until_complete(handle);
        assert!(
            matches!(report.status, ProblemStatus::Completed),
            "simulator reference must complete: {report}"
        );
        let mut assigns: Vec<String> = report
            .assignments
            .iter()
            .map(|(task, host)| format!("{}={}", task.as_str(), host.0))
            .collect();
        assigns.sort();
        expected_reports.push(format!("Completed [{}]", assigns.join(",")));
    }
    let expected_digests: Vec<String> = sim
        .hosts()
        .iter()
        .map(|h| digest_hex(sim.core(*h)))
        .collect();

    // ---- the three processes -----------------------------------------
    let (port_a, port_b, port_c) = (free_port(), free_port(), free_port());
    let addr = |p: u16| format!("127.0.0.1:{p}");
    let durable_b = dir.join("durable-b").display().to_string();
    let trace_a = dir.join("trace-a.jsonl");
    let trace_c = dir.join("trace-c.jsonl");
    let mesh = |me: usize| {
        let mut peers = Vec::new();
        for (host, port) in [(0, port_a), (1, port_b), (2, port_c)] {
            if host != me {
                peers.extend(strs(&["--peer", &format!("0:{host}={}", addr(port))]));
            }
        }
        peers
    };
    let common = |me: usize| {
        let mut args = strs(&[
            "--community",
            "0:0,1,2",
            "--fast",
            "--max-runtime-ms",
            "90000",
        ]);
        args.extend(mesh(me));
        args
    };

    let mut args_c = strs(&[
        "--name",
        "proc-c",
        "--listen",
        &addr(port_c),
        "--config",
        &format!("0:2:{}", xml_paths[2]),
        "--print-digest",
        "0:2",
        "--trace-jsonl",
        &trace_c.display().to_string(),
    ]);
    args_c.extend(common(2));
    let mut proc_c = Proc::spawn("proc-c", &args_c);

    let args_b_base = |listen: &str, dial: bool| {
        let mut args = strs(&[
            "--name",
            "proc-b",
            "--listen",
            listen,
            "--config",
            &format!("0:1:{}", xml_paths[1]),
            "--durable",
            &format!("0:1:{durable_b}"),
            "--print-digest",
            "0:1",
        ]);
        if dial {
            args.push("--dial".into());
        }
        args.extend(common(1));
        args
    };
    let mut proc_b = Proc::spawn("proc-b", &args_b_base(&addr(port_b), false));

    let wait = Duration::from_secs(30);
    proc_c.wait_for_line("listening", |l| l.starts_with("listening on "), wait);
    let b_digest_line =
        proc_b.wait_for_line("start digest", |l| l.starts_with("digest 0:1 "), wait);

    let mut args_a = strs(&[
        "--name",
        "proc-a",
        "--listen",
        &addr(port_a),
        "--config",
        &format!("0:0:{}", xml_paths[0]),
        "--print-digest",
        "0:0",
        "--trace-jsonl",
        &trace_a.display().to_string(),
        "--metrics",
        "--wait-peers",
        "2",
        "--pause-ms",
        "2500",
        "--submit",
        "0:0:spt-a->spt-d",
        "--submit",
        "0:0:spt-a->spt-d",
    ]);
    args_a.extend(common(0));
    let mut proc_a = Proc::spawn("proc-a", &args_a);
    proc_a.wait_for_line("peers", |l| l == "peers 2", wait);

    // First workflow completes over the sockets…
    proc_a.wait_for_line(
        "first completion",
        |l| l.starts_with("event 0:0 Completed"),
        wait,
    );

    // …then churn: SIGKILL the middle member and restart it on a fresh
    // ephemeral port (the old one may sit in TIME_WAIT). `--dial` makes
    // the restart announce itself so peers replace the dead route with
    // the address its hello carries.
    proc_b.kill();
    let mut proc_b2 = Proc::spawn("proc-b2", &args_b_base("127.0.0.1:0", true));
    let b2_digest_line =
        proc_b2.wait_for_line("restart digest", |l| l.starts_with("digest 0:1 "), wait);
    assert_eq!(
        b2_digest_line, b_digest_line,
        "the restarted member must come back with identical know-how"
    );

    // The second workflow rides the re-announced routes to completion;
    // the initiator then broadcasts shutdown and every process drains.
    let status_a = proc_a.wait_exit(Duration::from_secs(60));
    assert!(status_a.success(), "initiator exit: {status_a:?}");
    let status_c = proc_c.wait_exit(wait);
    assert!(status_c.success(), "worker C exit: {status_c:?}");
    let status_b2 = proc_b2.wait_exit(wait);
    assert!(status_b2.success(), "restarted worker exit: {status_b2:?}");

    // ---- equivalence with the simulator ------------------------------
    let lines_a = proc_a.all_lines();
    let reports: Vec<&String> = lines_a
        .iter()
        .filter(|l| l.starts_with("report "))
        .collect();
    assert_eq!(
        reports.len(),
        2,
        "two submissions, two reports; stdout: {lines_a:#?}"
    );
    for (report, expected) in reports.iter().zip(&expected_reports) {
        assert!(
            report.ends_with(expected.as_str()),
            "socket outcome diverged from simulator: {report:?} vs {expected:?}"
        );
    }

    // Bit-identical know-how digests, process by process vs simulator
    // host by host. (A prints its digest twice — start and exit — and
    // both must match; know-how is config/durable state, not workspace
    // scratch.)
    let digest_of = |lines: &[String], tag: &str, expected: &str| {
        let want = format!("digest {tag} {expected}");
        assert!(
            lines.iter().any(|l| l == &want),
            "missing {want:?} in {lines:#?}"
        );
    };
    digest_of(&lines_a, "0:0", &expected_digests[0]);
    digest_of(&proc_b2.all_lines(), "0:1", &expected_digests[1]);
    digest_of(&proc_c.all_lines(), "0:2", &expected_digests[2]);

    // The transport really carried it: scraped metrics show socket
    // traffic, and the run shut down without sync errors anywhere.
    let metrics = lines_a
        .iter()
        .find(|l| l.starts_with("metrics "))
        .expect("metrics line");
    assert!(metrics.contains("net.rx_frames"), "bad scrape: {metrics}");
    for proc_lines in [&lines_a, &proc_c.all_lines(), &proc_b2.all_lines()] {
        let done = proc_lines
            .iter()
            .find(|l| l.starts_with("done "))
            .unwrap_or_else(|| panic!("no done line in {proc_lines:#?}"));
        assert!(done.contains("sync_errors=0"), "dirty shutdown: {done:?}");
    }

    // ---- cross-process trace stitching -------------------------------
    // The second problem's trace id (p0/1#0 packs to a nonzero u64) is
    // minted by A and propagated over the wire; C's independent export
    // must contain the same id.
    let shared: Vec<u64> = trace_ids(&trace_a)
        .intersection(&trace_ids(&trace_c))
        .copied()
        .collect();
    assert!(
        !shared.is_empty(),
        "no shared trace id between initiator and worker exports"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
