//! The socket transport end-to-end, inside one test process: real TCP
//! over `127.0.0.1`, kernel segmentation, reader/writer threads — and
//! the same protocol outcomes the simulated drivers produce.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use openwf_core::{Fragment, Mode, Spec};
use openwf_net::proto::{encode_envelope, encode_hello, Hello, NET_PROTO_VERSION};
use openwf_net::{NetServer, ServerConfig, TcpCommunityDriver, WallClock};
use openwf_obs::Obs;
use openwf_runtime::{
    Driver, HostConfig, HostCore, LoopbackBytesDriver, ProblemStatus, RuntimeParams,
    ServiceDescription, WorkflowEvent,
};
use openwf_simnet::{HostId, SimDuration};

fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
    Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
}

fn service(task: &str) -> ServiceDescription {
    ServiceDescription::new(task, SimDuration::from_millis(5))
}

/// Short wall-clock params: socket tests wait these out in real time.
fn fast_params() -> RuntimeParams {
    RuntimeParams {
        round_timeout: SimDuration::from_millis(150),
        bid_patience: SimDuration::from_millis(30),
        auction_timeout: SimDuration::from_millis(400),
        execution_watchdog: SimDuration::from_secs(5),
        max_repair_attempts: 1,
        ..RuntimeParams::default()
    }
}

fn digest(core: &HostCore) -> Vec<Vec<u8>> {
    let mut d: Vec<Vec<u8>> = core
        .fragment_mgr()
        .fragments()
        .map(|f| {
            let mut bytes = Vec::new();
            openwf_wire::encode_fragment(f, &mut bytes);
            bytes
        })
        .collect();
    d.sort();
    d
}

/// Split knowledge and capability force cooperation over real sockets;
/// the outcome — assignments and know-how — matches the loopback
/// (virtual-time, encoded-frames) driver bit for bit, and the `net.*`
/// transport metrics account for the traffic.
#[test]
fn tcp_community_matches_loopback_outcome() {
    let configs = || {
        vec![
            HostConfig::new()
                .with_fragment(frag("tcp-f1", "tcp-t1", "tcp-a", "tcp-b"))
                .with_service(service("tcp-t2")),
            HostConfig::new()
                .with_fragment(frag("tcp-f2", "tcp-t2", "tcp-b", "tcp-c"))
                .with_service(service("tcp-t1")),
        ]
    };
    let mut tcp = TcpCommunityDriver::build(fast_params(), configs()).unwrap();
    let initiator = tcp.hosts()[0];
    let handle = tcp.submit(initiator, Spec::new(["tcp-a"], ["tcp-c"]));
    let report = tcp.run_until_complete(handle);
    assert!(
        matches!(report.status, ProblemStatus::Completed),
        "socket run: {report}"
    );

    let mut loopback = LoopbackBytesDriver::build(fast_params(), configs());
    let lb_handle = loopback.submit(loopback.hosts()[0], Spec::new(["tcp-a"], ["tcp-c"]));
    let lb_report = loopback.run_until_complete(lb_handle);
    assert!(matches!(lb_report.status, ProblemStatus::Completed));

    // Same assignments (the scenario forces them) and identical
    // know-how digests on every host.
    let mut tcp_assign = report.assignments.clone();
    let mut lb_assign = lb_report.assignments.clone();
    tcp_assign.sort();
    lb_assign.sort();
    assert_eq!(tcp_assign, lb_assign);
    for host in tcp.hosts() {
        assert_eq!(
            digest(tcp.core(host)),
            digest(loopback.core(host)),
            "know-how diverged on {host:?}"
        );
    }

    // The traffic crossed real sockets and the registry saw it.
    let metrics = &tcp.obs().metrics;
    assert!(metrics.counter("net.rx_frames").get() > 4);
    assert!(metrics.counter("net.tx_bytes").get() > 200);
    assert!(metrics.counter("net.conn_dialed").get() >= 1);
    assert!(metrics.counter("net.conn_accepted").get() >= 1);

    // Workflow milestones surfaced through the servers.
    let events = tcp.drain_events();
    assert!(events
        .iter()
        .any(|(h, e)| *h == initiator && matches!(e, WorkflowEvent::Completed { .. })));

    // The scrape endpoint exposes the net.* family as JSON.
    let json = openwf_net::value_to_json(&tcp.server_mut(initiator).scrape());
    for name in [
        "net.rx_frames",
        "net.tx_frames",
        "net.tx_bytes",
        "net.conn_dialed",
        "net.tx_queue_depth",
    ] {
        assert!(json.contains(name), "scrape missing {name}: {json}");
    }

    // Graceful stop drains and syncs everything.
    for report in tcp.shutdown() {
        assert_eq!(report.sync_errors, 0);
    }
}

/// A community member that never answers (no process behind it): round
/// timeouts fire off `next_timer_due`, construction proceeds with the
/// live peers, and the workflow completes. Silence cannot wedge the
/// socket driver.
#[test]
fn silent_member_cannot_wedge_completion() {
    let mut tcp = TcpCommunityDriver::build(
        fast_params(),
        vec![
            HostConfig::new()
                .with_fragment(frag("sil-f1", "sil-t1", "sil-a", "sil-b"))
                .with_service(service("sil-t2")),
            HostConfig::new()
                .with_fragment(frag("sil-f2", "sil-t2", "sil-b", "sil-c"))
                .with_service(service("sil-t1")),
        ],
    )
    .unwrap();
    // A third member exists in the community roster but no server
    // answers for it — every frame to it is dropped on the floor.
    let roster = vec![HostId(0), HostId(1), HostId(2)];
    for host in [HostId(0), HostId(1)] {
        tcp.server_mut(host).set_community(0, roster.clone());
    }
    let initiator = HostId(0);
    let started = Instant::now();
    let handle = tcp.submit(initiator, Spec::new(["sil-a"], ["sil-c"]));
    let report = tcp.run_until_complete(handle);
    assert!(
        matches!(report.status, ProblemStatus::Completed),
        "live hosts complete past the silent member: {report}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "timeouts must fire promptly, not wedge"
    );
    assert!(
        tcp.obs().metrics.counter("net.tx_dropped").get() >= 1,
        "frames to the silent member were dropped, not buffered forever"
    );
}

/// No host can perform the only task: every attempt ends Unallocatable,
/// repair retries, and the problem terminates Failed — the driver
/// returns instead of waiting out the 24h watchdog on a wall clock.
#[test]
fn unallocatable_resolves_into_repair_then_failure_not_a_wedge() {
    let mut tcp = TcpCommunityDriver::build(
        fast_params(),
        vec![
            // Knows how to reach the goal, but nobody serves una-t1.
            HostConfig::new().with_fragment(frag("una-f1", "una-t1", "una-a", "una-c")),
            HostConfig::new().with_fragment(frag("una-f2", "una-t9", "una-x", "una-y")),
        ],
    )
    .unwrap();
    let initiator = HostId(0);
    let started = Instant::now();
    let handle = tcp.submit(initiator, Spec::new(["una-a"], ["una-c"]));
    let report = tcp.run_until_complete(handle);
    assert!(
        matches!(report.status, ProblemStatus::Failed { .. }),
        "must fail terminally, got: {report}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "repair must resolve on timer power alone, promptly"
    );
    let events = tcp.drain_events();
    assert!(events
        .iter()
        .any(|(h, e)| *h == initiator && matches!(e, WorkflowEvent::Failed { .. })));
}

/// The full quarantine story over sockets: a flooding peer is
/// quarantined by the protocol core, the event surfaces, and the
/// transport escalates — the flooder's connections are severed and
/// stay refused.
#[test]
fn quarantine_severs_the_live_socket() {
    let flood = |prefix: &str, input: &str| -> Vec<Fragment> {
        (0..8)
            .map(|i| {
                frag(
                    &format!("{prefix}-f{i}"),
                    &format!("{prefix}-t{i}"),
                    input,
                    &format!("{prefix}-out{i}"),
                )
            })
            .collect()
    };
    let mut flooder_config = HostConfig::new();
    for f in flood("tq-mint-a", "tq-a")
        .into_iter()
        .chain(flood("tq-mint-b", "tq-b"))
    {
        flooder_config = flooder_config.with_fragment(f);
    }
    let mut tcp = TcpCommunityDriver::build(
        fast_params(),
        vec![
            HostConfig::new()
                .with_fragment(frag("tq-f1", "tq-t1", "tq-a", "tq-b"))
                .with_service(service("tq-t2"))
                .with_vocabulary_cap(16)
                .with_max_vocabulary_rejections(2),
            HostConfig::new()
                .with_fragment(frag("tq-f2", "tq-t2", "tq-b", "tq-c"))
                .with_service(service("tq-t1")),
            flooder_config,
        ],
    )
    .unwrap();
    let initiator = HostId(0);
    let flooder = HostId(2);
    let handle = tcp.submit(initiator, Spec::new(["tq-a"], ["tq-c"]));
    let report = tcp.run_until_complete(handle);
    assert!(
        matches!(report.status, ProblemStatus::Completed),
        "honest peers complete despite the flooder: {report}"
    );
    assert!(
        tcp.core(initiator).is_quarantined(flooder),
        "rejections seen: {}",
        tcp.core(initiator).vocabulary_rejections()
    );
    assert!(!tcp.core(initiator).is_quarantined(HostId(1)));
    let events = tcp.drain_events();
    assert!(
        events.iter().any(|(h, e)| *h == initiator
            && matches!(e, WorkflowEvent::PeerQuarantined { peer, .. } if *peer == flooder)),
        "quarantine surfaces as a workflow event"
    );
    // Transport escalation: the initiator's server cut the flooder off.
    assert!(
        tcp.obs().metrics.counter("net.conn_quarantine_drops").get() >= 1,
        "the quarantined peer's connection was severed"
    );
}

/// Clean stop loses no accepted state: a fragment ingested over a live
/// socket (operator plane) is on disk after `shutdown()`, and a core
/// reopened on the same directory restores the identical know-how.
#[test]
fn graceful_shutdown_flushes_accepted_fragments_to_disk() {
    let dir = std::env::temp_dir().join(format!(
        "owms-net-shutdown-{}-{}",
        std::process::id(),
        Instant::now().elapsed().as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();

    let obs = Obs::enabled();
    let mut server = NetServer::new(ServerConfig {
        name: "shutdown-test".into(),
        obs: obs.clone(),
        clock: WallClock::new(),
        // The operator plane is off by default; this test *is* the
        // operator, seeding know-how over the wire under a real budget.
        operator_ingest: Some(64),
        ..ServerConfig::default()
    })
    .unwrap();
    server.add_core(
        0,
        HostId(0),
        HostConfig::new()
            .with_fragment(frag("sdf-f0", "sdf-t0", "sdf-a", "sdf-b"))
            .with_durable_storage(&dir),
        fast_params(),
    );
    let addr = server.listen_addr().unwrap();

    // A raw operator client: handshake, then a fragment over the wire.
    let mut client = TcpStream::connect(addr).unwrap();
    let mut bytes = Vec::new();
    encode_hello(
        &Hello {
            proto: NET_PROTO_VERSION,
            name: "operator".into(),
            listen: String::new(),
            hosts: vec![(0, HostId(9))],
        },
        &mut bytes,
    );
    let injected = frag("sdf-f1", "sdf-t1", "sdf-b", "sdf-c");
    let mut inner = Vec::new();
    openwf_wire::encode_fragment(&injected, &mut inner);
    encode_envelope(0, HostId(9), HostId(0), None, &inner, &mut bytes);
    client.write_all(&bytes).unwrap();
    client.flush().unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.core(0, HostId(0)).fragment_mgr().len() < 2 {
        assert!(Instant::now() < deadline, "fragment never ingested");
        server.poll(Duration::from_millis(20));
    }
    let before = digest(server.core(0, HostId(0)));
    assert_eq!(before.len(), 2, "config fragment + ingested fragment");

    let report = server.shutdown();
    assert_eq!(report.synced_cores, 1);
    assert_eq!(report.sync_errors, 0);

    // Reopen the durable directory in a fresh core: nothing lost.
    let reopened = HostCore::new(HostConfig::new().with_durable_storage(&dir), fast_params());
    assert_eq!(
        digest(&reopened),
        before,
        "clean stop must lose no accepted fragments"
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
