//! Exporters for recorded trace events: JSONL (one event per line) and
//! the Chrome `trace_event` format loadable in `chrome://tracing` or
//! Perfetto, plus a minimal JSON validator used by the CI gate.
//!
//! Both exporters hand-roll JSON (the workspace carries no JSON crate)
//! using the same escaping rules as the bench trajectory files. In the
//! Chrome export each *trace id* becomes a process (`pid`) and each
//! host a thread (`tid`), so one problem's lifecycle lines up as a
//! single row group with per-host lanes; async begin/end events are
//! keyed by the trace id and tolerate interleaved problems on a host.

use std::fmt::Write as _;

use crate::trace::{trace_id_label, SpanPhase, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders events as JSONL: one `{ts_us, host, trace, name, ph, dur_us,
/// detail}` object per line, in recording order.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"ts_us\": {}, \"host\": {}, \"trace\": {}, \"name\": \"{}\", \
             \"ph\": \"{}\", \"dur_us\": {}, \"detail\": \"{}\"}}",
            e.at_us,
            e.host,
            e.trace,
            escape_json(e.name),
            e.phase.tag(),
            e.dur_us,
            escape_json(&e.detail),
        );
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON document. Load the
/// output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    // Metadata: label each trace-id process with the problem identity
    // and each host thread with its host name.
    let mut seen_pids: Vec<u64> = Vec::new();
    let mut seen_lanes: Vec<(u64, u32)> = Vec::new();
    for e in events {
        if !seen_pids.contains(&e.trace) {
            seen_pids.push(e.trace);
            emit(
                format!(
                    "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": 0, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    e.trace,
                    escape_json(&trace_id_label(e.trace)),
                ),
                &mut out,
            );
        }
        if !seen_lanes.contains(&(e.trace, e.host)) {
            seen_lanes.push((e.trace, e.host));
            emit(
                format!(
                    "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \
                     \"args\": {{\"name\": \"host{}\"}}}}",
                    e.trace, e.host, e.host,
                ),
                &mut out,
            );
        }
    }

    for e in events {
        let detail = if e.detail.is_empty() {
            String::new()
        } else {
            format!(", \"args\": {{\"detail\": \"{}\"}}", escape_json(&e.detail))
        };
        let line = match e.phase {
            SpanPhase::Begin | SpanPhase::End => format!(
                "{{\"name\": \"{}\", \"cat\": \"workflow\", \"ph\": \"{}\", \
                 \"id\": \"0x{:x}\", \"ts\": {}, \"pid\": {}, \"tid\": {}{}}}",
                escape_json(e.name),
                if e.phase == SpanPhase::Begin {
                    "b"
                } else {
                    "e"
                },
                e.trace,
                e.at_us,
                e.trace,
                e.host,
                detail,
            ),
            SpanPhase::Instant => format!(
                "{{\"name\": \"{}\", \"cat\": \"workflow\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": {}, \"tid\": {}{}}}",
                escape_json(e.name),
                e.at_us,
                e.trace,
                e.host,
                detail,
            ),
            SpanPhase::Complete => format!(
                "{{\"name\": \"{}\", \"cat\": \"workflow\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": {}{}}}",
                escape_json(e.name),
                e.at_us,
                e.dur_us,
                e.trace,
                e.host,
                detail,
            ),
        };
        emit(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal recursive-descent JSON validator: checks `s` is one
/// well-formed JSON value (with nothing but whitespace after it).
/// Returns the byte offset of the first error.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(*pos),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(*pos),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(*pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), usize> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(*pos)
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(*pos)
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(*pos);
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(*pos),
                }
            }
            0x00..=0x1F => return Err(*pos),
            _ => *pos += 1,
        }
    }
    Err(*pos)
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), usize> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(b, pos) {
        return Err(start);
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(*pos);
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(*pos);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::pack_trace_id;

    fn sample() -> Vec<TraceEvent> {
        let trace = pack_trace_id(2, 1, 0);
        vec![
            TraceEvent {
                at_us: 10,
                host: 2,
                trace,
                name: "problem",
                phase: SpanPhase::Begin,
                dur_us: 0,
                detail: String::new(),
            },
            TraceEvent {
                at_us: 20,
                host: 3,
                trace,
                name: "bid",
                phase: SpanPhase::Instant,
                dur_us: 0,
                detail: "task \"t0\"".into(),
            },
            TraceEvent {
                at_us: 30,
                host: 3,
                trace,
                name: "task",
                phase: SpanPhase::Complete,
                dur_us: 500,
                detail: String::new(),
            },
            TraceEvent {
                at_us: 40,
                host: 2,
                trace,
                name: "problem",
                phase: SpanPhase::End,
                dur_us: 0,
                detail: String::new(),
            },
        ]
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_line() {
        let jsonl = to_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in lines {
            validate_json(line).unwrap_or_else(|at| panic!("bad JSONL at byte {at}: {line}"));
        }
        assert!(jsonl.contains("\"ph\": \"X\""));
        assert!(jsonl.contains("task \\\"t0\\\""));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_metadata_and_phases() {
        let chrome = to_chrome_trace(&sample());
        validate_json(&chrome).unwrap_or_else(|at| panic!("bad chrome trace at byte {at}"));
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"process_name\""));
        assert!(chrome.contains("\"thread_name\""));
        assert!(chrome.contains("\"ph\": \"b\""));
        assert!(chrome.contains("\"ph\": \"e\""));
        assert!(chrome.contains("\"ph\": \"i\""));
        assert!(chrome.contains("\"dur\": 500"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let chrome = to_chrome_trace(&[]);
        validate_json(&chrome).expect("empty trace document must parse");
        assert_eq!(to_jsonl(&[]), "");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, -2.5e3, true, null, \"x\\n\"]}").expect("valid");
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }
}
