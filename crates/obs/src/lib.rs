//! `openwf-obs`: the observability layer for the open-workflow stack.
//!
//! Two collectors, one handle:
//!
//! - [`MetricsRegistry`] — lock-free named counters, gauges, and
//!   fixed-bucket histograms, snapshot-able into the serde value tree.
//! - [`TraceSink`] — causal workflow trace events keyed by
//!   `(trace id, host)` with virtual-time timestamps, exportable as
//!   JSONL or Chrome `trace_event` JSON ([`export`]).
//!
//! Both are *opt-in*: the [`Obs::disabled`] default hands out no-op
//! handles whose record calls are a single branch, and enabling
//! collection must never perturb a deterministic run — collectors draw
//! no randomness, arm no timers, and send nothing. The scenario layer's
//! observability gate property-tests exactly that: soak outcomes are
//! bit-identical with collectors on or off.
//!
//! This crate is std-only and sits below every other layer (it depends
//! only on the serde shim), so core, wire, simnet, and runtime can all
//! thread the same registry through without dependency cycles.

mod export;
mod metrics;
mod trace;

pub use export::{to_chrome_trace, to_jsonl, validate_json};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, HISTOGRAM_BUCKETS};
pub use trace::{
    flight_tail, pack_trace_id, trace_id_label, unpack_trace_id, SpanPhase, TraceEvent, TraceSink,
};

/// The combined observability handle threaded through `HostConfig` and
/// the simulator: a metrics registry plus a trace sink, cloned (shared)
/// into every layer that records. `Default` is fully disabled.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Named metrics (counters / gauges / histograms).
    pub metrics: MetricsRegistry,
    /// Causal workflow trace events.
    pub trace: TraceSink,
}

impl Obs {
    /// Enables both collectors.
    pub fn enabled() -> Self {
        Self {
            metrics: MetricsRegistry::new(),
            trace: TraceSink::new(),
        }
    }

    /// Disables both collectors (same as `Default`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether either collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.trace.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_disabled() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        assert!(!obs.metrics.is_enabled());
        assert!(!obs.trace.is_enabled());
    }

    #[test]
    fn enabled_obs_shares_storage_across_clones() {
        let obs = Obs::enabled();
        assert!(obs.is_enabled());
        let clone = obs.clone();
        clone.metrics.counter("x").inc();
        assert_eq!(obs.metrics.counter("x").get(), 1);
        clone.trace.record(TraceEvent {
            at_us: 1,
            host: 0,
            trace: 0,
            name: "e",
            phase: SpanPhase::Instant,
            dur_us: 0,
            detail: String::new(),
        });
        assert_eq!(obs.trace.len(), 1);
    }
}
