//! Lock-free metrics registry: named counters, gauges, and fixed-bucket
//! histograms backed by atomics.
//!
//! The registry has two states. A *disabled* registry (the default) hands
//! out no-op handles: every increment is a single `Option` branch, no
//! allocation, no atomics, no locks — cheap enough to leave on every hot
//! path unconditionally. An *enabled* registry interns each name once
//! under a mutex and thereafter updates are plain atomic adds; handles
//! are `Clone` and can be resolved ahead of time so steady-state code
//! never touches the name table.
//!
//! [`MetricsRegistry::snapshot`] renders the whole registry into the
//! serde shim's [`Value`] tree (sorted by name) so callers can diff,
//! render, or embed it without this crate prescribing a format.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use serde::Value;

/// Number of power-of-two histogram buckets. Bucket `i` counts samples
/// whose bit length is `i` (bucket 0 holds zeros, bucket 1 holds 1,
/// bucket 2 holds 2–3, …); the last bucket absorbs everything from
/// `2^30` up, which at microsecond resolution is anything over ~18
/// minutes — beyond any virtual-time span the simulator produces.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Recover a mutex guard even if a panicking thread poisoned the lock:
/// the protected data is a name table of atomics, which has no
/// invariant a partial update could break.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramInner>>>,
}

/// A monotonically increasing counter. Disabled handles (from a
/// disabled registry) make [`Counter::add`] a no-op.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A signed gauge, updated by deltas so several hosts can share one
/// registry name and the stored value stays their sum.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Adds a (possibly negative) delta to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Index of the power-of-two bucket for `v`: its bit length, clamped.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramInner>>);

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded samples (0 for a disabled handle).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }
}

/// The registry: a named family of counters, gauges, and histograms.
///
/// Cloning shares the underlying storage. [`MetricsRegistry::default`]
/// (and [`MetricsRegistry::disabled`]) produce the no-op variant whose
/// handles never record anything.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for RegistryInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryInner").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// An enabled registry with live storage.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// The no-op registry: all handles it returns are disabled.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock_unpoisoned(&inner.counters)
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolves (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock_unpoisoned(&inner.gauges)
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Resolves (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            Arc::clone(
                lock_unpoisoned(&inner.histograms)
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Snapshots every registered metric into a serde [`Value`] map:
    /// `{counters: {name: u64}, gauges: {name: i64}, histograms:
    /// {name: {count, sum, buckets}}}`, all sorted by name.
    pub fn snapshot(&self) -> Value {
        let Some(inner) = &self.inner else {
            return Value::Map(Vec::new());
        };
        let counters = lock_unpoisoned(&inner.counters)
            .iter()
            .map(|(name, cell)| {
                (
                    Value::Str(name.clone()),
                    Value::U64(cell.load(Ordering::Relaxed)),
                )
            })
            .collect();
        let gauges = lock_unpoisoned(&inner.gauges)
            .iter()
            .map(|(name, cell)| {
                (
                    Value::Str(name.clone()),
                    Value::I64(cell.load(Ordering::Relaxed)),
                )
            })
            .collect();
        let histograms = lock_unpoisoned(&inner.histograms)
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|b| Value::U64(b.load(Ordering::Relaxed)))
                    .collect();
                (
                    Value::Str(name.clone()),
                    Value::Map(vec![
                        (
                            Value::Str("count".into()),
                            Value::U64(h.count.load(Ordering::Relaxed)),
                        ),
                        (
                            Value::Str("sum".into()),
                            Value::U64(h.sum.load(Ordering::Relaxed)),
                        ),
                        (Value::Str("buckets".into()), Value::Seq(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            (Value::Str("counters".into()), Value::Map(counters)),
            (Value::Str("gauges".into()), Value::Map(gauges)),
            (Value::Str("histograms".into()), Value::Map(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = reg.gauge("y");
        g.add(-3);
        assert_eq!(g.get(), 0);
        let h = reg.histogram("z");
        h.record(7);
        assert_eq!((h.count(), h.sum()), (0, 0));
        assert_eq!(reg.snapshot(), Value::Map(Vec::new()));
    }

    #[test]
    fn same_name_resolves_to_shared_storage() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("net.sent");
        let b = reg.clone().counter("net.sent");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let g = reg.gauge("bytes");
        g.add(10);
        reg.gauge("bytes").add(-4);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lag");
        for v in [0, 1, 3, 900] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 904);
    }

    #[test]
    fn snapshot_renders_sorted_value_tree() {
        let reg = MetricsRegistry::new();
        reg.counter("b").add(2);
        reg.counter("a").inc();
        reg.gauge("g").add(-1);
        reg.histogram("h").record(5);
        let Value::Map(top) = reg.snapshot() else {
            panic!("snapshot must be a map");
        };
        assert_eq!(top.len(), 3);
        let Value::Map(counters) = &top[0].1 else {
            panic!("counters must be a map");
        };
        assert_eq!(
            counters[0],
            (Value::Str("a".into()), Value::U64(1)),
            "counter names must sort"
        );
        assert_eq!(counters[1], (Value::Str("b".into()), Value::U64(2)));
    }

    #[test]
    fn poisoned_name_table_recovers() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        let _ = std::thread::spawn(move || {
            let _c = reg2.counter("before-panic");
            panic!("poison the registry");
        })
        .join();
        // A poisoned mutex must not propagate the panic.
        reg.counter("after-panic").inc();
        assert_eq!(reg.counter("after-panic").get(), 1);
    }
}
