//! Causal workflow tracing: a compact span/event record keyed by
//! `(trace id, host)` with virtual-time timestamps, and a shared sink
//! that collects them across hosts.
//!
//! A *trace id* identifies one problem attempt; [`pack_trace_id`] packs
//! the `(initiator, seq, attempt)` triple of a runtime `ProblemId` into
//! a single `u64` so the id can ride in messages and index exporters
//! without this crate depending on runtime types. Events from every
//! host carrying the same trace id stitch into one cross-host timeline
//! (see [`crate::export`]).
//!
//! Like the metrics registry, a disabled sink (the default) is a no-op:
//! [`TraceSink::is_enabled`] lets hot paths skip building event details
//! entirely, and recording through a disabled sink does nothing.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Packs a problem identity into a trace-correlation id:
/// `initiator << 40 | seq << 8 | attempt`. With initiators below 2^13
/// the result stays under 2^53, so it survives a round trip through
/// JSON doubles (Chrome's trace viewer parses `pid` that way).
pub fn pack_trace_id(initiator: u32, seq: u32, attempt: u32) -> u64 {
    (u64::from(initiator) << 40) | (u64::from(seq) << 8) | u64::from(attempt & 0xFF)
}

/// Inverse of [`pack_trace_id`]: `(initiator, seq, attempt)`.
pub fn unpack_trace_id(trace: u64) -> (u32, u32, u32) {
    (
        (trace >> 40) as u32,
        ((trace >> 8) & 0xFFFF_FFFF) as u32,
        (trace & 0xFF) as u32,
    )
}

/// Renders a trace id in the runtime's `ProblemId` debug shape.
pub fn trace_id_label(trace: u64) -> String {
    let (initiator, seq, attempt) = unpack_trace_id(trace);
    format!("p{initiator}/{seq}#{attempt}")
}

/// Phase of a span event, mirroring the Chrome `trace_event` phases we
/// export: async begin/end pairs (which tolerate interleaving across
/// problems on one host), point-in-time instants, and complete spans
/// with a known duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanPhase {
    /// Opens a span (`ph: "b"`, async begin keyed by trace id).
    Begin,
    /// Closes a span (`ph: "e"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A span whose duration is known up front (`ph: "X"`); the event's
    /// `dur_us` carries the length.
    Complete,
}

impl SpanPhase {
    /// One-letter tag used by the JSONL exporter.
    pub fn tag(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "I",
            SpanPhase::Complete => "X",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time in microseconds since simulation start.
    pub at_us: u64,
    /// Host the event happened on.
    pub host: u32,
    /// Trace-correlation id (see [`pack_trace_id`]); 0 when the event
    /// is not tied to a problem.
    pub trace: u64,
    /// Span or event name, e.g. `"construct"`, `"announce"`.
    pub name: &'static str,
    /// Event phase.
    pub phase: SpanPhase,
    /// Duration in microseconds for [`SpanPhase::Complete`] events.
    pub dur_us: u64,
    /// Free-form detail (empty when the caller had nothing to add).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.at_us as f64 / 1_000_000.0;
        write!(
            f,
            "[t={secs:.6}s] host{} {} {} {}",
            self.host,
            trace_id_label(self.trace),
            self.phase.tag(),
            self.name,
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Recover the event buffer even if a panicking recorder poisoned the
/// lock: a `Vec` push has no cross-element invariant to corrupt.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A shared, clone-to-share sink of [`TraceEvent`]s. The default
/// (disabled) sink records nothing.
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    events: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

impl TraceSink {
    /// An enabled sink with live storage.
    pub fn new() -> Self {
        Self {
            events: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// The no-op sink.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether recording does anything. Hot paths should check this
    /// before building an event (and especially its `detail` string).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Appends one event (no-op when disabled).
    pub fn record(&self, event: TraceEvent) {
        if let Some(events) = &self.events {
            lock_unpoisoned(events).push(event);
        }
    }

    /// Copies out every recorded event in arrival order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events
            .as_ref()
            .map_or_else(Vec::new, |events| lock_unpoisoned(events).clone())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events
            .as_ref()
            .map_or(0, |events| lock_unpoisoned(events).len())
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        if let Some(events) = &self.events {
            lock_unpoisoned(events).clear();
        }
    }
}

/// Flight-recorder tail: the last `limit` events involving `host`,
/// rendered one per line. This is what the soak harness dumps for each
/// host implicated in an invariant failure.
pub fn flight_tail(events: &[TraceEvent], host: u32, limit: usize) -> String {
    let involved: Vec<&TraceEvent> = events.iter().filter(|e| e.host == host).collect();
    let skip = involved.len().saturating_sub(limit);
    let mut out = String::new();
    for event in &involved[skip..] {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, host: u32, name: &'static str) -> TraceEvent {
        TraceEvent {
            at_us,
            host,
            trace: pack_trace_id(host, 1, 0),
            name,
            phase: SpanPhase::Instant,
            dur_us: 0,
            detail: String::new(),
        }
    }

    #[test]
    fn trace_id_round_trips() {
        let id = pack_trace_id(7, 123_456, 3);
        assert_eq!(unpack_trace_id(id), (7, 123_456, 3));
        assert_eq!(trace_id_label(id), "p7/123456#3");
        // Distinct attempts of the same problem get distinct ids.
        assert_ne!(pack_trace_id(7, 9, 0), pack_trace_id(7, 9, 1));
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.record(ev(1, 0, "x"));
        assert!(sink.is_empty());
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = TraceSink::new();
        let other = sink.clone();
        other.record(ev(1, 0, "a"));
        sink.record(ev(2, 1, "b"));
        assert_eq!(sink.len(), 2);
        assert_eq!(other.snapshot()[1].name, "b");
        sink.clear();
        assert!(other.is_empty());
    }

    #[test]
    fn poisoned_sink_recovers() {
        let sink = TraceSink::new();
        let poisoner = sink.clone();
        let _ = std::thread::spawn(move || {
            poisoner.record(ev(1, 0, "pre"));
            panic!("poison the sink");
        })
        .join();
        sink.record(ev(2, 0, "post"));
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn flight_tail_filters_by_host_and_truncates() {
        let events = vec![ev(1, 0, "a"), ev(2, 1, "b"), ev(3, 0, "c"), ev(4, 0, "d")];
        let tail = flight_tail(&events, 0, 2);
        assert!(!tail.contains(" a"));
        assert!(!tail.contains("host1"));
        assert!(tail.contains("c"));
        assert!(tail.ends_with("d\n"));
    }

    #[test]
    fn event_display_is_compact() {
        let mut event = ev(1_500_000, 3, "announce");
        event.detail = "wave 0".into();
        assert_eq!(
            event.to_string(),
            "[t=1.500000s] host3 p3/1#0 I announce (wave 0)"
        );
    }
}
