//! The Auction Manager: task allocation by sealed firm bids.
//!
//! §3.2: "The auction manager selects the bid that best matches the
//! selection criterion and makes a tentative task allocation to that
//! participant. As new bids arrive, the tentative allocation is
//! continually re-evaluated. A final decision is made when the deadline
//! given by the participant who has the current tentative allocation has
//! arrived. The auction manager waits as long as possible … but once some
//! participant has been found who can do a task, the task is guaranteed
//! to be allocated."
//!
//! One refinement: when *every* community member has responded (bid or
//! decline), no better bid can ever arrive, so the manager decides
//! immediately instead of idling until the deadline. This keeps the §5
//! timing experiments dominated by communication, as in the paper.

use std::collections::HashMap;
use std::fmt;

use openwf_core::TaskId;
use openwf_simnet::{HostId, SimTime};

use crate::auction_part::Bid;

use crate::metadata::{Assignment, TaskMetadata};

/// Selection criterion (§3.2): most specialized first (fewest services),
/// then earliest start, then lowest host id for determinism.
pub fn better_bid(a: &(HostId, Bid), b: &(HostId, Bid)) -> bool {
    let ka = (a.1.specialization, a.1.start, a.0);
    let kb = (b.1.specialization, b.1.start, b.0);
    ka < kb
}

/// State of one task's auction.
#[derive(Clone, Debug)]
pub struct TaskAuction {
    /// Metadata sent with the call for bids.
    pub meta: TaskMetadata,
    /// Hosts that answered (bid or decline).
    responded: Vec<HostId>,
    /// Current tentative winner.
    best: Option<(HostId, Bid)>,
    /// Final decision, if made.
    decided: Option<(HostId, Assignment)>,
}

impl TaskAuction {
    fn new(meta: TaskMetadata) -> Self {
        TaskAuction {
            meta,
            responded: Vec::new(),
            best: None,
            decided: None,
        }
    }

    /// The tentative winner (before decision).
    pub fn tentative(&self) -> Option<&(HostId, Bid)> {
        self.best.as_ref()
    }

    /// The final decision.
    pub fn decision(&self) -> Option<&(HostId, Assignment)> {
        self.decided.as_ref()
    }
}

/// What the host driver should do after an auction state change.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AuctionAction {
    /// Nothing to do yet.
    None,
    /// Arm (or re-arm) a decision timer for this task at the given time
    /// (the current best bid's deadline).
    ArmDeadline(TaskId, SimTime),
    /// The task is finally allocated; notify the winner.
    Award(TaskId, HostId, Assignment),
    /// Every host declined: the task cannot be allocated.
    Unallocatable(TaskId),
}

/// Auction state for all tasks of one problem.
#[derive(Debug)]
pub struct ProblemAuctions {
    community_size: usize,
    auctions: HashMap<TaskId, TaskAuction>,
    undecided: usize,
}

impl ProblemAuctions {
    /// Opens auctions for `tasks` among `community_size` hosts (including
    /// the initiator itself, which bids through the same protocol).
    pub fn open(tasks: Vec<(TaskId, TaskMetadata)>, community_size: usize) -> Self {
        let undecided = tasks.len();
        ProblemAuctions {
            community_size,
            auctions: tasks
                .into_iter()
                .map(|(t, m)| (t, TaskAuction::new(m)))
                .collect(),
            undecided,
        }
    }

    /// Number of tasks still awaiting a decision.
    pub fn undecided(&self) -> usize {
        self.undecided
    }

    /// True when every task has been decided.
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }

    /// All final `(task, host, assignment)` decisions, in task-name order.
    pub fn decisions(&self) -> Vec<(TaskId, HostId, Assignment)> {
        let mut out: Vec<(TaskId, HostId, Assignment)> = self
            .auctions
            .iter()
            .filter_map(|(t, a)| {
                a.decided
                    .as_ref()
                    .map(|(h, asg)| (t.clone(), *h, asg.clone()))
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Looks up a task auction.
    pub fn auction(&self, task: &TaskId) -> Option<&TaskAuction> {
        self.auctions.get(task)
    }

    /// Records a bid. Returns the driver action.
    pub fn on_bid(&mut self, task: &TaskId, from: HostId, bid: Bid) -> AuctionAction {
        let Some(a) = self.auctions.get_mut(task) else {
            return AuctionAction::None;
        };
        if a.decided.is_some() {
            // Late bid after decision: firm-bid rules say the bidder holds
            // its slot until the deadline; it will expire it on its own.
            return AuctionAction::None;
        }
        if a.responded.contains(&from) {
            // Duplicate delivery of a counted response: counting it again
            // could hit community_size early and decide before honest
            // bids arrive.
            return AuctionAction::None;
        }
        a.responded.push(from);
        let cand = (from, bid);
        let improved = match &a.best {
            None => true,
            Some(current) => better_bid(&cand, current),
        };
        if improved {
            a.best = Some(cand);
        }
        if a.responded.len() >= self.community_size {
            return self.decide(task, false);
        }
        if improved {
            let deadline = a.best.as_ref().expect("just set").1.deadline;
            return AuctionAction::ArmDeadline(task.clone(), deadline);
        }
        AuctionAction::None
    }

    /// Records a decline. Returns the driver action.
    pub fn on_decline(&mut self, task: &TaskId, from: HostId) -> AuctionAction {
        let Some(a) = self.auctions.get_mut(task) else {
            return AuctionAction::None;
        };
        if a.decided.is_some() {
            return AuctionAction::None;
        }
        if a.responded.contains(&from) {
            return AuctionAction::None;
        }
        a.responded.push(from);
        if a.responded.len() >= self.community_size {
            return self.decide(task, false);
        }
        AuctionAction::None
    }

    /// Forces a decision on every undecided auction, in task order: the
    /// allocation-phase timeout fired, so waiting longer cannot help.
    /// Tasks with a bid award to the best so far; tasks with none become
    /// unallocatable (feeding the repair path) — even with responses
    /// still outstanding, because on a lossy network those responses may
    /// never arrive and the timeout is the last timer this problem has.
    pub fn force_decide_all(&mut self) -> Vec<AuctionAction> {
        let mut undecided: Vec<TaskId> = self
            .auctions
            .iter()
            .filter(|(_, a)| a.decided.is_none())
            .map(|(t, _)| t.clone())
            .collect();
        undecided.sort();
        undecided
            .into_iter()
            .map(|t| self.decide(&t, true))
            .collect()
    }

    /// The decision timer fired for `task` (the tentative winner's
    /// deadline arrived): decide now if not already decided.
    pub fn on_deadline(&mut self, task: &TaskId) -> AuctionAction {
        let Some(a) = self.auctions.get(task) else {
            return AuctionAction::None;
        };
        if a.decided.is_some() {
            return AuctionAction::None;
        }
        self.decide(task, false)
    }

    fn decide(&mut self, task: &TaskId, forced: bool) -> AuctionAction {
        let a = self.auctions.get_mut(task).expect("auction exists");
        debug_assert!(a.decided.is_none());
        match a.best.take() {
            Some((host, bid)) => {
                let assignment = Assignment {
                    host,
                    start: bid.start,
                    // The slot covers travel + service execution.
                    duration: bid.travel + bid.duration,
                    location: a.meta.location.clone(),
                };
                a.decided = Some((host, assignment.clone()));
                self.undecided -= 1;
                AuctionAction::Award(task.clone(), host, assignment)
            }
            None => {
                // No bid. Normally wait for the stragglers, but a forced
                // decision is the final word on this problem: mark the
                // task unallocatable so repair can run.
                if forced || a.responded.len() >= self.community_size {
                    self.undecided -= 1;
                    AuctionAction::Unallocatable(task.clone())
                } else {
                    AuctionAction::None
                }
            }
        }
    }
}

impl fmt::Display for ProblemAuctions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} auctions, {} undecided",
            self.auctions.len(),
            self.undecided
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::Label;
    use openwf_simnet::SimDuration;

    fn meta() -> TaskMetadata {
        TaskMetadata {
            level: 0,
            inputs: vec![Label::new("a")],
            outputs: vec![Label::new("b")],
            location: None,
            earliest_start: SimTime::ZERO,
        }
    }

    fn bid(spec: u32, start_us: u64, deadline_us: u64) -> Bid {
        Bid {
            start: SimTime::from_micros(start_us),
            travel: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            specialization: spec,
            deadline: SimTime::from_micros(deadline_us),
        }
    }

    fn open_one(community: usize) -> (ProblemAuctions, TaskId) {
        let t = TaskId::new("t");
        (
            ProblemAuctions::open(vec![(t.clone(), meta())], community),
            t,
        )
    }

    #[test]
    fn specialization_wins_over_speed() {
        // Generalist (5 services) bids early; specialist (1 service) later
        // start. Specialist must win.
        let (mut pa, t) = open_one(2);
        let a1 = pa.on_bid(&t, HostId(0), bid(5, 0, 1_000));
        assert!(matches!(a1, AuctionAction::ArmDeadline(..)));
        let a2 = pa.on_bid(&t, HostId(1), bid(1, 500, 2_000));
        match a2 {
            AuctionAction::Award(task, host, _) => {
                assert_eq!(task, t);
                assert_eq!(host, HostId(1), "specialist preferred");
            }
            other => panic!("expected award, got {other:?}"),
        }
        assert!(pa.all_decided());
    }

    #[test]
    fn earlier_start_breaks_specialization_ties() {
        let (mut pa, t) = open_one(2);
        pa.on_bid(&t, HostId(0), bid(2, 900, 1_000));
        let a = pa.on_bid(&t, HostId(1), bid(2, 100, 1_000));
        match a {
            AuctionAction::Award(_, host, asg) => {
                assert_eq!(host, HostId(1));
                assert_eq!(asg.start, SimTime::from_micros(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn all_responses_trigger_immediate_decision() {
        let (mut pa, t) = open_one(3);
        pa.on_bid(&t, HostId(0), bid(1, 0, 10_000));
        pa.on_decline(&t, HostId(1));
        let a = pa.on_decline(&t, HostId(2));
        assert!(matches!(a, AuctionAction::Award(_, h, _) if h == HostId(0)));
    }

    #[test]
    fn deadline_forces_decision_with_partial_responses() {
        let (mut pa, t) = open_one(5);
        let a = pa.on_bid(&t, HostId(2), bid(3, 0, 1_000));
        assert_eq!(
            a,
            AuctionAction::ArmDeadline(t.clone(), SimTime::from_micros(1_000))
        );
        let a = pa.on_deadline(&t);
        assert!(matches!(a, AuctionAction::Award(_, h, _) if h == HostId(2)));
        // A later deadline timer is ignored.
        assert_eq!(pa.on_deadline(&t), AuctionAction::None);
    }

    #[test]
    fn forced_decision_with_partial_responses_and_no_bid_is_unallocatable() {
        // 3 of 5 hosts declined, the rest lost on the wire: the timeout
        // backstop must still resolve the task instead of wedging the
        // problem in Allocating with no timer left.
        let (mut pa, t) = open_one(5);
        pa.on_decline(&t, HostId(0));
        pa.on_decline(&t, HostId(1));
        pa.on_decline(&t, HostId(3));
        let actions = pa.force_decide_all();
        assert_eq!(actions, vec![AuctionAction::Unallocatable(t)]);
        assert!(pa.all_decided());
    }

    #[test]
    fn all_declines_is_unallocatable() {
        let (mut pa, t) = open_one(2);
        pa.on_decline(&t, HostId(0));
        let a = pa.on_decline(&t, HostId(1));
        assert_eq!(a, AuctionAction::Unallocatable(t.clone()));
        assert!(pa.all_decided(), "unallocatable still resolves the task");
        assert!(pa.decisions().is_empty());
    }

    #[test]
    fn improved_bid_rearms_to_new_deadline() {
        let (mut pa, t) = open_one(5);
        pa.on_bid(&t, HostId(0), bid(5, 0, 1_000));
        let a = pa.on_bid(&t, HostId(1), bid(1, 0, 9_000));
        assert_eq!(
            a,
            AuctionAction::ArmDeadline(t.clone(), SimTime::from_micros(9_000)),
            "better bid re-arms with its own deadline"
        );
        // Worse bid does not re-arm.
        let a = pa.on_bid(&t, HostId(2), bid(4, 0, 50));
        assert_eq!(a, AuctionAction::None);
    }

    #[test]
    fn late_bids_after_decision_are_ignored() {
        let (mut pa, t) = open_one(2);
        pa.on_bid(&t, HostId(0), bid(1, 0, 1_000));
        pa.on_decline(&t, HostId(1)); // decides
        let a = pa.on_bid(&t, HostId(1), bid(0, 0, 2_000));
        assert_eq!(a, AuctionAction::None);
        assert_eq!(pa.decisions()[0].1, HostId(0));
    }

    #[test]
    fn decisions_sorted_by_task() {
        let tasks = vec![
            (TaskId::new("zeta"), meta()),
            (TaskId::new("alpha"), meta()),
        ];
        let mut pa = ProblemAuctions::open(tasks, 1);
        pa.on_bid(&TaskId::new("zeta"), HostId(0), bid(1, 0, 100));
        pa.on_bid(&TaskId::new("alpha"), HostId(0), bid(1, 0, 100));
        let d = pa.decisions();
        assert_eq!(d[0].0, TaskId::new("alpha"));
        assert_eq!(d[1].0, TaskId::new("zeta"));
    }
}
