//! The Auction Participation Manager: bidding on tasks.
//!
//! §3.2: "The participants compare the task's required time, location, and
//! service with their own capabilities and availability. If a participant
//! can commit to performing a task, it submits a firm bid on that task …
//! The bid includes ranking information such as the degree to which the
//! participant is specialized for the task in question. … Participants
//! also submit a deadline for a response from the auction manager based on
//! their schedule."
//!
//! Because bids are **firm**, the participation manager places a tentative
//! *hold* on the schedule slot it bid; the hold either converts into a
//! real commitment on Award or expires shortly after the bid's deadline
//! (by which time the auction manager must have decided). This is the
//! "complex interactions and state tracking" §4.2 attributes to this
//! component.

use std::collections::HashMap;
use std::fmt;

use openwf_core::TaskId;
use openwf_simnet::{SimDuration, SimTime};

use crate::messages::ProblemId;
use crate::metadata::TaskMetadata;
use crate::params::RuntimeParams;
use crate::prefs::Preferences;
use crate::schedule::{Commitment, ScheduleManager};
use crate::service::ServiceManager;

/// A firm bid for one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bid {
    /// Committed slot start (travel begins here).
    pub start: SimTime,
    /// Travel portion at the head of the slot.
    pub travel: SimDuration,
    /// Service execution duration.
    pub duration: SimDuration,
    /// Specialization rank: the total number of services the bidder
    /// offers. **Lower is better** — scheduling a narrowly specialized
    /// participant "removes a larger number of services from the
    /// community's resource pool" when a generalist is taken instead.
    pub specialization: u32,
    /// The bidder's response deadline: the auction manager must decide by
    /// this time.
    pub deadline: SimTime,
}

/// Outcome of considering a call for bids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BidDecision {
    /// Submit this bid (a hold was placed on the schedule).
    Submit(Bid),
    /// Cannot or will not serve the task.
    Decline(DeclineReason),
}

/// Why a host declined a call for bids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeclineReason {
    /// No service implements the task.
    NoService,
    /// Preferences refuse the task or the commitment budget is spent.
    Unwilling,
    /// The required location is unreachable.
    Unreachable,
}

impl fmt::Display for DeclineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclineReason::NoService => f.write_str("no matching service"),
            DeclineReason::Unwilling => f.write_str("not willing"),
            DeclineReason::Unreachable => f.write_str("location unreachable"),
        }
    }
}

/// Per-host bidding state.
#[derive(Debug, Default)]
pub struct AuctionParticipationManager {
    /// Outstanding holds: bids submitted but not yet awarded/expired.
    holds: HashMap<(ProblemId, TaskId), Bid>,
}

impl AuctionParticipationManager {
    /// Creates an idle participation manager.
    pub fn new() -> Self {
        AuctionParticipationManager::default()
    }

    /// Number of outstanding (unresolved) bids.
    pub fn outstanding(&self) -> usize {
        self.holds.len()
    }

    /// Considers a call for bids against local capabilities, schedule and
    /// preferences. On `Submit`, a tentative hold has been committed to
    /// `schedule`; the caller must later call [`Self::on_award`] or
    /// [`Self::expire_hold`].
    #[allow(clippy::too_many_arguments)] // one argument per §3.2 availability condition
    pub fn consider(
        &mut self,
        problem: ProblemId,
        task: &TaskId,
        meta: &TaskMetadata,
        now: SimTime,
        services: &ServiceManager,
        schedule: &mut ScheduleManager,
        prefs: &Preferences,
        params: &RuntimeParams,
    ) -> BidDecision {
        let Some(service) = services.describe(task) else {
            return BidDecision::Decline(DeclineReason::NoService);
        };
        if !prefs.is_willing(task, schedule.commitment_count()) {
            return BidDecision::Decline(DeclineReason::Unwilling);
        }
        // The task's required location wins over the service's default.
        let location = meta.location.clone().or_else(|| service.location.clone());
        let earliest = meta.earliest_start.max(now);
        let Some((start, travel)) =
            schedule.earliest_slot(earliest, service.duration, location.as_deref())
        else {
            return BidDecision::Decline(DeclineReason::Unreachable);
        };
        let bid = Bid {
            start,
            travel,
            duration: service.duration,
            specialization: services.service_count() as u32,
            deadline: now + params.bid_patience,
        };
        // Firm bid ⇒ hold the slot.
        schedule.commit(Commitment {
            problem,
            task: task.clone(),
            start,
            end: start + travel + service.duration,
            travel,
            location,
        });
        self.holds.insert((problem, task.clone()), bid.clone());
        BidDecision::Submit(bid)
    }

    /// The task was awarded to this host: the hold becomes a firm
    /// commitment (it is already in the schedule; we just stop tracking it
    /// as tentative). Returns the original bid.
    pub fn on_award(&mut self, problem: ProblemId, task: &TaskId) -> Option<Bid> {
        self.holds.remove(&(problem, task.clone()))
    }

    /// The bid's deadline passed without an award: release the held slot.
    /// Returns `true` if a hold existed.
    pub fn expire_hold(
        &mut self,
        problem: ProblemId,
        task: &TaskId,
        schedule: &mut ScheduleManager,
    ) -> bool {
        if self.holds.remove(&(problem, task.clone())).is_some() {
            schedule.release_task(problem, task);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::Label;
    use openwf_simnet::HostId;

    fn pid() -> ProblemId {
        ProblemId::new(HostId(0), 0)
    }

    fn meta() -> TaskMetadata {
        TaskMetadata {
            level: 0,
            inputs: vec![Label::new("a")],
            outputs: vec![Label::new("b")],
            location: None,
            earliest_start: SimTime::ZERO,
        }
    }

    fn services_with(task: &str) -> ServiceManager {
        let mut s = ServiceManager::new();
        s.register(crate::service::ServiceDescription::new(
            task,
            SimDuration::from_secs(60),
        ));
        s
    }

    #[test]
    fn capable_host_bids_and_holds_slot() {
        let mut apm = AuctionParticipationManager::new();
        let services = services_with("t");
        let mut schedule = ScheduleManager::unlocated();
        let d = apm.consider(
            pid(),
            &TaskId::new("t"),
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        );
        let BidDecision::Submit(bid) = d else {
            panic!("expected a bid, got {d:?}")
        };
        assert_eq!(bid.specialization, 1);
        assert_eq!(bid.duration, SimDuration::from_secs(60));
        assert_eq!(schedule.commitment_count(), 1, "slot held");
        assert_eq!(apm.outstanding(), 1);
    }

    #[test]
    fn incapable_host_declines() {
        let mut apm = AuctionParticipationManager::new();
        let services = ServiceManager::new();
        let mut schedule = ScheduleManager::unlocated();
        let d = apm.consider(
            pid(),
            &TaskId::new("t"),
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        );
        assert_eq!(d, BidDecision::Decline(DeclineReason::NoService));
        assert_eq!(schedule.commitment_count(), 0);
    }

    #[test]
    fn unwilling_host_declines() {
        let mut apm = AuctionParticipationManager::new();
        let services = services_with("t");
        let mut schedule = ScheduleManager::unlocated();
        let prefs = Preferences::willing().refusing("t");
        let d = apm.consider(
            pid(),
            &TaskId::new("t"),
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &prefs,
            &RuntimeParams::default(),
        );
        assert_eq!(d, BidDecision::Decline(DeclineReason::Unwilling));
    }

    #[test]
    fn second_bid_slots_after_first_hold() {
        let mut apm = AuctionParticipationManager::new();
        let services = services_with("t");
        let mut schedule = ScheduleManager::unlocated();
        let b1 = match apm.consider(
            pid(),
            &TaskId::new("t"),
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        ) {
            BidDecision::Submit(b) => b,
            other => panic!("{other:?}"),
        };
        // A different problem's task also wants a slot.
        let other = ProblemId::new(HostId(1), 5);
        let b2 = match apm.consider(
            other,
            &TaskId::new("t"),
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        ) {
            BidDecision::Submit(b) => b,
            other => panic!("{other:?}"),
        };
        assert!(
            b2.start >= b1.start + b1.travel + b1.duration,
            "no double-booking"
        );
    }

    #[test]
    fn award_converts_hold_and_expire_releases() {
        let mut apm = AuctionParticipationManager::new();
        let services = services_with("t");
        let mut schedule = ScheduleManager::unlocated();
        let task = TaskId::new("t");
        let _ = apm.consider(
            pid(),
            &task,
            &meta(),
            SimTime::ZERO,
            &services,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        );
        assert!(apm.on_award(pid(), &task).is_some());
        assert_eq!(apm.outstanding(), 0);
        assert_eq!(schedule.commitment_count(), 1, "commitment stays");

        // New bid on another task, then expire it.
        let task2 = TaskId::new("t2");
        let mut services2 = ServiceManager::new();
        services2.register(crate::service::ServiceDescription::new(
            "t2",
            SimDuration::from_secs(1),
        ));
        let _ = apm.consider(
            pid(),
            &task2,
            &meta(),
            SimTime::ZERO,
            &services2,
            &mut schedule,
            &Preferences::willing(),
            &RuntimeParams::default(),
        );
        assert_eq!(schedule.commitment_count(), 2);
        assert!(apm.expire_hold(pid(), &task2, &mut schedule));
        assert_eq!(schedule.commitment_count(), 1, "hold released");
        assert!(!apm.expire_hold(pid(), &task2, &mut schedule), "idempotent");
    }
}
