//! Binary wire codec for every protocol message.
//!
//! Builds on `openwf-wire`'s framing (length prefix, version byte,
//! per-frame name table — see that crate's docs for the format): a
//! [`Msg`] is one `TAG_MSG` frame whose payload starts with a variant
//! tag byte. Fragment payloads inside a `FragmentReply` share the
//! frame's single name table, so a reply carrying fifty fragments over
//! the same community vocabulary spells each label once.
//!
//! Decoding charges the whole frame's name table against a
//! [`VocabularyBudget`] **before interning anything** — the trust
//! boundary the ROADMAP's admission-time guard was always meant to
//! reach. An over-budget reply is rejected as a protocol error with the
//! process interner untouched.
//!
//! Times travel as varint microseconds ([`SimTime::as_micros`]);
//! locations are inline strings (they are free-form hints, not semantic
//! names, and must not charge the vocabulary budget).

use std::sync::Arc;

use openwf_core::{Fragment, Interned, Label, TaskId};
use openwf_simnet::{HostId, SimDuration, SimTime};
use openwf_wire::model::{read_fragment_resolved, read_spec_resolved, write_fragment};
use openwf_wire::{
    read_frame, DecodeScratch, FrameEncoder, PayloadReader, VocabularyBudget, WireError, TAG_MSG,
};

use crate::auction_part::Bid;
use crate::messages::{Msg, ProblemId};
use crate::metadata::{Assignment, ExecutionPlan, PlannedOutput, PlannedTask, TaskMetadata};

const V_INITIATE: u8 = 0;
const V_FRAGMENT_QUERY: u8 = 1;
const V_FRAGMENT_REPLY: u8 = 2;
const V_CAPABILITY_QUERY: u8 = 3;
const V_CAPABILITY_REPLY: u8 = 4;
const V_CALL_FOR_BIDS: u8 = 5;
const V_BID: u8 = 6;
const V_DECLINE: u8 = 7;
const V_AWARD: u8 = 8;
const V_EXECUTE: u8 = 9;
const V_INPUT_DELIVERY: u8 = 10;
const V_TASK_COMPLETED: u8 = 11;
const V_GOAL_DELIVERED: u8 = 12;

fn write_problem(enc: &mut FrameEncoder, p: ProblemId) {
    enc.varint(u64::from(p.initiator.0));
    enc.varint(u64::from(p.seq));
    enc.varint(u64::from(p.attempt));
}

fn read_u32(r: &mut PayloadReader<'_, '_>) -> Result<u32, WireError> {
    u32::try_from(r.varint()?).map_err(|_| WireError::Malformed("u32 field out of range"))
}

fn read_problem(r: &mut PayloadReader<'_, '_>) -> Result<ProblemId, WireError> {
    Ok(ProblemId {
        initiator: HostId(read_u32(r)?),
        seq: read_u32(r)?,
        attempt: read_u32(r)?,
    })
}

fn write_time(enc: &mut FrameEncoder, t: SimTime) {
    enc.varint(t.as_micros());
}

fn read_time(r: &mut PayloadReader<'_, '_>) -> Result<SimTime, WireError> {
    Ok(SimTime::from_micros(r.varint()?))
}

fn write_duration(enc: &mut FrameEncoder, d: SimDuration) {
    enc.varint(d.as_micros());
}

fn read_duration(r: &mut PayloadReader<'_, '_>) -> Result<SimDuration, WireError> {
    Ok(SimDuration::from_micros(r.varint()?))
}

fn write_labels(enc: &mut FrameEncoder, labels: &[Label]) {
    enc.varint(labels.len() as u64);
    for l in labels {
        enc.name(l.sym());
    }
}

fn read_labels(r: &mut PayloadReader<'_, '_>, names: &[Interned]) -> Result<Vec<Label>, WireError> {
    let n = r.varint()?;
    let n = r.guard_count(n, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.interned(names)?.label());
    }
    Ok(out)
}

fn write_tasks(enc: &mut FrameEncoder, tasks: &[TaskId]) {
    enc.varint(tasks.len() as u64);
    for t in tasks {
        enc.name(t.sym());
    }
}

fn read_tasks(r: &mut PayloadReader<'_, '_>, names: &[Interned]) -> Result<Vec<TaskId>, WireError> {
    let n = r.varint()?;
    let n = r.guard_count(n, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.interned(names)?.task());
    }
    Ok(out)
}

fn write_opt_string(enc: &mut FrameEncoder, s: Option<&str>) {
    match s {
        None => enc.byte(0),
        Some(s) => {
            enc.byte(1);
            enc.inline_str(s);
        }
    }
}

fn read_opt_string(r: &mut PayloadReader<'_, '_>) -> Result<Option<String>, WireError> {
    match r.byte()? {
        0 => Ok(None),
        1 => Ok(Some(r.inline_str()?.to_string())),
        _ => Err(WireError::Malformed("bad option discriminant")),
    }
}

fn read_bool(r: &mut PayloadReader<'_, '_>) -> Result<bool, WireError> {
    match r.byte()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::Malformed("bad bool byte")),
    }
}

fn write_spec_payload(enc: &mut FrameEncoder, spec: &openwf_core::Spec) {
    openwf_wire::model::write_spec(enc, spec);
}

fn write_metadata(enc: &mut FrameEncoder, meta: &TaskMetadata) {
    enc.varint(meta.level as u64);
    write_labels(enc, &meta.inputs);
    write_labels(enc, &meta.outputs);
    write_opt_string(enc, meta.location.as_deref());
    write_time(enc, meta.earliest_start);
}

fn read_metadata(
    r: &mut PayloadReader<'_, '_>,
    names: &[Interned],
) -> Result<TaskMetadata, WireError> {
    Ok(TaskMetadata {
        level: r.varint()? as usize,
        inputs: read_labels(r, names)?,
        outputs: read_labels(r, names)?,
        location: read_opt_string(r)?,
        earliest_start: read_time(r)?,
    })
}

fn write_bid(enc: &mut FrameEncoder, bid: &Bid) {
    write_time(enc, bid.start);
    write_duration(enc, bid.travel);
    write_duration(enc, bid.duration);
    enc.varint(u64::from(bid.specialization));
    write_time(enc, bid.deadline);
}

fn read_bid(r: &mut PayloadReader<'_, '_>) -> Result<Bid, WireError> {
    Ok(Bid {
        start: read_time(r)?,
        travel: read_duration(r)?,
        duration: read_duration(r)?,
        specialization: read_u32(r)?,
        deadline: read_time(r)?,
    })
}

fn write_assignment(enc: &mut FrameEncoder, a: &Assignment) {
    enc.varint(u64::from(a.host.0));
    write_time(enc, a.start);
    write_duration(enc, a.duration);
    write_opt_string(enc, a.location.as_deref());
}

fn read_assignment(r: &mut PayloadReader<'_, '_>) -> Result<Assignment, WireError> {
    Ok(Assignment {
        host: HostId(read_u32(r)?),
        start: read_time(r)?,
        duration: read_duration(r)?,
        location: read_opt_string(r)?,
    })
}

fn write_plan(enc: &mut FrameEncoder, plan: &ExecutionPlan) {
    enc.varint(plan.commitments.len() as u64);
    for task in &plan.commitments {
        enc.name(task.task.sym());
        write_labels(enc, &task.inputs);
        enc.varint(task.outputs.len() as u64);
        for out in &task.outputs {
            enc.name(out.label.sym());
            enc.varint(out.consumers.len() as u64);
            for host in &out.consumers {
                enc.varint(u64::from(host.0));
            }
            enc.byte(u8::from(out.is_goal));
        }
        write_time(enc, task.start);
        write_duration(enc, task.duration);
        write_opt_string(enc, task.location.as_deref());
    }
}

fn read_plan(
    r: &mut PayloadReader<'_, '_>,
    names: &[Interned],
) -> Result<ExecutionPlan, WireError> {
    let n = r.varint()?;
    let n = r.guard_count(n, 6)?;
    let mut commitments = Vec::with_capacity(n);
    for _ in 0..n {
        let task = r.interned(names)?.task();
        let inputs = read_labels(r, names)?;
        let n_out = r.varint()?;
        let n_out = r.guard_count(n_out, 3)?;
        let mut outputs = Vec::with_capacity(n_out);
        for _ in 0..n_out {
            let label = r.interned(names)?.label();
            let n_cons = r.varint()?;
            let n_cons = r.guard_count(n_cons, 1)?;
            let mut consumers = Vec::with_capacity(n_cons);
            for _ in 0..n_cons {
                consumers.push(HostId(read_u32(r)?));
            }
            let is_goal = read_bool(r)?;
            outputs.push(PlannedOutput {
                label,
                consumers,
                is_goal,
            });
        }
        commitments.push(PlannedTask {
            task,
            inputs,
            outputs,
            start: read_time(r)?,
            duration: read_duration(r)?,
            location: read_opt_string(r)?,
        });
    }
    Ok(ExecutionPlan { commitments })
}

/// Encodes one message as a complete `TAG_MSG` frame onto `out`.
pub fn encode_msg(msg: &Msg, out: &mut Vec<u8>) {
    encode_msg_inner(msg, None, out);
}

/// [`encode_msg`] plus an explicit trace-correlation id appended as an
/// optional trailing varint. Decoders that predate the field ignore
/// nothing — the field sits *after* the variant payload, and
/// [`decode_msg`]/[`decode_msg_with`] skip it when present — while
/// [`decode_msg_traced_with`] surfaces it. The in-process drivers never
/// call this (a `Msg` already carries its `ProblemId`, which *is* the
/// correlation key, so enabling tracing cannot change wire bytes); it
/// exists for transports whose envelopes outlive a single `Msg`, e.g.
/// the planned socket driver propagating foreign trace contexts.
pub fn encode_msg_traced(msg: &Msg, trace: u64, out: &mut Vec<u8>) {
    encode_msg_inner(msg, Some(trace), out);
}

fn encode_msg_inner(msg: &Msg, trace: Option<u64>, out: &mut Vec<u8>) {
    let mut enc = FrameEncoder::new(TAG_MSG);
    match msg {
        Msg::Initiate { problem, spec } => {
            enc.byte(V_INITIATE);
            write_problem(&mut enc, *problem);
            write_spec_payload(&mut enc, spec);
        }
        Msg::FragmentQuery {
            problem,
            round,
            labels,
        } => {
            enc.byte(V_FRAGMENT_QUERY);
            write_problem(&mut enc, *problem);
            enc.varint(u64::from(*round));
            write_labels(&mut enc, labels);
        }
        Msg::FragmentReply {
            problem,
            round,
            fragments,
        } => {
            enc.byte(V_FRAGMENT_REPLY);
            write_problem(&mut enc, *problem);
            enc.varint(u64::from(*round));
            enc.varint(fragments.len() as u64);
            for f in fragments {
                write_fragment(&mut enc, f);
            }
        }
        Msg::CapabilityQuery {
            problem,
            round,
            tasks,
        } => {
            enc.byte(V_CAPABILITY_QUERY);
            write_problem(&mut enc, *problem);
            enc.varint(u64::from(*round));
            write_tasks(&mut enc, tasks);
        }
        Msg::CapabilityReply {
            problem,
            round,
            capable,
        } => {
            enc.byte(V_CAPABILITY_REPLY);
            write_problem(&mut enc, *problem);
            enc.varint(u64::from(*round));
            write_tasks(&mut enc, capable);
        }
        Msg::CallForBids {
            problem,
            task,
            meta,
        } => {
            enc.byte(V_CALL_FOR_BIDS);
            write_problem(&mut enc, *problem);
            enc.name(task.sym());
            write_metadata(&mut enc, meta);
        }
        Msg::Bid { problem, task, bid } => {
            enc.byte(V_BID);
            write_problem(&mut enc, *problem);
            enc.name(task.sym());
            write_bid(&mut enc, bid);
        }
        Msg::Decline { problem, task } => {
            enc.byte(V_DECLINE);
            write_problem(&mut enc, *problem);
            enc.name(task.sym());
        }
        Msg::Award {
            problem,
            task,
            assignment,
        } => {
            enc.byte(V_AWARD);
            write_problem(&mut enc, *problem);
            enc.name(task.sym());
            write_assignment(&mut enc, assignment);
        }
        Msg::Execute { problem, plan } => {
            enc.byte(V_EXECUTE);
            write_problem(&mut enc, *problem);
            write_plan(&mut enc, plan);
        }
        Msg::InputDelivery { problem, label } => {
            enc.byte(V_INPUT_DELIVERY);
            write_problem(&mut enc, *problem);
            enc.name(label.sym());
        }
        Msg::TaskCompleted { problem, task } => {
            enc.byte(V_TASK_COMPLETED);
            write_problem(&mut enc, *problem);
            enc.name(task.sym());
        }
        Msg::GoalDelivered { problem, label } => {
            enc.byte(V_GOAL_DELIVERED);
            write_problem(&mut enc, *problem);
            enc.name(label.sym());
        }
    }
    if let Some(trace) = trace {
        enc.varint(trace);
    }
    enc.finish(out);
}

/// Decodes one `TAG_MSG` frame from the head of `buf`, charging its
/// whole name table against `budget` before interning anything. Returns
/// the message and the bytes consumed.
///
/// # Errors
///
/// Any [`WireError`]; on [`WireError::VocabularyExceeded`] nothing was
/// interned and nothing was recorded in the budget.
pub fn decode_msg(buf: &[u8], budget: &mut VocabularyBudget) -> Result<(Msg, usize), WireError> {
    // One-shot decode: fresh scratch, identity cache off (an insert into
    // a throwaway cache is pure waste). Long-lived receive loops hold a
    // `DecodeScratch` and call `decode_msg_with` instead.
    decode_msg_with(buf, budget, &mut DecodeScratch::with_cache_capacity(0))
}

/// [`decode_msg`] with per-connection decode state: the frame's span
/// buffer is recycled, its name table is resolved in **one** interner
/// batch, fragments are staged in reused buffers, and re-announced
/// fragments are answered from the identity cache as shared
/// [`Arc<Fragment>`]s without a rebuild.
///
/// Budget semantics are identical to [`decode_msg`]: the whole name
/// table is charged *before* anything is interned or cached.
///
/// # Errors
///
/// Any [`WireError`]; on [`WireError::VocabularyExceeded`] nothing was
/// interned and nothing was recorded in the budget.
pub fn decode_msg_with(
    buf: &[u8],
    budget: &mut VocabularyBudget,
    scratch: &mut DecodeScratch,
) -> Result<(Msg, usize), WireError> {
    decode_msg_traced_with(buf, budget, scratch).map(|(msg, _, consumed)| (msg, consumed))
}

/// [`decode_msg_with`] that also surfaces the optional trailing
/// trace-correlation id written by [`encode_msg_traced`] — `None` for
/// frames from encoders that never wrote one (every frame
/// [`encode_msg`] produces), which is what keeps the field
/// backward-compatible in both directions.
///
/// # Errors
///
/// Any [`WireError`]; same budget semantics as [`decode_msg`].
pub fn decode_msg_traced_with(
    buf: &[u8],
    budget: &mut VocabularyBudget,
    scratch: &mut DecodeScratch,
) -> Result<(Msg, Option<u64>, usize), WireError> {
    let (frame, consumed) = scratch.take_frame(buf)?;
    openwf_wire::model::admit_frame(&frame, TAG_MSG, budget)?;
    scratch.resolve(&frame);
    let mut r = frame.reader();
    let variant = r.byte()?;
    let (names, frag_scratch, cache) = scratch.split();
    let msg = match variant {
        V_INITIATE => Msg::Initiate {
            problem: read_problem(&mut r)?,
            spec: read_spec_resolved(&mut r, names)?,
        },
        V_FRAGMENT_QUERY => Msg::FragmentQuery {
            problem: read_problem(&mut r)?,
            round: read_u32(&mut r)?,
            labels: read_labels(&mut r, names)?,
        },
        V_FRAGMENT_REPLY => {
            let problem = read_problem(&mut r)?;
            let round = read_u32(&mut r)?;
            let n = r.varint()?;
            let n = r.guard_count(n, 3)?;
            let mut fragments: Vec<Arc<Fragment>> = Vec::with_capacity(n);
            for _ in 0..n {
                fragments.push(read_fragment_resolved(&mut r, names, frag_scratch, cache)?);
            }
            Msg::FragmentReply {
                problem,
                round,
                fragments,
            }
        }
        V_CAPABILITY_QUERY => Msg::CapabilityQuery {
            problem: read_problem(&mut r)?,
            round: read_u32(&mut r)?,
            tasks: read_tasks(&mut r, names)?,
        },
        V_CAPABILITY_REPLY => Msg::CapabilityReply {
            problem: read_problem(&mut r)?,
            round: read_u32(&mut r)?,
            capable: read_tasks(&mut r, names)?,
        },
        V_CALL_FOR_BIDS => Msg::CallForBids {
            problem: read_problem(&mut r)?,
            task: r.interned(names)?.task(),
            meta: read_metadata(&mut r, names)?,
        },
        V_BID => Msg::Bid {
            problem: read_problem(&mut r)?,
            task: r.interned(names)?.task(),
            bid: read_bid(&mut r)?,
        },
        V_DECLINE => Msg::Decline {
            problem: read_problem(&mut r)?,
            task: r.interned(names)?.task(),
        },
        V_AWARD => Msg::Award {
            problem: read_problem(&mut r)?,
            task: r.interned(names)?.task(),
            assignment: read_assignment(&mut r)?,
        },
        V_EXECUTE => Msg::Execute {
            problem: read_problem(&mut r)?,
            plan: read_plan(&mut r, names)?,
        },
        V_INPUT_DELIVERY => Msg::InputDelivery {
            problem: read_problem(&mut r)?,
            label: r.interned(names)?.label(),
        },
        V_TASK_COMPLETED => Msg::TaskCompleted {
            problem: read_problem(&mut r)?,
            task: r.interned(names)?.task(),
        },
        V_GOAL_DELIVERED => Msg::GoalDelivered {
            problem: read_problem(&mut r)?,
            label: r.interned(names)?.label(),
        },
        other => return Err(WireError::UnknownTag(other)),
    };
    let trace = if r.remaining() > 0 {
        Some(r.varint()?)
    } else {
        None
    };
    r.expect_end()?;
    scratch.recycle(frame);
    Ok((msg, trace, consumed))
}

/// True when the `TAG_MSG` frame at the head of `buf` carries a
/// `FragmentReply` — the message family through which a peer mints
/// *knowhow* names of its own choosing (every other message echoes
/// names from specs, queries and plans that originate elsewhere).
/// Frame receivers use this to decide whether an over-budget frame is
/// evidence against its sender (`HostCore::handle_frame` blames — and
/// eventually quarantines — only for replies); it costs a full frame
/// parse, so keep it off decode hot paths.
///
/// # Errors
///
/// Any [`WireError`] from frame parsing or an empty payload.
pub fn frame_is_fragment_reply(buf: &[u8]) -> Result<bool, WireError> {
    let (frame, _) = read_frame(buf)?;
    if frame.tag != TAG_MSG {
        return Err(WireError::UnknownTag(frame.tag));
    }
    Ok(frame.reader().byte()? == V_FRAGMENT_REPLY)
}

/// The exact encoded size of a message in bytes (one full frame).
///
/// Allocates a scratch buffer per call; the simulator's bandwidth model
/// keeps its cheap arithmetic approximation ([`crate::Msg::wire_size`])
/// on the hot path and uses this for calibration.
pub fn encoded_len(msg: &Msg) -> usize {
    let mut buf = Vec::new();
    encode_msg(msg, &mut buf);
    buf.len()
}

/// Runs a fragment reply through the wire: encodes it as a
/// `FragmentReply` frame and decodes it back, charging the frame's name
/// table against `budget` first. Returns freshly decoded fragments (no
/// allocation shared with the sender) — what a networked host would
/// actually hold after receiving the reply.
///
/// This is the in-process simulator's stand-in for receiving the reply
/// off the wire: the vocabulary check runs at decode, *before* any peer
/// name would be interned, rather than at reply admission.
///
/// # Errors
///
/// Any [`WireError`]; on [`WireError::VocabularyExceeded`] the budget
/// and interner are untouched and the reply must be dropped.
pub fn reply_through_wire(
    problem: ProblemId,
    round: u32,
    fragments: Vec<Arc<Fragment>>,
    budget: &mut VocabularyBudget,
) -> Result<Vec<Arc<Fragment>>, WireError> {
    reply_through_wire_with(
        problem,
        round,
        fragments,
        budget,
        &mut DecodeScratch::with_cache_capacity(0),
    )
}

/// [`reply_through_wire`] with per-connection decode state — the
/// receive path a long-lived host uses so repeated reply traffic hits
/// the fragment-identity cache and reuses all decode buffers.
///
/// # Errors
///
/// Same as [`reply_through_wire`].
pub fn reply_through_wire_with(
    problem: ProblemId,
    round: u32,
    fragments: Vec<Arc<Fragment>>,
    budget: &mut VocabularyBudget,
    scratch: &mut DecodeScratch,
) -> Result<Vec<Arc<Fragment>>, WireError> {
    let msg = Msg::FragmentReply {
        problem,
        round,
        fragments,
    };
    let mut buf = Vec::new();
    encode_msg(&msg, &mut buf);
    match decode_msg_with(&buf, budget, scratch)? {
        (Msg::FragmentReply { fragments, .. }, _) => Ok(fragments),
        _ => unreachable!("a FragmentReply frame decodes to a FragmentReply"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::{Mode, Spec};

    fn p() -> ProblemId {
        ProblemId {
            initiator: HostId(3),
            seq: 42,
            attempt: 1,
        }
    }

    fn frag(id: &str) -> Arc<Fragment> {
        Arc::new(
            Fragment::single_task(id, format!("{id}-t"), Mode::Disjunctive, ["rc-a"], ["rc-b"])
                .unwrap(),
        )
    }

    fn round_trip(msg: &Msg) -> Msg {
        let mut bytes = Vec::new();
        encode_msg(msg, &mut bytes);
        let (decoded, consumed) =
            decode_msg(&bytes, &mut VocabularyBudget::unlimited()).expect("valid frame");
        assert_eq!(consumed, bytes.len());
        // Bit-identical re-encode.
        let mut re = Vec::new();
        encode_msg(&decoded, &mut re);
        assert_eq!(re, bytes, "decode → encode must reproduce the bytes");
        decoded
    }

    #[test]
    fn traced_frames_round_trip_and_untraced_frames_read_as_none() {
        let msg = Msg::TaskCompleted {
            problem: p(),
            task: TaskId::new("rc-t"),
        };
        let mut plain = Vec::new();
        encode_msg(&msg, &mut plain);
        let mut traced = Vec::new();
        encode_msg_traced(&msg, p().trace_id(), &mut traced);
        assert!(
            traced.len() > plain.len(),
            "the trace id is extra trailing bytes"
        );

        let mut scratch = DecodeScratch::with_cache_capacity(0);
        let (decoded, trace, consumed) =
            decode_msg_traced_with(&traced, &mut VocabularyBudget::unlimited(), &mut scratch)
                .expect("traced frame decodes");
        assert_eq!(consumed, traced.len());
        assert_eq!(trace, Some(p().trace_id()));
        assert_eq!(format!("{decoded:?}"), format!("{msg:?}"));

        // A decoder unaware of the field skips it.
        let (decoded, consumed) =
            decode_msg_with(&traced, &mut VocabularyBudget::unlimited(), &mut scratch)
                .expect("traced frame decodes on the untraced path");
        assert_eq!(consumed, traced.len());
        assert_eq!(format!("{decoded:?}"), format!("{msg:?}"));

        // A pre-field frame reports no trace id.
        let (_, trace, _) =
            decode_msg_traced_with(&plain, &mut VocabularyBudget::unlimited(), &mut scratch)
                .expect("plain frame decodes on the traced path");
        assert_eq!(trace, None);
    }

    #[test]
    fn every_variant_round_trips() {
        let meta = TaskMetadata {
            level: 2,
            inputs: vec![Label::new("rc-a")],
            outputs: vec![Label::new("rc-b")],
            location: Some("kitchen".into()),
            earliest_start: SimTime::from_micros(5_000),
        };
        let plan = ExecutionPlan {
            commitments: vec![PlannedTask {
                task: TaskId::new("rc-t"),
                inputs: vec![Label::new("rc-a")],
                outputs: vec![PlannedOutput {
                    label: Label::new("rc-b"),
                    consumers: vec![HostId(1), HostId(4)],
                    is_goal: true,
                }],
                start: SimTime::from_micros(10),
                duration: SimDuration::from_micros(20),
                location: None,
            }],
        };
        let msgs = vec![
            Msg::Initiate {
                problem: p(),
                spec: Spec::new(["rc-a"], ["rc-b"]),
            },
            Msg::FragmentQuery {
                problem: p(),
                round: 7,
                labels: vec![Label::new("rc-a"), Label::new("rc-b")],
            },
            Msg::FragmentReply {
                problem: p(),
                round: 7,
                fragments: vec![frag("rc-f1"), frag("rc-f2")],
            },
            Msg::CapabilityQuery {
                problem: p(),
                round: 1,
                tasks: vec![TaskId::new("rc-t")],
            },
            Msg::CapabilityReply {
                problem: p(),
                round: 1,
                capable: vec![TaskId::new("rc-t")],
            },
            Msg::CallForBids {
                problem: p(),
                task: TaskId::new("rc-t"),
                meta,
            },
            Msg::Bid {
                problem: p(),
                task: TaskId::new("rc-t"),
                bid: Bid {
                    start: SimTime::from_micros(1),
                    travel: SimDuration::from_micros(2),
                    duration: SimDuration::from_micros(3),
                    specialization: 4,
                    deadline: SimTime::from_micros(5),
                },
            },
            Msg::Decline {
                problem: p(),
                task: TaskId::new("rc-t"),
            },
            Msg::Award {
                problem: p(),
                task: TaskId::new("rc-t"),
                assignment: Assignment {
                    host: HostId(2),
                    start: SimTime::from_micros(9),
                    duration: SimDuration::from_micros(8),
                    location: Some("yard".into()),
                },
            },
            Msg::Execute { problem: p(), plan },
            Msg::InputDelivery {
                problem: p(),
                label: Label::new("rc-a"),
            },
            Msg::TaskCompleted {
                problem: p(),
                task: TaskId::new("rc-t"),
            },
            Msg::GoalDelivered {
                problem: p(),
                label: Label::new("rc-b"),
            },
        ];
        for msg in &msgs {
            let decoded = round_trip(msg);
            assert_eq!(
                format!("{decoded:?}"),
                format!("{msg:?}"),
                "structural equality via Debug"
            );
        }
    }

    #[test]
    fn reply_shares_one_name_table_across_fragments() {
        // Two fragments over the same labels: the second costs only its
        // fresh id/task names on the wire.
        let one = Msg::FragmentReply {
            problem: p(),
            round: 0,
            fragments: vec![frag("rc-share-1")],
        };
        let two = Msg::FragmentReply {
            problem: p(),
            round: 0,
            fragments: vec![frag("rc-share-1"), frag("rc-share-2")],
        };
        let (a, b) = (encoded_len(&one), encoded_len(&two));
        assert!(
            b - a < a,
            "second fragment reuses the table: {a} then +{}",
            b - a
        );
    }

    #[test]
    fn over_budget_reply_is_rejected_at_decode() {
        let fragments = vec![frag("rc-cap-1")]; // 5 distinct names
        let mut budget = VocabularyBudget::with_cap(3);
        let err = reply_through_wire(p(), 0, fragments.clone(), &mut budget).unwrap_err();
        assert!(matches!(err, WireError::VocabularyExceeded { cap: 3, .. }));
        assert_eq!(budget.len(), 0, "rejected frame records nothing");

        let mut budget = VocabularyBudget::with_cap(10);
        let decoded = reply_through_wire(p(), 0, fragments.clone(), &mut budget).unwrap();
        assert_eq!(decoded.len(), 1);
        assert!(
            !Arc::ptr_eq(&decoded[0], &fragments[0]),
            "decoded fragments are fresh allocations, not the sender's"
        );
        assert_eq!(decoded[0].id().as_str(), "rc-cap-1");
    }

    #[test]
    fn unknown_variant_is_rejected() {
        let mut enc = FrameEncoder::new(TAG_MSG);
        enc.byte(200);
        let mut bytes = Vec::new();
        enc.finish(&mut bytes);
        assert_eq!(
            decode_msg(&bytes, &mut VocabularyBudget::unlimited()).unwrap_err(),
            WireError::UnknownTag(200)
        );
    }

    #[test]
    fn exact_size_tracks_content() {
        let small = Msg::TaskCompleted {
            problem: p(),
            task: TaskId::new("rc-t"),
        };
        let big = Msg::FragmentReply {
            problem: p(),
            round: 0,
            fragments: (0..20).map(|i| frag(&format!("rc-sz-{i}"))).collect(),
        };
        assert!(encoded_len(&small) < 64);
        assert!(encoded_len(&big) > encoded_len(&small) * 4);
    }
}
