//! Community assembly and problem driving.
//!
//! A [`Community`] is a set of configured [`OwmsHost`]s on a simulated
//! network — the §5 experimental setup ("configure the hosts, establish
//! connectivity within the community") plus convenience drivers that
//! submit problems and run the network until allocation or completion.
//! It is a facade over [`SimDriver`], the simulator implementation of
//! the transport-agnostic [`Driver`] API; the same scenarios run over
//! encoded wire frames through
//! [`crate::driver::LoopbackBytesDriver`].

use std::fmt;

use openwf_core::Spec;
use openwf_simnet::{HostId, LatencyModel, NetStats, SimNetwork, SimTime};

use crate::core_sm::WorkflowEvent;
use crate::driver::{Driver, SimDriver};
use crate::host::{HostConfig, OwmsHost};
use crate::messages::Msg;
use crate::params::RuntimeParams;
use crate::report::ProblemReport;
use crate::workflow_mgr::Phase;

pub use crate::driver::ProblemHandle;

/// Builder for a [`Community`].
pub struct CommunityBuilder {
    seed: u64,
    params: RuntimeParams,
    latency: Option<Box<dyn LatencyModel + 'static>>,
    hosts: Vec<HostConfig>,
}

impl CommunityBuilder {
    /// Starts a community with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        CommunityBuilder {
            seed,
            params: RuntimeParams::default(),
            latency: None,
            hosts: Vec::new(),
        }
    }

    /// Sets runtime parameters for every host.
    pub fn params(mut self, params: RuntimeParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the network latency model.
    pub fn latency(mut self, model: impl LatencyModel + 'static) -> Self {
        self.latency = Some(Box::new(model));
        self
    }

    /// Adds a host.
    pub fn host(mut self, config: HostConfig) -> Self {
        self.hosts.push(config);
        self
    }

    /// Adds several hosts.
    pub fn hosts(mut self, configs: impl IntoIterator<Item = HostConfig>) -> Self {
        self.hosts.extend(configs);
        self
    }

    /// Assembles the community network.
    ///
    /// # Panics
    ///
    /// Panics if no hosts were added.
    pub fn build(self) -> Community {
        assert!(
            !self.hosts.is_empty(),
            "a community needs at least one host"
        );
        Community {
            driver: SimDriver::build(self.seed, self.params, self.latency, self.hosts),
        }
    }
}

impl fmt::Debug for CommunityBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommunityBuilder")
            .field("hosts", &self.hosts.len())
            .field("seed", &self.seed)
            .finish()
    }
}

/// A running community of open workflow hosts.
pub struct Community {
    driver: SimDriver,
}

impl Community {
    /// All host ids.
    pub fn hosts(&self) -> Vec<HostId> {
        self.driver.hosts()
    }

    /// Immutable access to a host.
    pub fn host(&self, id: HostId) -> &OwmsHost {
        self.driver.host(id)
    }

    /// Mutable access to a host (e.g. to install service hooks).
    pub fn host_mut(&mut self, id: HostId) -> &mut OwmsHost {
        self.driver.host_mut(id)
    }

    /// The underlying network (topology, faults, latency, stats).
    pub fn net_mut(&mut self) -> &mut SimNetwork<Msg, OwmsHost> {
        self.driver.net_mut()
    }

    /// The underlying simulator driver (the [`Driver`]-trait view of
    /// this community).
    pub fn driver_mut(&mut self) -> &mut SimDriver {
        &mut self.driver
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.driver.now()
    }

    /// Network traffic counters.
    pub fn stats(&self) -> NetStats {
        self.driver.stats()
    }

    /// Workflow events every host surfaced so far, tagged with the host
    /// that emitted them — the community-wide view a soak harness's
    /// invariant checks need (quarantines, completions, repairs). Hosts
    /// in id order; per-host events in firing order.
    pub fn all_events(&self) -> Vec<(HostId, WorkflowEvent)> {
        self.hosts()
            .into_iter()
            .flat_map(|h| {
                self.host(h)
                    .events()
                    .iter()
                    .cloned()
                    .map(move |e| (h, e))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Submits a problem specification to `initiator` (the Workflow
    /// Initiator's job in §4.2). Returns a handle for driving/reporting.
    pub fn submit(&mut self, initiator: HostId, spec: Spec) -> ProblemHandle {
        self.driver.submit(initiator, spec)
    }

    /// The latest-attempt report for a problem, if any.
    pub fn report(&self, handle: ProblemHandle) -> Option<ProblemReport> {
        self.driver.report(handle)
    }

    /// The latest-attempt phase for a problem.
    pub fn phase(&self, handle: ProblemHandle) -> Option<Phase> {
        self.driver.phase(handle)
    }

    /// Runs until the problem's tasks are all allocated (the paper's
    /// measurement endpoint) or the problem fails; returns the report.
    pub fn run_until_allocated(&mut self, handle: ProblemHandle) -> ProblemReport {
        self.driver.run_until_allocated(handle)
    }

    /// Runs until the problem completes (all goals delivered) or fails;
    /// returns the report.
    pub fn run_until_complete(&mut self, handle: ProblemHandle) -> ProblemReport {
        self.driver.run_until_complete(handle)
    }

    /// Runs the network to quiescence (drains watchdogs and hold-expiry
    /// timers too).
    pub fn run_to_quiescence(&mut self) -> SimTime {
        self.driver.run_until_quiescent()
    }
}

impl fmt::Debug for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Community")
            .field("hosts", &self.hosts().len())
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceDescription;
    use openwf_core::{Fragment, Mode};
    use openwf_simnet::SimDuration;

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    fn service(task: &str) -> ServiceDescription {
        ServiceDescription::new(task, SimDuration::from_millis(5))
    }

    /// Knowledge and capability split across two hosts: cooperation is
    /// mandatory.
    #[test]
    fn two_hosts_cooperate_end_to_end() {
        let mut community = CommunityBuilder::new(7)
            .host(
                HostConfig::new()
                    .with_fragment(frag("f1", "t1", "a", "b"))
                    .with_service(service("t2")),
            )
            .host(
                HostConfig::new()
                    .with_fragment(frag("f2", "t2", "b", "c"))
                    .with_service(service("t1")),
            )
            .build();
        let initiator = community.hosts()[0];
        let handle = community.submit(initiator, Spec::new(["a"], ["c"]));
        let report = community.run_until_complete(handle);
        assert!(
            matches!(report.status, crate::report::ProblemStatus::Completed),
            "report: {report}"
        );
        // t1 could only be executed by host1 and t2 only by host0.
        let find = |t: &str| {
            report
                .assignments
                .iter()
                .find(|(task, _)| task.as_str() == t)
                .map(|(_, h)| *h)
        };
        assert_eq!(find("t1"), Some(HostId(1)));
        assert_eq!(find("t2"), Some(HostId(0)));
        // Cross-host messaging actually happened.
        assert!(community.stats().delivered > 4);
    }

    #[test]
    fn specialization_preference_selects_narrow_host() {
        // Both hosts can do t1, but host1 offers only that one service
        // while host0 offers three: host1 must win the auction.
        let mut community = CommunityBuilder::new(3)
            .host(
                HostConfig::new()
                    .with_fragment(frag("f1", "t1", "a", "b"))
                    .with_service(service("t1"))
                    .with_service(service("x"))
                    .with_service(service("y")),
            )
            .host(HostConfig::new().with_service(service("t1")))
            .build();
        let initiator = community.hosts()[0];
        let handle = community.submit(initiator, Spec::new(["a"], ["b"]));
        let report = community.run_until_allocated(handle);
        assert_eq!(
            report.assignments,
            vec![(openwf_core::TaskId::new("t1"), HostId(1))]
        );
    }

    #[test]
    fn timings_are_monotone() {
        let mut community = CommunityBuilder::new(5)
            .host(
                HostConfig::new()
                    .with_fragment(frag("f1", "t1", "a", "b"))
                    .with_service(service("t1")),
            )
            .host(HostConfig::new())
            .build();
        let initiator = community.hosts()[0];
        let handle = community.submit(initiator, Spec::new(["a"], ["b"]));
        let report = community.run_until_complete(handle);
        let t = report.timings;
        assert!(t.initiated_at <= t.constructed_at);
        assert!(t.constructed_at <= t.allocated_at);
        assert!(t.allocated_at <= t.completed_at);
        assert!(t.spec_to_allocated().unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn concurrent_problems_are_isolated() {
        let mut community = CommunityBuilder::new(9)
            .host(
                HostConfig::new()
                    .with_fragment(frag("f1", "t1", "a", "b"))
                    .with_fragment(frag("f2", "t2", "x", "y"))
                    .with_service(service("t1"))
                    .with_service(service("t2")),
            )
            .host(HostConfig::new())
            .build();
        let h0 = community.hosts()[0];
        let h1 = community.hosts()[1];
        let p1 = community.submit(h0, Spec::new(["a"], ["b"]));
        let p2 = community.submit(h1, Spec::new(["x"], ["y"]));
        let r1 = community.run_until_complete(p1);
        let r2 = community.run_until_complete(p2);
        assert!(matches!(r1.status, crate::report::ProblemStatus::Completed));
        assert!(matches!(r2.status, crate::report::ProblemStatus::Completed));
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_community_panics() {
        let _ = CommunityBuilder::new(0).build();
    }
}
