//! Host configuration files.
//!
//! §4.1: "In our implementation, we use XML configuration files to provide
//! the task and service definitions for each device." This module parses
//! that format (over the from-scratch XML subset in [`xml`]) into
//! [`HostConfig`]s.
//!
//! ```xml
//! <host>
//!   <position x="0" y="0"/>
//!   <motion speed="1.4"/>
//!   <preferences max-commitments="3">
//!     <refuse task="serve tables"/>
//!   </preferences>
//!   <site>
//!     <place name="kitchen" x="0" y="0"/>
//!   </site>
//!   <fragment id="omelets">
//!     <task name="cook omelets" mode="conjunctive">
//!       <input label="omelet bar setup"/>
//!       <output label="breakfast served"/>
//!     </task>
//!   </fragment>
//!   <service task="cook omelets" duration-ms="600000" location="kitchen"/>
//! </host>
//! ```

pub mod writer;
pub mod xml;

use std::error::Error;
use std::fmt;

use openwf_core::{Fragment, Mode};
use openwf_mobility::{Motion, Point, SiteMap};
use openwf_simnet::SimDuration;

use crate::host::HostConfig;
use crate::prefs::Preferences;
use crate::service::ServiceDescription;

pub use writer::write_host_config;
pub use xml::{Element, XmlError};

/// Errors loading a host configuration.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConfigError {
    /// The document is not well-formed.
    Xml(XmlError),
    /// The root element is not `<host>`.
    WrongRoot(String),
    /// A numeric attribute failed to parse.
    BadNumber {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
        /// Raw value.
        value: String,
    },
    /// A `mode` attribute is neither `conjunctive` nor `disjunctive`.
    BadMode(String),
    /// A fragment failed validation.
    BadFragment(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Xml(e) => write!(f, "malformed configuration: {e}"),
            ConfigError::WrongRoot(r) => write!(f, "expected `<host>` root, found `<{r}>`"),
            ConfigError::BadNumber {
                element,
                attribute,
                value,
            } => write!(
                f,
                "attribute `{attribute}` of `<{element}>` is not a number: `{value}`"
            ),
            ConfigError::BadMode(m) => {
                write!(
                    f,
                    "task mode must be `conjunctive` or `disjunctive`, found `{m}`"
                )
            }
            ConfigError::BadFragment(e) => write!(f, "invalid fragment: {e}"),
        }
    }
}

impl Error for ConfigError {}

impl From<XmlError> for ConfigError {
    fn from(e: XmlError) -> Self {
        ConfigError::Xml(e)
    }
}

fn num_attr(el: &Element, attr: &str) -> Result<Option<f64>, ConfigError> {
    match el.attr(attr) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| ConfigError::BadNumber {
                element: el.name.clone(),
                attribute: attr.to_string(),
                value: v.to_string(),
            }),
    }
}

fn u64_attr(el: &Element, attr: &str) -> Result<Option<u64>, ConfigError> {
    match el.attr(attr) {
        None => Ok(None),
        Some(v) => v
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ConfigError::BadNumber {
                element: el.name.clone(),
                attribute: attr.to_string(),
                value: v.to_string(),
            }),
    }
}

/// Parses one `<host>` document into a [`HostConfig`].
///
/// # Errors
///
/// Returns a [`ConfigError`] for malformed XML, an unexpected root, bad
/// numbers/modes, or fragments that violate workflow validity.
pub fn parse_host_config(input: &str) -> Result<HostConfig, ConfigError> {
    let root = xml::parse(input)?;
    if root.name != "host" {
        return Err(ConfigError::WrongRoot(root.name));
    }
    let mut config = HostConfig::new();

    if let Some(pos) = root.child("position") {
        let x = num_attr(pos, "x")?.unwrap_or(0.0);
        let y = num_attr(pos, "y")?.unwrap_or(0.0);
        config.position = Point::new(x, y);
    }
    if let Some(motion) = root.child("motion") {
        let speed = num_attr(motion, "speed")?.unwrap_or(0.0);
        config.motion = Motion::new(speed);
    }
    if let Some(prefs) = root.child("preferences") {
        let mut p = Preferences::willing();
        if let Some(max) = u64_attr(prefs, "max-commitments")? {
            p = p.with_max_commitments(max as usize);
        }
        for refuse in prefs.children_named("refuse") {
            p = p.refusing(refuse.require_attr("task")?);
        }
        config.prefs = p;
    }
    if let Some(site) = root.child("site") {
        let mut map = SiteMap::new();
        for place in site.children_named("place") {
            let name = place.require_attr("name")?;
            let x = num_attr(place, "x")?.unwrap_or(0.0);
            let y = num_attr(place, "y")?.unwrap_or(0.0);
            map.insert(name, Point::new(x, y));
        }
        config.site = map;
    }
    for frag_el in root.children_named("fragment") {
        let id = frag_el.require_attr("id")?;
        let mut builder = Fragment::builder(id);
        for task_el in frag_el.children_named("task") {
            let name = task_el.require_attr("name")?;
            let mode = match task_el.attr("mode").unwrap_or("conjunctive") {
                "conjunctive" => Mode::Conjunctive,
                "disjunctive" => Mode::Disjunctive,
                other => return Err(ConfigError::BadMode(other.to_string())),
            };
            let inputs: Vec<String> = task_el
                .children_named("input")
                .map(|i| i.require_attr("label").map(str::to_string))
                .collect::<Result<_, _>>()?;
            let outputs: Vec<String> = task_el
                .children_named("output")
                .map(|o| o.require_attr("label").map(str::to_string))
                .collect::<Result<_, _>>()?;
            builder = builder.add_task(name, mode, inputs, outputs);
        }
        let fragment = builder
            .build()
            .map_err(|e| ConfigError::BadFragment(e.to_string()))?;
        config.fragments.push(fragment.into());
    }
    for svc in root.children_named("service") {
        let task = svc.require_attr("task")?;
        let duration = SimDuration::from_millis(u64_attr(svc, "duration-ms")?.unwrap_or(1_000));
        let mut desc = ServiceDescription::new(task, duration);
        if let Some(loc) = svc.attr("location") {
            desc = desc.at_location(loc);
        }
        config.services.push(desc);
    }
    Ok(config)
}

/// Parses several `<host>` documents (e.g. one file per device).
///
/// # Errors
///
/// Fails on the first invalid document.
pub fn parse_community_configs<'a>(
    documents: impl IntoIterator<Item = &'a str>,
) -> Result<Vec<HostConfig>, ConfigError> {
    documents.into_iter().map(parse_host_config).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::TaskId;

    const CHEF: &str = r#"
        <host>
          <position x="5" y="10"/>
          <motion speed="1.4"/>
          <preferences max-commitments="3">
            <refuse task="wash dishes"/>
          </preferences>
          <site>
            <place name="kitchen" x="0" y="0"/>
            <place name="dining room" x="50" y="0"/>
          </site>
          <fragment id="omelets">
            <task name="cook omelets" mode="conjunctive">
              <input label="omelet bar setup"/>
              <output label="breakfast served"/>
            </task>
          </fragment>
          <service task="cook omelets" duration-ms="600000" location="kitchen"/>
        </host>
    "#;

    #[test]
    fn parses_full_host_config() {
        let cfg = parse_host_config(CHEF).unwrap();
        assert_eq!(cfg.position, Point::new(5.0, 10.0));
        assert!((cfg.motion.speed_mps - 1.4).abs() < 1e-9);
        assert_eq!(cfg.prefs.max_commitments, 3);
        assert!(cfg
            .prefs
            .refused_tasks
            .contains(&TaskId::new("wash dishes")));
        assert_eq!(cfg.site.len(), 2);
        assert_eq!(cfg.fragments.len(), 1);
        assert_eq!(
            cfg.fragments[0].tasks().collect::<Vec<_>>(),
            vec![TaskId::new("cook omelets")]
        );
        assert_eq!(cfg.services.len(), 1);
        assert_eq!(cfg.services[0].location.as_deref(), Some("kitchen"));
        assert_eq!(cfg.services[0].duration, SimDuration::from_millis(600_000));
    }

    #[test]
    fn minimal_host_is_valid() {
        let cfg = parse_host_config("<host/>").unwrap();
        assert!(cfg.fragments.is_empty());
        assert!(cfg.services.is_empty());
    }

    #[test]
    fn wrong_root_is_rejected() {
        let err = parse_host_config("<device/>").unwrap_err();
        assert!(matches!(err, ConfigError::WrongRoot(_)), "{err}");
    }

    #[test]
    fn bad_numbers_are_reported() {
        let err = parse_host_config(r#"<host><position x="wide"/></host>"#).unwrap_err();
        assert!(matches!(err, ConfigError::BadNumber { .. }), "{err}");
    }

    #[test]
    fn bad_mode_is_reported() {
        let doc = r#"
            <host>
              <fragment id="f">
                <task name="t" mode="sometimes">
                  <input label="a"/><output label="b"/>
                </task>
              </fragment>
            </host>"#;
        let err = parse_host_config(doc).unwrap_err();
        assert!(matches!(err, ConfigError::BadMode(_)), "{err}");
    }

    #[test]
    fn invalid_fragment_is_reported() {
        let doc = r#"
            <host>
              <fragment id="f">
                <task name="t"><input label="a"/></task>
              </fragment>
            </host>"#;
        let err = parse_host_config(doc).unwrap_err();
        assert!(matches!(err, ConfigError::BadFragment(_)), "{err}");
    }

    #[test]
    fn community_parse_collects_all() {
        let docs = [CHEF, "<host/>"];
        let cfgs = parse_community_configs(docs).unwrap();
        assert_eq!(cfgs.len(), 2);
    }
}
