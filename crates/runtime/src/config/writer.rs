//! Writing host configurations back to XML.
//!
//! Round-trips with [`crate::config::parse_host_config`]: a parsed
//! configuration serializes to an equivalent document, which makes the
//! XML format usable as the persistent deployment artifact the paper's
//! §4.1 describes (dump a device's knowhow/services, edit, redeploy).

use std::fmt::Write as _;

use openwf_core::NodeKind;

use crate::host::HostConfig;

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders a [`HostConfig`] as a `<host>` XML document.
///
/// Only configuration the XML schema can express is emitted: position,
/// motion, preferences, site map, fragments and services. (Service hooks
/// are code and cannot round-trip.)
pub fn write_host_config(config: &HostConfig) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<host>\n");

    let p = config.position;
    let _ = writeln!(out, "  <position x=\"{}\" y=\"{}\"/>", p.x, p.y);
    let _ = writeln!(out, "  <motion speed=\"{}\"/>", config.motion.speed_mps);

    if config.prefs.max_commitments != usize::MAX || !config.prefs.refused_tasks.is_empty() {
        if config.prefs.max_commitments != usize::MAX {
            let _ = writeln!(
                out,
                "  <preferences max-commitments=\"{}\">",
                config.prefs.max_commitments
            );
        } else {
            let _ = writeln!(out, "  <preferences>");
        }
        for t in &config.prefs.refused_tasks {
            let _ = writeln!(out, "    <refuse task=\"{}\"/>", escape(t.as_str()));
        }
        let _ = writeln!(out, "  </preferences>");
    }

    if !config.site.is_empty() {
        let _ = writeln!(out, "  <site>");
        for place in config.site.iter() {
            let _ = writeln!(
                out,
                "    <place name=\"{}\" x=\"{}\" y=\"{}\"/>",
                escape(&place.name),
                place.position.x,
                place.position.y
            );
        }
        let _ = writeln!(out, "  </site>");
    }

    for fragment in &config.fragments {
        let _ = writeln!(
            out,
            "  <fragment id=\"{}\">",
            escape(fragment.id().as_str())
        );
        let g = fragment.graph();
        for idx in g.node_indices() {
            if g.kind(idx) != NodeKind::Task {
                continue;
            }
            let task = g.key(idx).as_task().expect("task kind");
            let mode = g.mode(idx);
            let _ = writeln!(
                out,
                "    <task name=\"{}\" mode=\"{}\">",
                escape(task.as_str()),
                mode
            );
            for &parent in g.parents(idx) {
                if let Some(l) = g.key(parent).as_label() {
                    let _ = writeln!(out, "      <input label=\"{}\"/>", escape(l.as_str()));
                }
            }
            for &child in g.children(idx) {
                if let Some(l) = g.key(child).as_label() {
                    let _ = writeln!(out, "      <output label=\"{}\"/>", escape(l.as_str()));
                }
            }
            let _ = writeln!(out, "    </task>");
        }
        let _ = writeln!(out, "  </fragment>");
    }

    for svc in &config.services {
        let _ = write!(
            out,
            "  <service task=\"{}\" duration-ms=\"{}\"",
            escape(svc.task.as_str()),
            svc.duration.as_micros() / 1_000
        );
        if let Some(loc) = &svc.location {
            let _ = write!(out, " location=\"{}\"", escape(loc));
        }
        let _ = writeln!(out, "/>");
    }

    out.push_str("</host>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::parse_host_config;
    use crate::prefs::Preferences;
    use crate::service::ServiceDescription;
    use openwf_core::{Fragment, Mode, TaskId};
    use openwf_mobility::{Motion, Point, SiteMap};
    use openwf_simnet::SimDuration;

    fn sample_config() -> HostConfig {
        HostConfig::new()
            .located(Point::new(5.0, 10.0), Motion::WALKING)
            .with_site(SiteMap::new().with("kitchen", Point::new(0.0, 0.0)))
            .with_prefs(
                Preferences::willing()
                    .with_max_commitments(3)
                    .refusing("wash dishes"),
            )
            .with_fragment(
                Fragment::builder("omelets")
                    .task("cook omelets", Mode::Conjunctive)
                    .inputs(["omelet bar setup"])
                    .outputs(["breakfast served"])
                    .done()
                    .build()
                    .unwrap(),
            )
            .with_service(
                ServiceDescription::new("cook omelets", SimDuration::from_secs(600))
                    .at_location("kitchen"),
            )
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let original = sample_config();
        let xml = write_host_config(&original);
        let parsed = parse_host_config(&xml).expect("written config parses");

        assert_eq!(parsed.position, original.position);
        assert!((parsed.motion.speed_mps - original.motion.speed_mps).abs() < 1e-9);
        assert_eq!(parsed.prefs, original.prefs);
        assert_eq!(parsed.site.len(), original.site.len());
        assert_eq!(parsed.fragments.len(), 1);
        assert_eq!(
            parsed.fragments[0].tasks().collect::<Vec<_>>(),
            vec![TaskId::new("cook omelets")]
        );
        assert_eq!(parsed.services.len(), 1);
        assert_eq!(parsed.services[0].task, TaskId::new("cook omelets"));
        assert_eq!(parsed.services[0].duration, SimDuration::from_secs(600));
        assert_eq!(parsed.services[0].location.as_deref(), Some("kitchen"));
    }

    #[test]
    fn empty_config_round_trips() {
        let xml = write_host_config(&HostConfig::new());
        let parsed = parse_host_config(&xml).unwrap();
        assert!(parsed.fragments.is_empty());
        assert!(parsed.services.is_empty());
        assert_eq!(parsed.prefs, Preferences::willing());
    }

    #[test]
    fn special_characters_are_escaped() {
        let cfg = HostConfig::new().with_fragment(
            Fragment::builder("q&a")
                .task("say \"hi\" <loudly>", Mode::Disjunctive)
                .inputs(["a & b"])
                .outputs(["c > d"])
                .done()
                .build()
                .unwrap(),
        );
        let xml = write_host_config(&cfg);
        let parsed = parse_host_config(&xml).expect("escaped names parse");
        assert_eq!(parsed.fragments[0].id().as_str(), "q&a");
        assert_eq!(
            parsed.fragments[0].tasks().next().unwrap(),
            TaskId::new("say \"hi\" <loudly>")
        );
    }

    #[test]
    fn multi_task_fragments_keep_structure() {
        let cfg = HostConfig::new().with_fragment(
            Fragment::builder("chain")
                .task("t1", Mode::Conjunctive)
                .inputs(["a"])
                .outputs(["b"])
                .done()
                .task("t2", Mode::Disjunctive)
                .inputs(["b"])
                .outputs(["c"])
                .done()
                .build()
                .unwrap(),
        );
        let xml = write_host_config(&cfg);
        let parsed = parse_host_config(&xml).unwrap();
        let f = &parsed.fragments[0];
        assert_eq!(f.tasks().count(), 2);
        assert_eq!(
            f.workflow().task_mode(&TaskId::new("t2")),
            Some(Mode::Disjunctive)
        );
        assert_eq!(
            f.workflow().producer(&openwf_core::Label::new("b")),
            Some(TaskId::new("t1"))
        );
    }
}
