//! A minimal XML-subset parser (no external dependencies).
//!
//! The paper's implementation "uses XML configuration files to provide
//! the task and service definitions for each device" (§4.1). This module
//! parses the subset those files need: nested elements, double-quoted
//! attributes, text content, self-closing tags, comments, and an optional
//! `<?xml …?>` declaration. It does **not** support namespaces, CDATA,
//! DTDs, or processing instructions beyond the declaration.

use std::error::Error;
use std::fmt;

/// A parsed element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<Element>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl Element {
    /// The value of an attribute.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// A required attribute.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError::MissingAttribute`] when absent.
    pub fn require_attr(&self, name: &str) -> Result<&str, XmlError> {
        self.attr(name).ok_or_else(|| XmlError::MissingAttribute {
            element: self.name.clone(),
            attribute: name.to_string(),
        })
    }

    /// Child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The first child with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// Parse errors with byte positions.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlError {
    /// Unexpected end of input.
    UnexpectedEof,
    /// A character that does not belong at this position.
    Unexpected {
        /// Byte offset.
        at: usize,
        /// What was found.
        found: char,
        /// What was expected.
        expected: &'static str,
    },
    /// Closing tag does not match the open element.
    MismatchedTag {
        /// The open element.
        open: String,
        /// The closing tag found.
        close: String,
    },
    /// Trailing content after the document element.
    TrailingContent(usize),
    /// A required attribute is missing (raised by consumers).
    MissingAttribute {
        /// Element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => f.write_str("unexpected end of input"),
            XmlError::Unexpected {
                at,
                found,
                expected,
            } => {
                write!(f, "unexpected `{found}` at byte {at}, expected {expected}")
            }
            XmlError::MismatchedTag { open, close } => {
                write!(f, "mismatched closing tag `</{close}>` for `<{open}>`")
            }
            XmlError::TrailingContent(at) => {
                write!(f, "trailing content after document element at byte {at}")
            }
            XmlError::MissingAttribute { element, attribute } => {
                write!(
                    f,
                    "element `<{element}>` is missing attribute `{attribute}`"
                )
            }
        }
    }
}

impl Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, XmlError> {
        let b = self.peek().ok_or(XmlError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str, what: &'static str) -> Result<(), XmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            match self.peek() {
                Some(b) => Err(XmlError::Unexpected {
                    at: self.pos,
                    found: b as char,
                    expected: what,
                }),
                None => Err(XmlError::UnexpectedEof),
            }
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                match self.find("-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else if self.starts_with("<?") {
                self.pos += 2;
                match self.find("?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn find(&self, s: &str) -> Option<usize> {
        let needle = s.as_bytes();
        (self.pos..=self.input.len().saturating_sub(needle.len()))
            .find(|&i| self.input[i..].starts_with(needle))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_alphanumeric() || matches!(c, '-' | '_' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return match self.peek() {
                Some(b) => Err(XmlError::Unexpected {
                    at: self.pos,
                    found: b as char,
                    expected: "a name",
                }),
                None => Err(XmlError::UnexpectedEof),
            };
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn attribute_value(&mut self) -> Result<String, XmlError> {
        self.expect("\"", "opening quote")?;
        let start = self.pos;
        while self.bump()? != b'"' {}
        let raw = String::from_utf8_lossy(&self.input[start..self.pos - 1]).into_owned();
        Ok(unescape(&raw))
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        self.expect("<", "element start")?;
        let name = self.name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>", "self-closing tag end")?;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                        text: String::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let attr = self.name()?;
                    self.skip_ws();
                    self.expect("=", "`=` in attribute")?;
                    self.skip_ws();
                    let value = self.attribute_value()?;
                    attributes.push((attr, value));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
        // Content: children and text until the matching close tag.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                self.skip_ws();
                self.expect(">", "closing tag end")?;
                if close != name {
                    return Err(XmlError::MismatchedTag { open: name, close });
                }
                return Ok(Element {
                    name,
                    attributes,
                    children,
                    text: text.trim().to_string(),
                });
            }
            match self.peek() {
                Some(b'<') => children.push(self.element()?),
                Some(_) => {
                    text.push(unescape_char(self)?);
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn unescape_char(p: &mut Parser<'_>) -> Result<char, XmlError> {
    if p.eat("&lt;") {
        return Ok('<');
    }
    if p.eat("&gt;") {
        return Ok('>');
    }
    if p.eat("&quot;") {
        return Ok('"');
    }
    if p.eat("&apos;") {
        return Ok('\'');
    }
    if p.eat("&amp;") {
        return Ok('&');
    }
    Ok(p.bump()? as char)
}

/// Parses a document: optional declaration/comments, one root element.
///
/// # Errors
///
/// Returns an [`XmlError`] describing the first syntax problem.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser::new(input);
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.peek().is_some() {
        return Err(XmlError::TrailingContent(p.pos));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = r#"
            <?xml version="1.0"?>
            <!-- a host -->
            <host name="chef">
                <service task="cook omelets" duration-ms="600000"/>
                <fragment id="omelets">
                    <task name="cook omelets" mode="conjunctive">
                        <input label="omelet bar setup"/>
                        <output label="breakfast served"/>
                    </task>
                </fragment>
            </host>
        "#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "host");
        assert_eq!(root.attr("name"), Some("chef"));
        assert_eq!(root.children.len(), 2);
        let svc = root.child("service").unwrap();
        assert_eq!(svc.attr("task"), Some("cook omelets"));
        let task = root.child("fragment").unwrap().child("task").unwrap();
        assert_eq!(task.children_named("input").count(), 1);
        assert_eq!(
            task.child("output").unwrap().attr("label"),
            Some("breakfast served")
        );
    }

    #[test]
    fn text_content_is_captured_and_trimmed() {
        let root = parse("<note>  hello <b>bold</b> world  </note>").unwrap();
        assert_eq!(root.text, "hello  world");
        assert_eq!(root.child("b").unwrap().text, "bold");
    }

    #[test]
    fn entities_are_unescaped() {
        let root = parse(r#"<x label="a &amp; b &lt;c&gt;">1 &amp; 2</x>"#).unwrap();
        assert_eq!(root.attr("label"), Some("a & b <c>"));
        assert_eq!(root.text, "1 & 2");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }), "{err}");
    }

    #[test]
    fn truncated_input_errors() {
        assert_eq!(parse("<a><b>").unwrap_err(), XmlError::UnexpectedEof);
        assert_eq!(parse("<a attr=\"x").unwrap_err(), XmlError::UnexpectedEof);
    }

    #[test]
    fn trailing_content_errors() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::TrailingContent(_)));
    }

    #[test]
    fn require_attr_reports_element() {
        let root = parse("<service/>").unwrap();
        let err = root.require_attr("task").unwrap_err();
        assert_eq!(
            err.to_string(),
            "element `<service>` is missing attribute `task`"
        );
    }

    #[test]
    fn comments_inside_elements_are_skipped() {
        let root = parse("<a><!-- hi --><b/><!-- bye --></a>").unwrap();
        assert_eq!(root.children.len(), 1);
    }
}
