//! The sans-io protocol core: one host's complete OWMS state machine,
//! free of any transport.
//!
//! [`HostCore`] owns the paper's §4.2 components — the construction
//! subsystem (Workflow Manager + Auction Manager) and the execution
//! subsystem (Fragment, Service, Schedule, Auction Participation and
//! Execution Managers) — but performs **no I/O**. Every input arrives
//! through a narrow poll surface:
//!
//! * [`HostCore::handle_msg`] — a typed protocol message from a peer,
//! * [`HostCore::handle_frame`] — the same message as encoded wire
//!   bytes (decoded through the host's vocabulary trust boundary),
//! * [`HostCore::handle_timer`] — a timer the driver armed on the
//!   core's behalf fired,
//! * [`HostCore::tick`] — a clock poll for drivers without a timer
//!   facility: fires every armed timer that has come due.
//!
//! Each call returns an [`ActionQueue`] of typed effects — messages to
//! send ([`Action::Send`] / [`Action::SendBytes`]), timers to arm
//! ([`Action::SetTimer`]), observability events
//! ([`Action::Event`]) — plus the modeled compute time the call
//! charged. A *driver* (see [`crate::driver`]) owns the transport: the
//! deterministic simulator, an in-process bytes loopback, or any future
//! async executor can drive the identical protocol logic.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use openwf_core::{Fragment, Label, TaskId};
use openwf_mobility::{Motion, Point, SiteMap};
use openwf_obs::{Counter, Histogram, Obs, SpanPhase, TraceEvent};
use openwf_simnet::{HostId, Message, SimDuration, SimTime, TimerToken};
use openwf_wire::{DecodeScratch, VocabularyBudget, WireError};

use crate::auction::{AuctionAction, ProblemAuctions};
use crate::auction_part::{AuctionParticipationManager, BidDecision};
use crate::codec;
use crate::exec::{ExecEvent, ExecutionManager};
use crate::fragment_mgr::FragmentManager;
use crate::messages::{Msg, ProblemId};
use crate::metadata::{build_plans, compute_metadata};
use crate::params::RuntimeParams;
use crate::prefs::Preferences;
use crate::report::ProblemStatus;
use crate::schedule::ScheduleManager;
use crate::service::{ServiceDescription, ServiceManager};
use crate::workflow_mgr::{Phase, WorkflowManager, WsAction};

/// Which storage backend backs a host's Fragment Manager (see
/// [`openwf_core::FragmentBackend`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum StorageConfig {
    /// Knowhow lives only in memory (the default; a restart loses it).
    #[default]
    InMemory,
    /// Knowhow is appended to `openwf-wire`'s CRC-checked segment log in
    /// `dir` and replayed on restart, so a restarted host reconstructs
    /// the same database — and therefore bit-identical supergraphs.
    Durable {
        /// Log directory (created if absent; an existing log is
        /// replayed).
        dir: PathBuf,
        /// Segment roll size in bytes
        /// ([`openwf_wire::DEFAULT_SEGMENT_BYTES`] unless overridden).
        segment_bytes: u64,
        /// When the log snapshots its live set and compacts covered
        /// segments ([`openwf_wire::StoragePolicy`]; the default is
        /// manual only). Snapshots bound restart cost to O(live +
        /// tail) instead of O(insert history).
        policy: openwf_wire::StoragePolicy,
    },
}

/// Static configuration of one host: its knowhow, capabilities, place and
/// disposition (the paper's deployment steps 2 and 3: "adding knowhow in
/// the form of workflow fragments, and adding service descriptions").
///
/// `Clone` lets a driver keep the config it built a host from and rebuild
/// the host after a kill — with durable storage, the clone reopens the
/// same on-disk store (the chaos soak's kill-restart path).
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Workflow fragments this host knows (shared handles; scenario
    /// generators hand the same allocation to every consumer).
    pub fragments: Vec<Arc<Fragment>>,
    /// Services this host offers.
    pub services: Vec<ServiceDescription>,
    /// Starting position.
    pub position: Point,
    /// Motion capability.
    pub motion: Motion,
    /// Site map for resolving symbolic locations.
    pub site: SiteMap,
    /// Willingness preferences.
    pub prefs: Preferences,
    /// Construction parallelism: worker threads (and fragment-store
    /// shards) this host uses to answer and fan out frontier queries.
    /// `1` (default) keeps everything inline; `0` means one worker per
    /// hardware thread.
    pub construction_threads: usize,
    /// Per-community vocabulary cap: the maximum number of distinct
    /// interned names (labels, tasks, fragment ids) this host admits
    /// across its own knowhow and peer fragment replies. Replies that
    /// would exceed the cap are rejected as protocol errors instead of
    /// growing the process-wide interner without bound. Enforcement runs
    /// at wire decode (`openwf-wire`'s `VocabularyBudget`): a capped
    /// host routes peer replies through the binary codec and charges
    /// each distinct un-interned name *before* anything is interned —
    /// and on the frame transport ([`HostCore::handle_frame`]) **every**
    /// peer frame's name table is charged, since at a networked
    /// boundary any frame can mint. `None` (default) trusts the
    /// community.
    pub max_interned_names: Option<usize>,
    /// Per-peer vocabulary-rejection tolerance: once a single peer has
    /// had this many frames rejected at the vocabulary trust boundary,
    /// the host **quarantines** it — every subsequent message or frame
    /// from that peer is dropped on arrival and a
    /// [`WorkflowEvent::PeerQuarantined`] is surfaced once. `None`
    /// (default) keeps counting without acting.
    pub max_vocabulary_rejections: Option<u64>,
    /// Fragment storage backend (see [`StorageConfig`]). The default is
    /// in-memory.
    pub storage: StorageConfig,
    /// Observability collectors (metrics registry + trace sink) this
    /// host records into. The default is fully disabled: every record
    /// call is a single-branch no-op, and enabling collection never
    /// changes protocol behaviour — collectors draw no randomness, arm
    /// no timers, and send nothing (the scenario layer property-tests
    /// bit-identical outcomes with collectors on or off).
    pub obs: Obs,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            fragments: Vec::new(),
            services: Vec::new(),
            position: Point::ORIGIN,
            motion: Motion::STATIONARY,
            site: SiteMap::new(),
            prefs: Preferences::willing(),
            construction_threads: 1,
            max_interned_names: None,
            max_vocabulary_rejections: None,
            storage: StorageConfig::InMemory,
            obs: Obs::disabled(),
        }
    }
}

impl HostConfig {
    /// An empty configuration (no knowhow, no services, stationary at the
    /// origin).
    pub fn new() -> Self {
        HostConfig::default()
    }

    /// Adds a fragment (owned or shared).
    pub fn with_fragment(mut self, fragment: impl Into<Arc<Fragment>>) -> Self {
        self.fragments.push(fragment.into());
        self
    }

    /// Adds a service.
    pub fn with_service(mut self, service: ServiceDescription) -> Self {
        self.services.push(service);
        self
    }

    /// Sets position and motion.
    pub fn located(mut self, position: Point, motion: Motion) -> Self {
        self.position = position;
        self.motion = motion;
        self
    }

    /// Sets the site map.
    pub fn with_site(mut self, site: SiteMap) -> Self {
        self.site = site;
        self
    }

    /// Sets preferences.
    pub fn with_prefs(mut self, prefs: Preferences) -> Self {
        self.prefs = prefs;
        self
    }

    /// Sets the construction worker-thread count (`0` = one per hardware
    /// thread).
    pub fn with_construction_threads(mut self, threads: usize) -> Self {
        self.construction_threads = threads;
        self
    }

    /// Sets the per-community vocabulary cap (see
    /// [`HostConfig::max_interned_names`]).
    pub fn with_vocabulary_cap(mut self, cap: usize) -> Self {
        self.max_interned_names = Some(cap);
        self
    }

    /// Quarantines any peer after `cap` vocabulary rejections (see
    /// [`HostConfig::max_vocabulary_rejections`]).
    pub fn with_max_vocabulary_rejections(mut self, cap: u64) -> Self {
        self.max_vocabulary_rejections = Some(cap);
        self
    }

    /// Selects the fragment storage backend.
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = storage;
        self
    }

    /// Persists this host's knowhow in a durable segment log at `dir`
    /// (replayed on restart; see [`StorageConfig::Durable`]) with
    /// manual-only snapshot/compaction.
    pub fn with_durable_storage(mut self, dir: impl Into<PathBuf>) -> Self {
        self.storage = StorageConfig::Durable {
            dir: dir.into(),
            segment_bytes: openwf_wire::DEFAULT_SEGMENT_BYTES,
            policy: openwf_wire::StoragePolicy::default(),
        };
        self
    }

    /// Attaches observability collectors (see [`HostConfig::obs`]).
    /// Clone one [`Obs`] into every host of a community so metrics
    /// aggregate in a single registry and trace events land in one
    /// sink.
    pub fn with_observability(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the durable log's snapshot/compaction policy (no-op advice
    /// for in-memory storage: the backend must already be
    /// [`StorageConfig::Durable`], e.g. via
    /// [`HostConfig::with_durable_storage`]).
    pub fn with_storage_policy(mut self, policy: openwf_wire::StoragePolicy) -> Self {
        if let StorageConfig::Durable {
            policy: configured, ..
        } = &mut self.storage
        {
            *configured = policy;
        }
        self
    }
}

/// Observability events the core surfaces to its driver — milestones and
/// protocol-boundary decisions an embedder may want to log, export or
/// act on. Drivers are free to ignore them; none carries protocol
/// obligations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkflowEvent {
    /// A problem this host initiated finished construction and is moving
    /// to allocation.
    Constructed {
        /// The constructed problem.
        problem: ProblemId,
    },
    /// A problem this host initiated delivered every goal.
    Completed {
        /// The completed problem.
        problem: ProblemId,
    },
    /// A problem this host initiated failed terminally (repair attempts
    /// exhausted or construction impossible).
    Failed {
        /// The failed problem.
        problem: ProblemId,
        /// Human-readable reason.
        reason: String,
    },
    /// A peer crossed [`HostConfig::max_vocabulary_rejections`] and was
    /// quarantined: its frames are dropped from now on.
    PeerQuarantined {
        /// The quarantined peer.
        peer: HostId,
        /// Its rejection count when the quarantine tripped.
        rejections: u64,
    },
}

/// One typed effect the core asks its driver to perform.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum Action {
    /// Deliver a typed protocol message to `to` (emitted in
    /// [`OutboundMode::Typed`]).
    Send {
        /// Destination host.
        to: HostId,
        /// The message.
        msg: Msg,
    },
    /// Deliver one encoded wire frame to `to` (emitted in
    /// [`OutboundMode::Encoded`]; the bytes are a complete
    /// `openwf-wire` `TAG_MSG` frame produced by
    /// [`crate::codec::encode_msg`]).
    SendBytes {
        /// Destination host.
        to: HostId,
        /// The complete frame.
        bytes: Vec<u8>,
    },
    /// Arm a timer: deliver `token` back through
    /// [`HostCore::handle_timer`] after `delay` (or let
    /// [`HostCore::tick`] fire it on a clock poll).
    SetTimer {
        /// Delay from the current callback's time.
        delay: SimDuration,
        /// Token to hand back.
        token: TimerToken,
    },
    /// An observability event (see [`WorkflowEvent`]).
    Event(WorkflowEvent),
}

/// The ordered effects of one [`HostCore`] poll call, plus the modeled
/// compute time the call charged.
///
/// Actions must be applied **in order** (message sends among themselves
/// preserve protocol causality); the charge applies to the callback as
/// a whole — a transport that models host compute should delay every
/// action in the queue by the total charge, which is exactly what the
/// simulator does.
#[derive(Debug, Default)]
pub struct ActionQueue {
    actions: Vec<Action>,
    charged: SimDuration,
}

impl ActionQueue {
    fn new() -> Self {
        ActionQueue::default()
    }

    /// Total modeled compute time charged by the call that produced this
    /// queue.
    pub fn charged(&self) -> SimDuration {
        self.charged
    }

    /// The effects, in emission order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of queued effects.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the call produced no effects (a charge may still be
    /// present).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    fn charge(&mut self, cost: SimDuration) {
        self.charged += cost;
    }

    fn push(&mut self, action: Action) {
        self.actions.push(action);
    }
}

impl IntoIterator for ActionQueue {
    type Item = Action;
    type IntoIter = std::vec::IntoIter<Action>;

    /// Consumes the queue in emission order. Read
    /// [`ActionQueue::charged`] first — the charge is not an action.
    fn into_iter(self) -> Self::IntoIter {
        self.actions.into_iter()
    }
}

/// How the core emits outbound protocol messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OutboundMode {
    /// Emit [`Action::Send`] with the typed [`Msg`] (the in-process
    /// simulator's mode: `Arc<Fragment>` payloads are shared, not
    /// copied).
    #[default]
    Typed,
    /// Encode every outbound message through [`crate::codec::encode_msg`]
    /// and emit [`Action::SendBytes`] — what a networked transport
    /// ships. The receiving core decodes through
    /// [`HostCore::handle_frame`], which charges its vocabulary budget
    /// at the trust boundary.
    Encoded,
}

#[derive(Clone, Debug)]
enum TimerPurpose {
    RoundTimeout { problem: ProblemId, round: u32 },
    AuctionDeadline { problem: ProblemId, task: TaskId },
    AuctionTimeout { problem: ProblemId },
    BidHoldExpiry { problem: ProblemId, task: TaskId },
    ExecStart { problem: ProblemId, task: TaskId },
    ExecFinish { problem: ProblemId, task: TaskId },
    Watchdog { problem: ProblemId },
}

#[derive(Clone, Debug)]
struct ArmedTimer {
    due: SimTime,
    purpose: TimerPurpose,
}

/// Storage-backend metric names published as gauges (point-in-time
/// sizes that move both ways); everything else a backend reports is
/// monotonic and published as a counter. See
/// [`HostCore::publish_metrics`].
const STORAGE_GAUGE_NAMES: &[&str] = &["live_bytes", "garbage_bytes", "log_bytes", "segments"];

/// Resolved per-host metric handles (all no-ops when the registry is
/// disabled) plus the baselines [`HostCore::publish_metrics`] diffs
/// pull-style sources against, so multiple hosts sharing one registry
/// publish correct community-wide totals.
#[derive(Debug, Default)]
struct CoreMetrics {
    /// `core.messages` — protocol messages dispatched.
    messages: Counter,
    /// `core.rounds` — construction rounds opened (round timeouts armed).
    rounds: Counter,
    /// `core.auctions` — task auctions opened.
    auctions: Counter,
    /// `core.vocab_rejections` — frames rejected at the vocabulary
    /// trust boundary.
    vocab_rejections: Counter,
    /// `core.quarantines` — peers quarantined for repeated minting.
    quarantines: Counter,
    /// `core.timer_lag_us` — how late timers fire relative to their due
    /// time (µs of virtual time; a driver servicing timers promptly
    /// keeps this at 0).
    timer_lag_us: Histogram,
    /// `core.queue_depth` — actions emitted per poll call.
    queue_depth: Histogram,
    /// Last-published values of pull-style sources (decode cache,
    /// storage backend), keyed by source-local name.
    published: HashMap<&'static str, u64>,
}

impl CoreMetrics {
    fn resolve(obs: &Obs) -> Self {
        let m = &obs.metrics;
        CoreMetrics {
            messages: m.counter("core.messages"),
            rounds: m.counter("core.rounds"),
            auctions: m.counter("core.auctions"),
            vocab_rejections: m.counter("core.vocab_rejections"),
            quarantines: m.counter("core.quarantines"),
            timer_lag_us: m.histogram("core.timer_lag_us"),
            queue_depth: m.histogram("core.queue_depth"),
            published: HashMap::new(),
        }
    }

    /// Unsigned delta of a monotonic source value since its last
    /// publish (and records the new baseline).
    fn delta(&mut self, name: &'static str, value: u64) -> u64 {
        let prev = self.published.insert(name, value).unwrap_or(0);
        value.saturating_sub(prev)
    }

    /// Signed delta for gauge-like sources that move both ways.
    fn gauge_delta(&mut self, name: &'static str, value: u64) -> i64 {
        let prev = self.published.insert(name, value).unwrap_or(0);
        value as i64 - prev as i64
    }
}

/// One participant's complete protocol state machine (all §4.2 managers),
/// driven sans-io through the poll surface described in the module docs.
pub struct HostCore {
    /// Identity, fixed at first [`HostCore::bind`].
    me: Option<HostId>,
    community: Vec<HostId>,
    params: RuntimeParams,
    prefs: Preferences,
    /// Execution subsystem.
    fragment_mgr: FragmentManager,
    service_mgr: ServiceManager,
    schedule: ScheduleManager,
    auction_part: AuctionParticipationManager,
    exec_mgr: ExecutionManager,
    /// Construction subsystem.
    workflow_mgr: WorkflowManager,
    /// Vocabulary trust boundary: the decode-side budget capped peer
    /// replies are charged against (see [`crate::codec::reply_through_wire`]).
    vocab: VocabularyBudget,
    /// Per-host decode state: recycled frame/name/staging buffers plus
    /// the fragment-identity cache (primed with own knowhow at
    /// construction, so an echoed fragment decodes to the shared `Arc`).
    decode: DecodeScratch,
    vocabulary_rejections: u64,
    /// Per-peer vocabulary rejection tallies;
    /// [`HostConfig::max_vocabulary_rejections`] acts on them.
    vocab_rejections_by_peer: HashMap<HostId, u64>,
    max_vocab_rejections: Option<u64>,
    quarantined: HashSet<HostId>,
    outbound: OutboundMode,
    /// Armed timers: token → due time + purpose. Due times let
    /// [`HostCore::tick`] fire timers on a clock poll and
    /// [`HostCore::next_timer_due`] tell a poll-based driver how long it
    /// may sleep.
    timers: HashMap<u64, ArmedTimer>,
    next_timer: u64,
    /// Observability collectors (disabled by default; see
    /// [`HostConfig::obs`]).
    obs: Obs,
    /// Resolved metric handles + publish baselines.
    metrics: CoreMetrics,
}

impl HostCore {
    /// Builds a core from its configuration.
    ///
    /// # Panics
    ///
    /// Panics when [`StorageConfig::Durable`] storage cannot be opened
    /// or an insert cannot be persisted (I/O failure, corrupt log).
    pub fn new(config: HostConfig, params: RuntimeParams) -> Self {
        let mut fragment_mgr = match config.storage {
            StorageConfig::InMemory => {
                FragmentManager::with_parallelism(config.construction_threads)
            }
            StorageConfig::Durable {
                dir,
                segment_bytes,
                policy,
            } => FragmentManager::durable_with(
                dir,
                config.construction_threads,
                segment_bytes,
                policy,
            )
            .expect("open the durable fragment log"),
        };
        for f in config.fragments {
            // A durable backend may have replayed this exact fragment
            // from its log already (a restarted host re-running its
            // config): re-appending it would grow the log by one
            // replace-by-id record per restart, so skip byte-identical
            // knowhow. A *changed* fragment under the same id still
            // replaces the logged one.
            let already_logged = fragment_mgr.store().get(f.id()).is_some_and(|existing| {
                let mut a = Vec::new();
                let mut b = Vec::new();
                openwf_wire::encode_fragment(existing, &mut a);
                openwf_wire::encode_fragment(&f, &mut b);
                a == b
            });
            if !already_logged {
                fragment_mgr.add(f);
            }
        }
        let mut vocab = VocabularyBudget::new(config.max_interned_names);
        if vocab.cap().is_some() {
            // Own knowhow is trusted: it seeds the vocabulary instead of
            // being checked against the cap. Seed from the *manager*,
            // not the config, so knowhow replayed from a durable log
            // keeps its budget headroom across restarts.
            for f in fragment_mgr.fragments() {
                vocab.seed_fragment(f);
            }
        }
        let mut decode = DecodeScratch::new();
        fragment_mgr.prime_cache(decode.cache_mut());
        let mut service_mgr = ServiceManager::new();
        for s in config.services {
            service_mgr.register(s);
        }
        let schedule = ScheduleManager::new(config.position, config.motion, config.site);
        HostCore {
            me: None,
            community: Vec::new(),
            params,
            prefs: config.prefs,
            fragment_mgr,
            service_mgr,
            schedule,
            auction_part: AuctionParticipationManager::new(),
            exec_mgr: ExecutionManager::new(),
            workflow_mgr: WorkflowManager::new(),
            vocab,
            decode,
            vocabulary_rejections: 0,
            vocab_rejections_by_peer: HashMap::new(),
            max_vocab_rejections: config.max_vocabulary_rejections,
            quarantined: HashSet::new(),
            outbound: OutboundMode::Typed,
            timers: HashMap::new(),
            next_timer: 0,
            metrics: CoreMetrics::resolve(&config.obs),
            obs: config.obs,
        }
    }

    /// Fixes this core's host identity. Drivers call it once at install
    /// (re-binding the same id is a no-op, so per-callback binding is
    /// also fine).
    ///
    /// # Panics
    ///
    /// Panics on an attempt to re-bind to a *different* id — one core
    /// drives one host.
    pub fn bind(&mut self, me: HostId) {
        match self.me {
            None => self.me = Some(me),
            Some(bound) => assert_eq!(bound, me, "a HostCore drives exactly one host identity"),
        }
    }

    /// The bound identity.
    ///
    /// # Panics
    ///
    /// Panics before the first [`HostCore::bind`].
    pub fn id(&self) -> HostId {
        self.me.expect("HostCore::bind before driving")
    }

    /// Selects how outbound messages are emitted (see [`OutboundMode`]).
    pub fn set_outbound_mode(&mut self, mode: OutboundMode) {
        self.outbound = mode;
    }

    /// The current outbound emission mode.
    pub fn outbound_mode(&self) -> OutboundMode {
        self.outbound
    }

    /// Number of peer frames/replies rejected at the vocabulary trust
    /// boundary (see [`HostConfig::max_interned_names`]).
    pub fn vocabulary_rejections(&self) -> u64 {
        self.vocabulary_rejections
    }

    /// Vocabulary rejections attributed to one peer (what
    /// [`HostConfig::max_vocabulary_rejections`] acts on).
    pub fn vocabulary_rejections_from(&self, peer: HostId) -> u64 {
        self.vocab_rejections_by_peer
            .get(&peer)
            .copied()
            .unwrap_or(0)
    }

    /// Distinct names recorded in the vocabulary budget (own knowhow —
    /// including knowhow replayed from a durable log — plus admitted
    /// peer names). Always 0 for uncapped hosts, which track nothing.
    pub fn vocabulary_names(&self) -> usize {
        self.vocab.len()
    }

    /// True when `peer` has been quarantined for minting past the
    /// vocabulary cap (see [`HostConfig::max_vocabulary_rejections`]).
    pub fn is_quarantined(&self, peer: HostId) -> bool {
        self.quarantined.contains(&peer)
    }

    /// Sets the community membership (all host ids, including this one).
    /// Called by the driver before traffic flows.
    pub fn set_community(&mut self, community: Vec<HostId>) {
        self.community = community;
    }

    /// The workflow manager (workspaces/reports), for inspection.
    pub fn workflow_mgr(&self) -> &WorkflowManager {
        &self.workflow_mgr
    }

    /// The fragment manager, for inspection and late configuration.
    pub fn fragment_mgr_mut(&mut self) -> &mut FragmentManager {
        &mut self.fragment_mgr
    }

    /// The fragment manager (read-only).
    pub fn fragment_mgr(&self) -> &FragmentManager {
        &self.fragment_mgr
    }

    /// The service manager, for inspection, hooks and late configuration.
    pub fn service_mgr_mut(&mut self) -> &mut ServiceManager {
        &mut self.service_mgr
    }

    /// The service manager (read-only).
    pub fn service_mgr(&self) -> &ServiceManager {
        &self.service_mgr
    }

    /// The schedule manager (commitments), for inspection.
    pub fn schedule(&self) -> &ScheduleManager {
        &self.schedule
    }

    /// The workspace of the **latest attempt** of the problem `base`
    /// belongs to, if any.
    pub fn latest_attempt(&self, base: ProblemId) -> Option<&crate::workflow_mgr::Workspace> {
        self.workflow_mgr
            .iter()
            .filter(|ws| ws.problem.same_problem(base))
            .max_by_key(|ws| ws.problem.attempt)
    }

    /// Earliest due time among armed timers — how long a poll-based
    /// driver may sleep before the next [`HostCore::tick`] has work.
    pub fn next_timer_due(&self) -> Option<SimTime> {
        self.timers.values().map(|t| t.due).min()
    }

    /// The observability collectors this core records into (disabled
    /// unless [`HostConfig::obs`] attached enabled ones).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Decode-side fragment-identity cache statistics `(hits, misses)`
    /// — how often a peer-sent fragment decoded to an already-known
    /// shared `Arc` instead of rebuilding the graph.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        let cache = self.decode.cache();
        (cache.hits(), cache.misses())
    }

    /// Publishes this host's *pull-style* metrics into the registry:
    /// decode-path statistics (`decode.cache_hits`, `decode.cache_misses`,
    /// `decode.frames`, `decode.span_reuses`) and the fragment storage
    /// backend's report (`storage.*` — log/snapshot/compaction/replay
    /// figures from [`openwf_core::FragmentBackend::metrics`]).
    ///
    /// Cheap per-poll metrics (counters, timer lag) are recorded live;
    /// this call syncs the sources that would cost a read or an
    /// allocation per poll. Drivers call it at a barrier (end of run).
    /// Publishing repeatedly is safe: every value is published as a
    /// **delta** against the previous publish — monotonic sources as
    /// counter increments, sizes as signed gauge moves — so any number
    /// of hosts can share one registry and its totals stay correct.
    pub fn publish_metrics(&mut self) {
        if !self.obs.metrics.is_enabled() {
            return;
        }
        let cache = self.decode.cache();
        let decode_stats: [(&'static str, u64); 4] = [
            ("decode.cache_hits", cache.hits()),
            ("decode.cache_misses", cache.misses()),
            ("decode.frames", self.decode.frames_decoded()),
            ("decode.span_reuses", self.decode.span_reuses()),
        ];
        for (name, value) in decode_stats {
            let d = self.metrics.delta(name, value);
            if d > 0 {
                self.obs.metrics.counter(name).add(d);
            }
        }

        let report = self.fragment_mgr.backend_metrics();
        if report.is_empty() {
            return;
        }
        let lookup: HashMap<&'static str, u64> = report.iter().copied().collect();
        let snapshots_before = self
            .metrics
            .published
            .get("snapshots")
            .copied()
            .unwrap_or(0);
        let compactions_before = self
            .metrics
            .published
            .get("compactions")
            .copied()
            .unwrap_or(0);
        for (name, value) in report {
            match name {
                // Fed into histograms below, keyed off their op counts.
                "last_snapshot_micros" | "last_compaction_micros" => {
                    self.metrics.published.insert(name, value);
                }
                n if STORAGE_GAUGE_NAMES.contains(&n) => {
                    let d = self.metrics.gauge_delta(name, value);
                    if d != 0 {
                        self.obs.metrics.gauge(&format!("storage.{name}")).add(d);
                    }
                }
                _ => {
                    let d = self.metrics.delta(name, value);
                    if d > 0 {
                        self.obs.metrics.counter(&format!("storage.{name}")).add(d);
                    }
                }
            }
        }
        if lookup.get("snapshots").copied().unwrap_or(0) > snapshots_before {
            self.obs
                .metrics
                .histogram("storage.snapshot_us")
                .record(lookup.get("last_snapshot_micros").copied().unwrap_or(0));
        }
        if lookup.get("compactions").copied().unwrap_or(0) > compactions_before {
            self.obs
                .metrics
                .histogram("storage.compaction_us")
                .record(lookup.get("last_compaction_micros").copied().unwrap_or(0));
        }
    }

    /// Records one causal trace event for `problem` (no-op unless the
    /// trace sink is enabled; callers building a `detail` string should
    /// gate on [`openwf_obs::TraceSink::is_enabled`] first).
    fn trace(
        &self,
        now: SimTime,
        problem: ProblemId,
        name: &'static str,
        phase: SpanPhase,
        dur_us: u64,
        detail: String,
    ) {
        self.obs.trace.record(TraceEvent {
            at_us: now.as_micros(),
            host: self.me.map(|h| h.0).unwrap_or(u32::MAX),
            trace: problem.trace_id(),
            name,
            phase,
            dur_us,
            detail,
        });
    }

    // ---- the poll surface ------------------------------------------------

    /// Handles one delivered typed protocol message, returning the
    /// effects. `now` is the delivery time on the driver's clock.
    pub fn handle_msg(&mut self, from: HostId, msg: Msg, now: SimTime) -> ActionQueue {
        let mut q = ActionQueue::new();
        if self.quarantined.contains(&from) {
            return q; // dropped on arrival, nothing charged
        }
        self.dispatch_msg(from, msg, now, &mut q, false);
        self.metrics.queue_depth.record(q.len() as u64);
        q
    }

    /// Handles one delivered wire frame (a complete `TAG_MSG` frame as
    /// produced by [`crate::codec::encode_msg`]): decodes it and
    /// dispatches the message. **Every peer frame's whole name table is
    /// charged against this host's vocabulary budget before anything is
    /// interned** — at a networked boundary the interner can only grow
    /// through decode, so the cap must guard every frame, not just
    /// fragment replies. Frames from *self* (a driver looping back the
    /// host's own traffic) are trusted like own knowhow and bypass the
    /// budget.
    ///
    /// Decode failures never panic and never poison the core. A
    /// [`WireError::VocabularyExceeded`] drops the frame with the
    /// interner untouched; it additionally books a rejection against
    /// the sending peer (possibly quarantining it, see
    /// [`HostConfig::max_vocabulary_rejections`]) only when the frame
    /// was a `FragmentReply` — the family through which a peer mints
    /// *knowhow* names of its own choosing. Other over-budget frames
    /// (a query echoing a third party's rich frontier, say) are not
    /// evidence of minting by the sender and are dropped without
    /// blame. Any other wire error is transport-level loss: dropped
    /// silently, like a message the network never delivered.
    ///
    /// One deliberate asymmetry with the typed path: an over-budget
    /// reply received *as a frame* cannot be attributed to its query
    /// round (nothing of it decodes), so the round completes via its
    /// timeout — on the typed transport the rejection yields an
    /// explicit empty answer instead. Within-budget traffic is
    /// transport-identical either way.
    pub fn handle_frame(&mut self, from: HostId, bytes: &[u8], now: SimTime) -> ActionQueue {
        let mut q = ActionQueue::new();
        if self.quarantined.contains(&from) {
            return q;
        }
        let decoded = if from == self.id() {
            codec::decode_msg_with(bytes, &mut VocabularyBudget::unlimited(), &mut self.decode)
        } else {
            codec::decode_msg_with(bytes, &mut self.vocab, &mut self.decode)
        };
        match decoded {
            Ok((msg, _consumed)) => self.dispatch_msg(from, msg, now, &mut q, true),
            Err(WireError::VocabularyExceeded { .. }) => {
                // Cold path: re-parse only to classify the offence.
                if codec::frame_is_fragment_reply(bytes).unwrap_or(false) {
                    self.note_rejection(from, now, &mut q);
                }
            }
            Err(_) => {}
        }
        self.metrics.queue_depth.record(q.len() as u64);
        q
    }

    /// Handles a fired timer (one the driver armed from an
    /// [`Action::SetTimer`]).
    pub fn handle_timer(&mut self, token: TimerToken, now: SimTime) -> ActionQueue {
        let mut q = ActionQueue::new();
        let Some(armed) = self.timers.remove(&token.0) else {
            return q;
        };
        self.metrics
            .timer_lag_us
            .record(now.since(armed.due).as_micros());
        self.fire_timer(armed.purpose, now, &mut q);
        self.metrics.queue_depth.record(q.len() as u64);
        q
    }

    /// Clock poll: fires every armed timer whose due time is at or
    /// before `now`, in due order. For drivers without a timer facility
    /// — a transport that can only say "this much time has passed" calls
    /// `tick` instead of scheduling [`Action::SetTimer`] deliveries
    /// (drivers that do deliver timers must not *also* tick past them,
    /// or timers fire twice... which the protocol tolerates but models
    /// nothing).
    pub fn tick(&mut self, now: SimTime) -> ActionQueue {
        let mut q = ActionQueue::new();
        loop {
            // One at a time: firing a timer can arm new (already-due)
            // timers, which an upfront snapshot would miss.
            let due = self
                .timers
                .iter()
                .filter(|(_, t)| t.due <= now)
                .map(|(&tok, t)| (t.due, tok))
                .min();
            let Some((_, token)) = due else {
                self.metrics.queue_depth.record(q.len() as u64);
                return q;
            };
            let armed = self.timers.remove(&token).expect("selected above");
            self.metrics
                .timer_lag_us
                .record(now.since(armed.due).as_micros());
            self.fire_timer(armed.purpose, now, &mut q);
        }
    }

    /// Submits a problem specification locally — what the paper's
    /// Workflow Initiator does on the initiating host. Equivalent to
    /// delivering [`Msg::Initiate`] from self; provided so embedders
    /// driving a bare core need no self-addressed message plumbing.
    pub fn initiate(
        &mut self,
        problem: ProblemId,
        spec: openwf_core::Spec,
        now: SimTime,
    ) -> ActionQueue {
        self.handle_msg(self.id(), Msg::Initiate { problem, spec }, now)
    }

    // ---- outbound helpers ------------------------------------------------

    fn emit(&self, q: &mut ActionQueue, to: HostId, msg: Msg) {
        match self.outbound {
            OutboundMode::Typed => q.push(Action::Send { to, msg }),
            OutboundMode::Encoded => {
                let mut bytes = Vec::new();
                codec::encode_msg(&msg, &mut bytes);
                q.push(Action::SendBytes { to, bytes });
            }
        }
    }

    fn emit_all(&self, q: &mut ActionQueue, peers: &[HostId], msg: Msg) {
        let me = self.id();
        match self.outbound {
            OutboundMode::Typed => {
                for &p in peers {
                    if p != me {
                        q.push(Action::Send {
                            to: p,
                            msg: msg.clone(),
                        });
                    }
                }
            }
            OutboundMode::Encoded => {
                // Encode the broadcast once; each recipient gets a clone
                // of the bytes, not a fresh encode pass.
                let mut bytes = Vec::new();
                codec::encode_msg(&msg, &mut bytes);
                for &p in peers {
                    if p != me {
                        q.push(Action::SendBytes {
                            to: p,
                            bytes: bytes.clone(),
                        });
                    }
                }
            }
        }
    }

    fn arm(
        &mut self,
        q: &mut ActionQueue,
        now: SimTime,
        delay: SimDuration,
        purpose: TimerPurpose,
    ) {
        let token = self.next_timer;
        self.next_timer += 1;
        self.timers.insert(
            token,
            ArmedTimer {
                due: now + delay,
                purpose,
            },
        );
        q.push(Action::SetTimer {
            delay,
            token: TimerToken(token),
        });
    }

    fn arm_at(&mut self, q: &mut ActionQueue, now: SimTime, at: SimTime, purpose: TimerPurpose) {
        let delay = at.since(now);
        self.arm(q, now, delay, purpose);
    }

    fn others(&self) -> Vec<HostId> {
        let me = self.id();
        self.community
            .iter()
            .copied()
            .filter(|&h| h != me)
            .collect()
    }

    fn note_rejection(&mut self, from: HostId, now: SimTime, q: &mut ActionQueue) {
        self.vocabulary_rejections += 1;
        self.metrics.vocab_rejections.inc();
        let count = self.vocab_rejections_by_peer.entry(from).or_insert(0);
        *count += 1;
        let count = *count;
        if let Some(cap) = self.max_vocab_rejections {
            if count >= cap && self.quarantined.insert(from) {
                self.metrics.quarantines.inc();
                if self.obs.trace.is_enabled() {
                    // Quarantine is host- not problem-scoped: trace id 0.
                    self.obs.trace.record(TraceEvent {
                        at_us: now.as_micros(),
                        host: self.me.map(|h| h.0).unwrap_or(u32::MAX),
                        trace: 0,
                        name: "quarantine",
                        phase: SpanPhase::Instant,
                        dur_us: 0,
                        detail: format!("peer host{} after {count} rejections", from.0),
                    });
                }
                q.push(Action::Event(WorkflowEvent::PeerQuarantined {
                    peer: from,
                    rejections: count,
                }));
            }
        }
    }

    // ---- protocol logic --------------------------------------------------

    /// Dispatches one message. `off_the_wire` marks messages that
    /// arrived through [`HostCore::handle_frame`] — those were already
    /// decoded through the vocabulary budget, so the capped-host
    /// re-encode detour is skipped.
    fn dispatch_msg(
        &mut self,
        from: HostId,
        msg: Msg,
        now: SimTime,
        q: &mut ActionQueue,
        off_the_wire: bool,
    ) {
        q.charge(self.params.per_message_cost);
        self.metrics.messages.inc();
        if self.obs.trace.is_enabled() {
            self.trace(
                now,
                msg.problem(),
                msg.kind().as_str(),
                SpanPhase::Instant,
                0,
                format!("from host{}", from.0),
            );
        }
        match msg {
            Msg::Initiate { problem, spec } => {
                if self.obs.trace.is_enabled() {
                    let goals = spec.goals().len();
                    self.trace(
                        now,
                        problem,
                        "problem",
                        SpanPhase::Begin,
                        0,
                        format!("announce: {goals} goal(s)"),
                    );
                    self.trace(
                        now,
                        problem,
                        "construct",
                        SpanPhase::Begin,
                        0,
                        String::new(),
                    );
                }
                let n_peers = self.community.len().saturating_sub(1);
                self.workflow_mgr.create(problem, spec, now, n_peers);
                let actions = match self.workflow_mgr.get_mut(&problem) {
                    Some(ws) => ws.begin(&self.fragment_mgr, &self.service_mgr, &self.params),
                    None => Vec::new(),
                };
                self.apply_ws_actions(problem, actions, now, q);
            }

            Msg::FragmentQuery {
                problem,
                round,
                labels,
            } => {
                let fragments = self.fragment_mgr.query(&labels);
                self.emit(
                    q,
                    from,
                    Msg::FragmentReply {
                        problem,
                        round,
                        fragments,
                    },
                );
            }
            Msg::FragmentReply {
                problem,
                round,
                fragments,
            } => {
                // Trust boundary: a capped host receives the reply *off
                // the wire* — when the transport is typed (the
                // in-process simulator sharing `Arc<Fragment>`s), it
                // re-encodes the payload and decodes it through the
                // vocabulary budget, which charges every distinct
                // un-interned name before interning anything. A frame
                // that actually traveled as bytes was already charged at
                // decode in `handle_frame`. A rejected reply is dropped
                // (the round proceeds with it counted as an empty
                // answer) — the protocol error is recorded per peer, not
                // fatal.
                let fragments = if off_the_wire || self.vocab.cap().is_none() {
                    fragments
                } else {
                    match codec::reply_through_wire_with(
                        problem,
                        round,
                        fragments,
                        &mut self.vocab,
                        &mut self.decode,
                    ) {
                        Ok(decoded) => decoded,
                        Err(WireError::VocabularyExceeded { .. }) => {
                            // The peer minted past the cap: book the
                            // protocol error against it.
                            self.note_rejection(from, now, q);
                            Vec::new()
                        }
                        Err(_) => {
                            // Any other wire failure (e.g. a reply past
                            // the frame-size cap) is a transport-level
                            // loss, not vocabulary minting: drop the
                            // reply like a never-delivered message, but
                            // do not blame the peer's vocabulary.
                            Vec::new()
                        }
                    }
                };
                let actions = match self.workflow_mgr.get_mut(&problem) {
                    Some(ws) => ws.on_fragment_reply(
                        from,
                        round,
                        fragments,
                        &self.fragment_mgr,
                        &self.service_mgr,
                        &self.params,
                    ),
                    None => Vec::new(),
                };
                self.apply_ws_actions(problem, actions, now, q);
            }

            Msg::CapabilityQuery {
                problem,
                round,
                tasks,
            } => {
                let capable = self.service_mgr.capable_of(&tasks);
                self.emit(
                    q,
                    from,
                    Msg::CapabilityReply {
                        problem,
                        round,
                        capable,
                    },
                );
            }
            Msg::CapabilityReply {
                problem,
                round,
                capable,
            } => {
                let actions = match self.workflow_mgr.get_mut(&problem) {
                    Some(ws) => ws.on_capability_reply(
                        from,
                        round,
                        capable,
                        &self.fragment_mgr,
                        &self.service_mgr,
                        &self.params,
                    ),
                    None => Vec::new(),
                };
                self.apply_ws_actions(problem, actions, now, q);
            }

            Msg::CallForBids {
                problem,
                task,
                meta,
            } => {
                let decision = self.auction_part.consider(
                    problem,
                    &task,
                    &meta,
                    now,
                    &self.service_mgr,
                    &mut self.schedule,
                    &self.prefs,
                    &self.params,
                );
                match decision {
                    BidDecision::Submit(bid) => {
                        let expiry = bid.deadline + self.params.round_timeout;
                        self.arm_at(
                            q,
                            now,
                            expiry,
                            TimerPurpose::BidHoldExpiry {
                                problem,
                                task: task.clone(),
                            },
                        );
                        self.emit(q, from, Msg::Bid { problem, task, bid });
                    }
                    BidDecision::Decline(_) => {
                        self.emit(q, from, Msg::Decline { problem, task });
                    }
                }
            }
            Msg::Bid { problem, task, bid } => {
                q.charge(self.params.bid_evaluation_cost);
                let action = self
                    .workflow_mgr
                    .get_mut(&problem)
                    .and_then(|ws| ws.auctions.as_mut())
                    .map(|a| a.on_bid(&task, from, bid))
                    .unwrap_or(AuctionAction::None);
                self.handle_auction_action(problem, action, now, q);
            }
            Msg::Decline { problem, task } => {
                let action = self
                    .workflow_mgr
                    .get_mut(&problem)
                    .and_then(|ws| ws.auctions.as_mut())
                    .map(|a| a.on_decline(&task, from))
                    .unwrap_or(AuctionAction::None);
                self.handle_auction_action(problem, action, now, q);
            }
            Msg::Award {
                problem,
                task,
                assignment: _,
            } => {
                // The hold becomes a firm commitment (already scheduled).
                let _ = self.auction_part.on_award(problem, &task);
            }

            Msg::Execute { problem, plan } => {
                // A newer attempt supersedes older ones of the same problem.
                let events = self.exec_mgr.install_plan(problem, plan, now);
                self.apply_exec_events(problem, events, now, q);
            }
            Msg::InputDelivery { problem, label } => {
                let events = self.exec_mgr.on_input(problem, label, now);
                self.apply_exec_events(problem, events, now, q);
            }
            Msg::TaskCompleted { problem, task } => {
                if let Some(ws) = self.workflow_mgr.get_mut(&problem) {
                    ws.tasks_pending.remove(&task);
                }
            }
            Msg::GoalDelivered { problem, label } => {
                if let Some(ws) = self.workflow_mgr.get_mut(&problem) {
                    ws.goals_pending.remove(&label);
                    ws.report.goals_delivered.push(label);
                }
                self.check_completion(problem, now, q);
            }
        }
    }

    fn fire_timer(&mut self, purpose: TimerPurpose, now: SimTime, q: &mut ActionQueue) {
        match purpose {
            TimerPurpose::RoundTimeout { problem, round } => {
                let actions = match self.workflow_mgr.get_mut(&problem) {
                    Some(ws) => ws.on_round_timeout(
                        round,
                        &self.fragment_mgr,
                        &self.service_mgr,
                        &self.params,
                    ),
                    None => Vec::new(),
                };
                self.apply_ws_actions(problem, actions, now, q);
            }
            TimerPurpose::AuctionDeadline { problem, task } => {
                let action = self
                    .workflow_mgr
                    .get_mut(&problem)
                    .and_then(|ws| ws.auctions.as_mut())
                    .map(|a| a.on_deadline(&task))
                    .unwrap_or(AuctionAction::None);
                self.handle_auction_action(problem, action, now, q);
            }
            TimerPurpose::AuctionTimeout { problem } => {
                let still_allocating = self
                    .workflow_mgr
                    .get(&problem)
                    .map(|ws| ws.phase == Phase::Allocating)
                    .unwrap_or(false);
                if still_allocating {
                    let actions = self
                        .workflow_mgr
                        .get_mut(&problem)
                        .and_then(|ws| ws.auctions.as_mut())
                        .map(|a| a.force_decide_all())
                        .unwrap_or_default();
                    for action in actions {
                        self.handle_auction_action(problem, action, now, q);
                    }
                }
            }
            TimerPurpose::BidHoldExpiry { problem, task } => {
                let _ = self
                    .auction_part
                    .expire_hold(problem, &task, &mut self.schedule);
            }
            TimerPurpose::ExecStart { problem, task } => {
                let events = self.exec_mgr.on_start_time(problem, &task);
                self.apply_exec_events(problem, events, now, q);
            }
            TimerPurpose::ExecFinish { problem, task } => {
                self.finish_task(problem, task, q);
            }
            TimerPurpose::Watchdog { problem } => {
                let unfinished = self
                    .workflow_mgr
                    .get(&problem)
                    .map(|ws| ws.phase == Phase::Executing)
                    .unwrap_or(false);
                if unfinished {
                    self.repair_or_fail(
                        problem,
                        "execution watchdog expired before all goals were delivered".into(),
                        now,
                        q,
                    );
                }
            }
        }
    }

    fn apply_ws_actions(
        &mut self,
        problem: ProblemId,
        actions: Vec<WsAction>,
        now: SimTime,
        q: &mut ActionQueue,
    ) {
        for action in actions {
            match action {
                WsAction::BroadcastFragmentQuery { round, labels } => {
                    let msg = Msg::FragmentQuery {
                        problem,
                        round,
                        labels,
                    };
                    let others = self.others();
                    self.emit_all(q, &others, msg);
                }
                WsAction::BroadcastCapabilityQuery { round, tasks } => {
                    let msg = Msg::CapabilityQuery {
                        problem,
                        round,
                        tasks,
                    };
                    let others = self.others();
                    self.emit_all(q, &others, msg);
                }
                WsAction::ArmRoundTimeout { round } => {
                    self.metrics.rounds.inc();
                    let delay = self.params.round_timeout;
                    self.arm(q, now, delay, TimerPurpose::RoundTimeout { problem, round });
                }
                WsAction::Charge(d) => q.charge(d),
                WsAction::Constructed => {
                    if self.obs.trace.is_enabled() {
                        self.trace(now, problem, "construct", SpanPhase::End, 0, String::new());
                        self.trace(now, problem, "allocate", SpanPhase::Begin, 0, String::new());
                    }
                    q.push(Action::Event(WorkflowEvent::Constructed { problem }));
                    self.start_allocation(problem, now, q);
                }
                WsAction::Failed { reason } => {
                    // Construction failure is final: the community's live
                    // knowledge cannot satisfy the spec. (Repair handles
                    // allocation/execution failures, where retrying can
                    // help because community state changed.)
                    if self.obs.trace.is_enabled() {
                        self.trace(
                            now,
                            problem,
                            "failed",
                            SpanPhase::Instant,
                            0,
                            reason.clone(),
                        );
                        self.trace(now, problem, "problem", SpanPhase::End, 0, String::new());
                    }
                    q.push(Action::Event(WorkflowEvent::Failed { problem, reason }));
                }
            }
        }
    }

    fn start_allocation(&mut self, problem: ProblemId, now: SimTime, q: &mut ActionQueue) {
        let community_size = self.community.len();
        let Some(ws) = self.workflow_mgr.get_mut(&problem) else {
            return;
        };
        ws.report.timings.constructed_at = Some(now);
        let workflow = ws
            .construction
            .as_ref()
            .expect("constructed phase has a workflow")
            .workflow()
            .clone();
        // Task metadata (§3.2): levels, inputs/outputs, earliest starts.
        // Location requirements are looked up from the *bidders'* service
        // descriptions; the initiator does not constrain locations here.
        let metas = compute_metadata(&workflow, now, SimDuration::ZERO, |_| None);
        ws.auctions = Some(ProblemAuctions::open(metas.clone(), community_size));
        self.metrics.auctions.add(metas.len() as u64);

        if metas.is_empty() {
            // Trivial workflow (goals were triggers): skip auctions.
            self.finalize_allocation(problem, now, q);
            return;
        }

        // Liveness backstop: if bids never arrive (lost calls, crashed
        // bidders), force the allocation decision after auction_timeout
        // instead of waiting on per-bid deadlines that never get armed.
        let timeout = self.params.auction_timeout;
        self.arm(q, now, timeout, TimerPurpose::AuctionTimeout { problem });

        // Call for bids: pairwise to every other member…
        let others = self.others();
        for (task, meta) in &metas {
            self.emit_all(
                q,
                &others,
                Msg::CallForBids {
                    problem,
                    task: task.clone(),
                    meta: meta.clone(),
                },
            );
        }
        // …and the initiator participates through the same logic, locally.
        for (task, meta) in metas {
            let decision = self.auction_part.consider(
                problem,
                &task,
                &meta,
                now,
                &self.service_mgr,
                &mut self.schedule,
                &self.prefs,
                &self.params,
            );
            match decision {
                BidDecision::Submit(bid) => {
                    let expiry = bid.deadline + self.params.round_timeout;
                    self.arm_at(
                        q,
                        now,
                        expiry,
                        TimerPurpose::BidHoldExpiry {
                            problem,
                            task: task.clone(),
                        },
                    );
                    let me = self.id();
                    let action = self
                        .workflow_mgr
                        .get_mut(&problem)
                        .and_then(|ws| ws.auctions.as_mut())
                        .map(|a| a.on_bid(&task, me, bid))
                        .unwrap_or(AuctionAction::None);
                    self.handle_auction_action(problem, action, now, q);
                }
                BidDecision::Decline(_) => {
                    let me = self.id();
                    let action = self
                        .workflow_mgr
                        .get_mut(&problem)
                        .and_then(|ws| ws.auctions.as_mut())
                        .map(|a| a.on_decline(&task, me))
                        .unwrap_or(AuctionAction::None);
                    self.handle_auction_action(problem, action, now, q);
                }
            }
        }
    }

    fn handle_auction_action(
        &mut self,
        problem: ProblemId,
        action: AuctionAction,
        now: SimTime,
        q: &mut ActionQueue,
    ) {
        match action {
            AuctionAction::None => {}
            AuctionAction::ArmDeadline(task, at) => {
                self.arm_at(q, now, at, TimerPurpose::AuctionDeadline { problem, task });
            }
            AuctionAction::Award(task, host, assignment) => {
                if let Some(ws) = self.workflow_mgr.get_mut(&problem) {
                    ws.assignments.push((task.clone(), assignment.clone()));
                }
                self.emit(
                    q,
                    host,
                    Msg::Award {
                        problem,
                        task,
                        assignment,
                    },
                );
                self.maybe_finish_allocation(problem, now, q);
            }
            AuctionAction::Unallocatable(task) => {
                if let Some(ws) = self.workflow_mgr.get_mut(&problem) {
                    ws.unallocatable.push(task);
                }
                self.maybe_finish_allocation(problem, now, q);
            }
        }
    }

    fn maybe_finish_allocation(&mut self, problem: ProblemId, now: SimTime, q: &mut ActionQueue) {
        let done = self
            .workflow_mgr
            .get(&problem)
            .and_then(|ws| ws.auctions.as_ref())
            .map(|a| a.all_decided())
            .unwrap_or(false);
        if done {
            self.finalize_allocation(problem, now, q);
        }
    }

    fn finalize_allocation(&mut self, problem: ProblemId, now: SimTime, q: &mut ActionQueue) {
        let Some(ws) = self.workflow_mgr.get_mut(&problem) else {
            return;
        };
        if !ws.unallocatable.is_empty() {
            let reason = format!(
                "tasks without any capable/willing host: {:?}",
                ws.unallocatable
            );
            self.repair_or_fail(problem, reason, now, q);
            return;
        }
        ws.report.timings.allocated_at = Some(now);
        ws.report.status = ProblemStatus::Executing;
        ws.phase = Phase::Executing;
        ws.report.assignments = ws
            .assignments
            .iter()
            .map(|(t, a)| (t.clone(), a.host))
            .collect();

        let workflow = ws
            .construction
            .as_ref()
            .expect("allocated phase has a workflow")
            .workflow()
            .clone();
        let goals = ws.spec.goals().clone();
        let triggers = ws.spec.triggers().clone();
        let assignments = ws.assignments.clone();

        // Goals the environment supplies directly (no producer task).
        let mut trivially_done: Vec<Label> = Vec::new();
        for goal in &goals {
            if workflow.contains_label(goal) && workflow.producer(goal).is_none() {
                trivially_done.push(goal.clone());
            }
        }
        for g in &trivially_done {
            ws.goals_pending.remove(g);
            ws.report.goals_delivered.push(g.clone());
        }

        if self.obs.trace.is_enabled() {
            self.trace(
                now,
                problem,
                "allocate",
                SpanPhase::End,
                0,
                format!("{} assignment(s)", assignments.len()),
            );
            self.trace(now, problem, "execute", SpanPhase::Begin, 0, String::new());
        }

        // Dispatch execution plans (self-sends included for uniformity).
        let plans = build_plans(&workflow, &assignments, &goals);
        for (host, plan) in plans {
            self.emit(q, host, Msg::Execute { problem, plan });
        }

        // Seed trigger labels to the hosts consuming them.
        let host_of = |task: &TaskId| -> Option<HostId> {
            assignments
                .iter()
                .find(|(t, _)| t == task)
                .map(|(_, a)| a.host)
        };
        for label in &triggers {
            if !workflow.contains_label(label) {
                continue;
            }
            let mut targets: Vec<HostId> = workflow
                .consumers(label)
                .iter()
                .filter_map(host_of)
                .collect();
            targets.sort();
            targets.dedup();
            for h in targets {
                self.emit(
                    q,
                    h,
                    Msg::InputDelivery {
                        problem,
                        label: label.clone(),
                    },
                );
            }
        }

        let watchdog = self.params.execution_watchdog;
        self.arm(q, now, watchdog, TimerPurpose::Watchdog { problem });
        self.check_completion(problem, now, q);
    }

    fn check_completion(&mut self, problem: ProblemId, now: SimTime, q: &mut ActionQueue) {
        let Some(ws) = self.workflow_mgr.get_mut(&problem) else {
            return;
        };
        if ws.phase == Phase::Executing && ws.goals_pending.is_empty() {
            ws.phase = Phase::Completed;
            ws.report.status = ProblemStatus::Completed;
            ws.report.timings.completed_at = Some(now);
            if self.obs.trace.is_enabled() {
                self.trace(
                    now,
                    problem,
                    "completed",
                    SpanPhase::Instant,
                    0,
                    String::new(),
                );
                self.trace(now, problem, "execute", SpanPhase::End, 0, String::new());
                self.trace(now, problem, "problem", SpanPhase::End, 0, String::new());
            }
            q.push(Action::Event(WorkflowEvent::Completed { problem }));
        }
    }

    fn repair_or_fail(
        &mut self,
        problem: ProblemId,
        reason: String,
        now: SimTime,
        q: &mut ActionQueue,
    ) {
        let (attempts_used, spec, original_start) = match self.workflow_mgr.get_mut(&problem) {
            Some(ws) => {
                ws.phase = Phase::Failed;
                ws.report.status = ProblemStatus::Failed {
                    reason: reason.clone(),
                };
                (
                    ws.report.repair_attempts,
                    ws.spec.clone(),
                    ws.report.timings.initiated_at,
                )
            }
            None => return,
        };
        if attempts_used >= self.params.max_repair_attempts {
            if self.obs.trace.is_enabled() {
                self.trace(
                    now,
                    problem,
                    "failed",
                    SpanPhase::Instant,
                    0,
                    reason.clone(),
                );
                self.trace(now, problem, "problem", SpanPhase::End, 0, String::new());
            }
            q.push(Action::Event(WorkflowEvent::Failed { problem, reason }));
            return;
        }
        // "A failure … should result in a revised or repaired workflow,
        // which requires reconstruction [and] reallocation" (§5.1): retry
        // the whole pipeline under a fresh attempt id. Crashed hosts
        // simply never answer; round timeouts carry construction forward
        // with the knowledge that is still alive.
        let next = problem.next_attempt();
        if self.obs.trace.is_enabled() {
            self.trace(
                now,
                problem,
                "repair",
                SpanPhase::Instant,
                0,
                format!("{reason}; retrying as attempt {}", next.attempt),
            );
            self.trace(now, problem, "problem", SpanPhase::End, 0, String::new());
            self.trace(
                now,
                next,
                "problem",
                SpanPhase::Begin,
                0,
                format!("repair attempt {}", next.attempt),
            );
            self.trace(now, next, "construct", SpanPhase::Begin, 0, String::new());
        }
        self.exec_mgr.abandon(&problem);
        self.schedule.release_problem(problem);
        let n_peers = self.community.len().saturating_sub(1);
        self.workflow_mgr.create(next, spec, now, n_peers);
        if let Some(ws) = self.workflow_mgr.get_mut(&next) {
            ws.report.repair_attempts = attempts_used + 1;
            // End-to-end timing spans the failed attempt too.
            ws.report.timings.initiated_at = original_start;
            let actions = ws.begin(&self.fragment_mgr, &self.service_mgr, &self.params);
            self.apply_ws_actions(next, actions, now, q);
        }
    }

    fn apply_exec_events(
        &mut self,
        problem: ProblemId,
        events: Vec<ExecEvent>,
        now: SimTime,
        q: &mut ActionQueue,
    ) {
        for ev in events {
            match ev {
                ExecEvent::WaitUntilStart { task, at } => {
                    self.arm_at(q, now, at, TimerPurpose::ExecStart { problem, task });
                }
                ExecEvent::Begin { task, duration } => {
                    if self.obs.trace.is_enabled() {
                        self.trace(
                            now,
                            problem,
                            "task",
                            SpanPhase::Complete,
                            duration.as_micros(),
                            task.as_str().to_string(),
                        );
                    }
                    self.arm(q, now, duration, TimerPurpose::ExecFinish { problem, task });
                }
            }
        }
    }

    fn finish_task(&mut self, problem: ProblemId, task: TaskId, q: &mut ActionQueue) {
        let Some(finished) = self.exec_mgr.on_completion(problem, &task) else {
            return;
        };
        // Invoke the service (§4.2: uniform service invocation interface).
        self.service_mgr
            .invoke(&finished.task, finished.inputs.clone());
        // Publish outputs to dependents, goals to the initiator.
        for out in &finished.outputs {
            for &consumer in &out.consumers {
                self.emit(
                    q,
                    consumer,
                    Msg::InputDelivery {
                        problem,
                        label: out.label.clone(),
                    },
                );
            }
            if out.is_goal {
                self.emit(
                    q,
                    problem.initiator,
                    Msg::GoalDelivered {
                        problem,
                        label: out.label.clone(),
                    },
                );
            }
        }
        self.emit(q, problem.initiator, Msg::TaskCompleted { problem, task });
    }
}

impl fmt::Debug for HostCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HostCore")
            .field("id", &self.me)
            .field("community", &self.community.len())
            .field("fragments", &self.fragment_mgr.len())
            .field("services", &self.service_mgr.service_count())
            .field("workspaces", &self.workflow_mgr.len())
            .field("outbound", &self.outbound)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::{Mode, Spec};

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    fn service(task: &str) -> ServiceDescription {
        ServiceDescription::new(task, SimDuration::from_millis(10))
    }

    /// Drives a single bound core by hand: every `Send` loops back into
    /// `handle_msg`, timers fire through `tick` — the minimal embedding
    /// the README documents.
    #[test]
    fn bare_core_runs_a_problem_without_any_driver() {
        let cfg = HostConfig::new()
            .with_fragment(frag("cs-f1", "cs-t1", "cs-a", "cs-b"))
            .with_fragment(frag("cs-f2", "cs-t2", "cs-b", "cs-c"))
            .with_service(service("cs-t1"))
            .with_service(service("cs-t2"));
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        let me = HostId(0);
        core.bind(me);
        core.set_community(vec![me]);

        let problem = ProblemId::new(me, 0);
        let mut now = SimTime::ZERO;
        let mut inbox: Vec<Msg> = Vec::new();
        let mut constructed = false;
        let mut completed = false;
        let mut q = core.initiate(problem, Spec::new(["cs-a"], ["cs-c"]), now);
        for _ in 0..1_000 {
            for action in q {
                match action {
                    Action::Send { to, msg } => {
                        assert_eq!(to, me, "single-host community loops back");
                        inbox.push(msg);
                    }
                    Action::SendBytes { .. } => panic!("typed mode emits no bytes"),
                    Action::SetTimer { .. } => {} // tick() fires by due time
                    Action::Event(WorkflowEvent::Constructed { .. }) => constructed = true,
                    Action::Event(WorkflowEvent::Completed { .. }) => completed = true,
                    Action::Event(e) => panic!("unexpected event {e:?}"),
                }
            }
            if let Some(msg) = inbox.pop() {
                q = core.handle_msg(me, msg, now);
                continue;
            }
            // Idle: advance the clock to the next armed timer and poll.
            let Some(due) = core.next_timer_due() else {
                break;
            };
            now = due;
            q = core.tick(now);
        }
        assert!(constructed, "Constructed event surfaced");
        assert!(completed, "Completed event surfaced");
        let ws = core.latest_attempt(problem).expect("workspace");
        assert_eq!(ws.phase, Phase::Completed, "report: {}", ws.report);
        assert_eq!(ws.report.assignments.len(), 2);
        assert_eq!(core.service_mgr().invocations().len(), 2);
    }

    /// `tick` at a time before any due timer is a no-op; at the due time
    /// it fires exactly the due timers.
    #[test]
    fn tick_fires_only_due_timers() {
        let cfg = HostConfig::new().with_fragment(frag("ct-f1", "ct-t1", "ct-a", "ct-b"));
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        core.bind(HostId(0));
        core.set_community(vec![HostId(0), HostId(1)]);
        // With a peer, construction arms a round timeout and waits.
        let q = core.initiate(
            ProblemId::new(HostId(0), 0),
            Spec::new(["ct-a"], ["ct-b"]),
            SimTime::ZERO,
        );
        let armed: Vec<_> = q
            .actions()
            .iter()
            .filter(|a| matches!(a, Action::SetTimer { .. }))
            .collect();
        assert_eq!(armed.len(), 1, "round timeout armed: {:?}", q.actions());
        let due = core.next_timer_due().expect("armed");
        assert!(core.tick(SimTime::ZERO).is_empty(), "nothing due yet");
        assert_eq!(core.next_timer_due(), Some(due), "timer still armed");
        let fired = core.tick(due);
        assert!(
            !fired.is_empty(),
            "round timeout fires work (local fragment round proceeds)"
        );
    }

    /// With enabled collectors attached, a full local problem run
    /// records live counters and a well-formed span stream for the
    /// attempt — and `publish_metrics` is idempotent (delta-based).
    #[test]
    fn observed_core_records_counters_and_spans() {
        let obs = Obs::enabled();
        let cfg = HostConfig::new()
            .with_fragment(frag("ob-f1", "ob-t1", "ob-a", "ob-b"))
            .with_service(service("ob-t1"))
            .with_observability(obs.clone());
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        let me = HostId(0);
        core.bind(me);
        core.set_community(vec![me]);
        let problem = ProblemId::new(me, 0);
        let mut now = SimTime::ZERO;
        let mut inbox: Vec<Msg> = Vec::new();
        let mut q = core.initiate(problem, Spec::new(["ob-a"], ["ob-b"]), now);
        for _ in 0..1_000 {
            for action in q {
                if let Action::Send { msg, .. } = action {
                    inbox.push(msg);
                }
            }
            if let Some(msg) = inbox.pop() {
                q = core.handle_msg(me, msg, now);
                continue;
            }
            let Some(due) = core.next_timer_due() else {
                break;
            };
            now = due;
            q = core.tick(now);
        }
        assert_eq!(
            core.latest_attempt(problem).expect("workspace").phase,
            Phase::Completed
        );

        assert!(obs.metrics.counter("core.messages").get() > 0);
        assert_eq!(obs.metrics.counter("core.auctions").get(), 1);
        assert!(obs.metrics.histogram("core.queue_depth").count() > 0);

        let events = obs.trace.snapshot();
        let spans: Vec<(&str, SpanPhase)> = events
            .iter()
            .filter(|e| e.trace == problem.trace_id())
            .map(|e| (e.name, e.phase))
            .collect();
        for required in [
            ("problem", SpanPhase::Begin),
            ("construct", SpanPhase::Begin),
            ("construct", SpanPhase::End),
            ("allocate", SpanPhase::Begin),
            ("allocate", SpanPhase::End),
            ("execute", SpanPhase::Begin),
            ("task", SpanPhase::Complete),
            ("completed", SpanPhase::Instant),
            ("execute", SpanPhase::End),
            ("problem", SpanPhase::End),
        ] {
            assert!(
                spans.contains(&required),
                "missing {required:?} in {spans:?}"
            );
        }
        // The span stream is causally ordered: begin precedes end.
        let begin = spans
            .iter()
            .position(|s| *s == ("problem", SpanPhase::Begin))
            .unwrap();
        let end = spans
            .iter()
            .position(|s| *s == ("problem", SpanPhase::End))
            .unwrap();
        assert!(begin < end);

        // Delta publishing: a second publish adds nothing new.
        core.publish_metrics();
        let hits_once = obs.metrics.counter("decode.cache_hits").get();
        core.publish_metrics();
        assert_eq!(obs.metrics.counter("decode.cache_hits").get(), hits_once);
    }

    /// Binding twice to the same id is fine; a different id panics.
    #[test]
    #[should_panic(expected = "exactly one host")]
    fn rebinding_to_another_identity_panics() {
        let mut core = HostCore::new(HostConfig::new(), RuntimeParams::default());
        core.bind(HostId(0));
        core.bind(HostId(0));
        core.bind(HostId(1));
    }

    /// Quarantine: after `max_vocabulary_rejections` over-budget frames
    /// from one peer, its traffic is dropped and the event surfaces
    /// exactly once.
    #[test]
    fn minting_peer_is_quarantined_after_cap() {
        let cfg = HostConfig::new()
            .with_fragment(frag("qr-f0", "qr-t0", "qr-a", "qr-b"))
            .with_vocabulary_cap(6) // own knowhow seeds ~5 names
            .with_max_vocabulary_rejections(2);
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        core.bind(HostId(0));
        core.set_community(vec![HostId(0), HostId(1), HostId(2)]);
        let problem = ProblemId::new(HostId(0), 0);
        let minted_reply = |i: usize| Msg::FragmentReply {
            problem,
            round: 1,
            fragments: vec![Arc::new(frag(
                &format!("qr-mint-f{i}"),
                &format!("qr-mint-t{i}"),
                &format!("qr-mint-in{i}"),
                &format!("qr-mint-out{i}"),
            ))],
        };

        // First over-budget reply: rejected, counted, not yet quarantined.
        let q = core.handle_msg(HostId(1), minted_reply(0), SimTime::ZERO);
        assert_eq!(core.vocabulary_rejections_from(HostId(1)), 1);
        assert!(!core.is_quarantined(HostId(1)));
        assert!(
            !q.actions()
                .iter()
                .any(|a| matches!(a, Action::Event(WorkflowEvent::PeerQuarantined { .. }))),
            "below the cap, no quarantine event"
        );

        // Second: the cap trips, the event surfaces.
        let q = core.handle_msg(HostId(1), minted_reply(1), SimTime::ZERO);
        assert!(core.is_quarantined(HostId(1)));
        assert!(
            q.actions().iter().any(|a| matches!(
                a,
                Action::Event(WorkflowEvent::PeerQuarantined {
                    peer: HostId(1),
                    rejections: 2
                })
            )),
            "quarantine event expected in {:?}",
            q.actions()
        );

        // Quarantined traffic — even well-formed queries — is dropped.
        let q = core.handle_msg(
            HostId(1),
            Msg::FragmentQuery {
                problem,
                round: 9,
                labels: vec![Label::new("qr-a")],
            },
            SimTime::ZERO,
        );
        assert!(q.is_empty(), "no reply to a quarantined peer");
        assert_eq!(q.charged(), SimDuration::ZERO, "dropped before processing");
        assert_eq!(
            core.vocabulary_rejections_from(HostId(1)),
            2,
            "dropped frames are not re-counted"
        );

        // An innocent peer is unaffected.
        let q = core.handle_msg(
            HostId(2),
            Msg::FragmentQuery {
                problem,
                round: 9,
                labels: vec![Label::new("qr-a")],
            },
            SimTime::ZERO,
        );
        assert!(
            q.actions()
                .iter()
                .any(|a| matches!(a, Action::Send { to: HostId(2), .. })),
            "peer 2 still gets replies: {:?}",
            q.actions()
        );

        // The same applies to raw frames.
        let mut bytes = Vec::new();
        codec::encode_msg(
            &Msg::FragmentQuery {
                problem,
                round: 10,
                labels: vec![Label::new("qr-a")],
            },
            &mut bytes,
        );
        assert!(core
            .handle_frame(HostId(1), &bytes, SimTime::ZERO)
            .is_empty());
    }

    /// `handle_frame` charges the vocabulary budget at decode: an
    /// over-budget frame books a rejection without interning anything.
    #[test]
    fn over_budget_frame_is_rejected_at_decode() {
        let cfg = HostConfig::new()
            .with_fragment(frag("fb-f0", "fb-t0", "fb-a", "fb-b"))
            .with_vocabulary_cap(6);
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        core.bind(HostId(0));
        core.set_community(vec![HostId(0), HostId(1)]);
        let names_before = core.vocabulary_names();

        let mut bytes = Vec::new();
        codec::encode_msg(
            &Msg::FragmentReply {
                problem: ProblemId::new(HostId(0), 0),
                round: 1,
                fragments: vec![Arc::new(frag(
                    "fb-mint-f",
                    "fb-mint-t",
                    "fb-mint-in",
                    "fb-mint-out",
                ))],
            },
            &mut bytes,
        );
        let q = core.handle_frame(HostId(1), &bytes, SimTime::ZERO);
        assert!(q.is_empty());
        assert_eq!(core.vocabulary_rejections(), 1);
        assert_eq!(core.vocabulary_rejections_from(HostId(1)), 1);
        assert_eq!(
            core.vocabulary_names(),
            names_before,
            "rejected frame recorded nothing"
        );

        // Garbage bytes are transport loss, not a vocabulary offence.
        let q = core.handle_frame(HostId(1), &[0xff, 0x01, 0x02], SimTime::ZERO);
        assert!(q.is_empty());
        assert_eq!(core.vocabulary_rejections(), 1, "no rejection booked");
    }

    /// The cap guards *every* peer frame at the networked boundary — a
    /// hostile peer cannot grow the interner through query labels — but
    /// only fragment replies (minted knowhow) are blamed, and the
    /// host's own looped-back frames are trusted like own knowhow.
    #[test]
    fn non_reply_frames_cannot_mint_past_the_cap() {
        let cfg = HostConfig::new()
            .with_fragment(frag("nf-f0", "nf-t0", "nf-a", "nf-b"))
            .with_service(service("nf-t0"))
            .with_vocabulary_cap(8)
            .with_max_vocabulary_rejections(1);
        let mut core = HostCore::new(cfg, RuntimeParams::default());
        core.bind(HostId(0));
        core.set_community(vec![HostId(0), HostId(1)]);
        let problem = ProblemId::new(HostId(0), 0);
        let names_before = core.vocabulary_names();

        // A peer query minting fresh labels: dropped, nothing recorded,
        // and the peer is NOT blamed (echoing a rich frontier is not
        // evidence of minting).
        let mut bytes = Vec::new();
        codec::encode_msg(
            &Msg::FragmentQuery {
                problem,
                round: 1,
                labels: (0..16)
                    .map(|i| Label::new(format!("nf-mint-{i}")))
                    .collect(),
            },
            &mut bytes,
        );
        let q = core.handle_frame(HostId(1), &bytes, SimTime::ZERO);
        assert!(q.is_empty(), "over-budget query dropped, not answered");
        assert_eq!(core.vocabulary_names(), names_before, "nothing interned");
        assert_eq!(core.vocabulary_rejections_from(HostId(1)), 0, "no blame");
        assert!(!core.is_quarantined(HostId(1)));

        // A within-budget query from the same peer still gets answered.
        let mut ok_bytes = Vec::new();
        codec::encode_msg(
            &Msg::FragmentQuery {
                problem,
                round: 2,
                labels: vec![Label::new("nf-a")],
            },
            &mut ok_bytes,
        );
        let q = core.handle_frame(HostId(1), &ok_bytes, SimTime::ZERO);
        assert!(
            q.actions()
                .iter()
                .any(|a| matches!(a, Action::Send { to: HostId(1), .. })),
            "reply expected in {:?}",
            q.actions()
        );

        // The same minting frame from *self* (a driver looping back own
        // traffic) bypasses the budget entirely and is processed.
        let q = core.handle_frame(HostId(0), &bytes, SimTime::ZERO);
        assert!(
            q.actions()
                .iter()
                .any(|a| matches!(a, Action::Send { to: HostId(0), .. })),
            "self query answered: {:?}",
            q.actions()
        );
        assert_eq!(core.vocabulary_rejections(), 0);
    }
}
