//! The bytes-loopback driver: whole communities over encoded wire
//! frames.
//!
//! Every protocol message a core emits is encoded by the core itself
//! ([`crate::core_sm::OutboundMode::Encoded`]) into one complete
//! `openwf-wire` `TAG_MSG` frame, queued as raw bytes, and decoded on
//! delivery through the **receiving** host's vocabulary trust boundary
//! ([`HostCore::handle_frame`]) — exactly what a networked deployment
//! does, with no `Arc<Fragment>` sharing across host boundaries. This is
//! the end-to-end proof that the binary codec carries the complete
//! protocol: construction, capability checks, auctions, execution and
//! repair all run over bytes.
//!
//! The clock discipline deliberately mirrors [`openwf_simnet::SimNetwork`]
//! with its default constant latency: events pop in `(time, seq)` order,
//! a callback's compute charge makes the host busy and defers its next
//! event, self-sends skip the wire, and cross-host frames arrive after a
//! fixed delay. Because both transports then present every core with the
//! identical input sequence, a scenario driven here produces
//! **bit-identical supergraphs and workflow outcomes** to the same
//! scenario on [`crate::driver::SimDriver`] (property-tested in
//! `tests/driver_equivalence.rs`).

use std::collections::BTreeMap;
use std::fmt;

use openwf_core::Spec;
use openwf_simnet::{HostId, SimDuration, SimTime, TimerToken};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::codec;
use crate::core_sm::{Action, ActionQueue, HostConfig, HostCore, OutboundMode, WorkflowEvent};
use crate::driver::{Driver, ProblemHandle};
use crate::messages::{Msg, ProblemId};
use crate::params::RuntimeParams;

#[derive(Debug)]
enum Ev {
    Frame {
        from: HostId,
        to: HostId,
        bytes: Vec<u8>,
    },
    Timer {
        host: HostId,
        token: TimerToken,
    },
}

/// Traffic counters for a loopback run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoopbackStats {
    /// Frames delivered to a core.
    pub frames_delivered: u64,
    /// Total encoded bytes delivered (exact wire bytes, not the
    /// simulator's arithmetic approximation).
    pub bytes_delivered: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Frames dropped by wire chaos.
    pub frames_dropped: u64,
    /// Frames whose bytes were corrupted by wire chaos.
    pub frames_corrupted: u64,
    /// Frames truncated by wire chaos.
    pub frames_truncated: u64,
    /// Extra frame copies injected by wire chaos.
    pub frames_duplicated: u64,
}

/// Wire-level chaos for the loopback transport: per-frame byte damage a
/// real radio link inflicts, decided by a dedicated RNG seeded from
/// `seed` so a run is a deterministic function of its configuration.
/// Damage applies only to cross-host frames (self-sends never touch the
/// wire), and the receiving core's decode path is total — corrupted or
/// truncated frames degrade into transport loss or protocol errors,
/// never a panic.
#[derive(Clone, Debug)]
pub struct WireChaos {
    /// Probability a frame is lost outright.
    pub drop_probability: f64,
    /// Probability one random byte of the frame is bit-flipped.
    pub corrupt_probability: f64,
    /// Probability the frame is cut short at a random length.
    pub truncate_probability: f64,
    /// Probability the frame is delivered twice.
    pub duplicate_probability: f64,
    /// Seed of the chaos RNG.
    pub seed: u64,
}

impl WireChaos {
    /// No damage; a starting point for builder-style field updates.
    pub fn none(seed: u64) -> Self {
        WireChaos {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            truncate_probability: 0.0,
            duplicate_probability: 0.0,
            seed,
        }
    }
}

/// Drives a community of [`HostCore`]s entirely over encoded frames.
pub struct LoopbackBytesDriver {
    cores: Vec<HostCore>,
    /// Pending events keyed by `(time, seq)` — a deterministic
    /// discrete-event queue.
    queue: BTreeMap<(SimTime, u64), Ev>,
    seq: u64,
    now: SimTime,
    busy_until: Vec<SimTime>,
    /// Per-frame delivery delay, taken from the simulator's default
    /// [`openwf_simnet::ConstantLatency`] so the two transports agree
    /// on event ordering for identical scenarios — one source of truth.
    latency: SimDuration,
    next_seq: u32,
    stats: LoopbackStats,
    events: Vec<(HostId, WorkflowEvent)>,
    /// Wire fault model plus its dedicated RNG; `None` means a clean
    /// wire and zero RNG draws, so chaos-free runs are byte-identical
    /// to builds that predate the fault model.
    wire_chaos: Option<(WireChaos, StdRng)>,
}

impl LoopbackBytesDriver {
    /// Assembles a community: one core per configuration, all switched
    /// to [`OutboundMode::Encoded`].
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn build(params: RuntimeParams, configs: Vec<HostConfig>) -> Self {
        assert!(!configs.is_empty(), "a community needs at least one host");
        let n = configs.len() as u32;
        let all: Vec<HostId> = (0..n).map(HostId).collect();
        let cores: Vec<HostCore> = configs
            .into_iter()
            .enumerate()
            .map(|(i, cfg)| {
                let mut core = HostCore::new(cfg, params.clone());
                core.bind(HostId(i as u32));
                core.set_community(all.clone());
                core.set_outbound_mode(OutboundMode::Encoded);
                core
            })
            .collect();
        let busy_until = vec![SimTime::ZERO; cores.len()];
        LoopbackBytesDriver {
            cores,
            queue: BTreeMap::new(),
            seq: 0,
            now: SimTime::ZERO,
            busy_until,
            latency: openwf_simnet::ConstantLatency::default().0,
            next_seq: 0,
            stats: LoopbackStats::default(),
            events: Vec::new(),
            wire_chaos: None,
        }
    }

    /// Installs (or replaces) the wire fault model. The chaos RNG is
    /// seeded from `chaos.seed`, so installing the same configuration on
    /// the same scenario replays the same damage.
    pub fn set_wire_chaos(&mut self, chaos: WireChaos) {
        let rng = StdRng::seed_from_u64(chaos.seed);
        self.wire_chaos = Some((chaos, rng));
    }

    /// Removes the wire fault model; subsequent frames travel clean.
    pub fn clear_wire_chaos(&mut self) {
        self.wire_chaos = None;
    }

    /// Traffic counters (exact wire bytes).
    pub fn stats(&self) -> LoopbackStats {
        self.stats
    }

    /// Workflow events every core surfaced, in firing order, tagged with
    /// the host that emitted them.
    pub fn events(&self) -> &[(HostId, WorkflowEvent)] {
        &self.events
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        let key = (at, self.seq);
        self.seq += 1;
        self.queue.insert(key, ev);
    }

    /// Schedules one outbound frame, passing cross-host frames through
    /// the wire fault model. Self-sends never touch the wire and are
    /// exempt — the protocol's local bootstrap (`Initiate`) must not be
    /// damageable. Every RNG draw is gated on its probability being
    /// non-zero, so partially-enabled chaos keeps a stable draw stream.
    fn send_frame(&mut self, from: HostId, to: HostId, mut bytes: Vec<u8>, effective_now: SimTime) {
        if to == from {
            self.schedule(effective_now, Ev::Frame { from, to, bytes });
            return;
        }
        let at = effective_now + self.latency;
        let mut duplicate = false;
        if let Some((chaos, rng)) = self.wire_chaos.as_mut() {
            if chaos.drop_probability > 0.0 && rng.random_bool(chaos.drop_probability) {
                self.stats.frames_dropped += 1;
                return;
            }
            if chaos.corrupt_probability > 0.0
                && !bytes.is_empty()
                && rng.random_bool(chaos.corrupt_probability)
            {
                let idx = rng.random_range(0..bytes.len());
                let bit = rng.random_range(0..8u32);
                bytes[idx] ^= 1 << bit;
                self.stats.frames_corrupted += 1;
            }
            if chaos.truncate_probability > 0.0
                && !bytes.is_empty()
                && rng.random_bool(chaos.truncate_probability)
            {
                let keep = rng.random_range(0..bytes.len());
                bytes.truncate(keep);
                self.stats.frames_truncated += 1;
            }
            if chaos.duplicate_probability > 0.0 && rng.random_bool(chaos.duplicate_probability) {
                duplicate = true;
            }
        }
        if duplicate {
            self.stats.frames_duplicated += 1;
            self.schedule(
                at,
                Ev::Frame {
                    from,
                    to,
                    bytes: bytes.clone(),
                },
            );
        }
        self.schedule(at, Ev::Frame { from, to, bytes });
    }

    /// Applies one core's action queue, scheduling deliveries and
    /// timers. Mirrors `SimNetwork::dispatch`: the compute charge delays
    /// every emitted effect and makes the host busy until then.
    fn apply(&mut self, host: HostId, queue: ActionQueue) {
        let charged = queue.charged();
        let effective_now = self.now + charged;
        if charged > SimDuration::ZERO {
            self.busy_until[host.index()] = effective_now;
        }
        for action in queue {
            match action {
                Action::SendBytes { to, bytes } => {
                    self.send_frame(host, to, bytes, effective_now);
                }
                Action::Send { to, msg } => {
                    // An encoded-mode core never emits typed sends, but a
                    // driver must not lose protocol traffic if one does
                    // (e.g. a core installed without the mode switch):
                    // encode it here and carry it as a frame.
                    let mut bytes = Vec::new();
                    codec::encode_msg(&msg, &mut bytes);
                    self.send_frame(host, to, bytes, effective_now);
                }
                Action::SetTimer { delay, token } => {
                    self.schedule(effective_now + delay, Ev::Timer { host, token });
                }
                Action::Event(event) => self.events.push((host, event)),
            }
        }
    }
}

impl Driver for LoopbackBytesDriver {
    fn hosts(&self) -> Vec<HostId> {
        (0..self.cores.len() as u32).map(HostId).collect()
    }

    fn core(&self, id: HostId) -> &HostCore {
        &self.cores[id.index()]
    }

    fn core_mut(&mut self, id: HostId) -> &mut HostCore {
        &mut self.cores[id.index()]
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn submit(&mut self, initiator: HostId, spec: Spec) -> ProblemHandle {
        let id = ProblemId::new(initiator, self.next_seq);
        self.next_seq += 1;
        let mut bytes = Vec::new();
        codec::encode_msg(&Msg::Initiate { problem: id, spec }, &mut bytes);
        self.schedule(
            self.now,
            Ev::Frame {
                from: initiator,
                to: initiator,
                bytes,
            },
        );
        ProblemHandle { id }
    }

    fn step(&mut self) -> bool {
        let Some((&key, _)) = self.queue.iter().next() else {
            return false;
        };
        let ev = self.queue.remove(&key).expect("peeked above");
        let (at, _) = key;
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        // Sequential-processor semantics: a busy host defers the event
        // until it is free again (order among deferred events is kept by
        // the (time, seq) queue discipline).
        let target = match &ev {
            Ev::Frame { to, .. } => *to,
            Ev::Timer { host, .. } => *host,
        };
        let free_at = self.busy_until[target.index()];
        if free_at > self.now {
            self.schedule(free_at, ev);
            return true;
        }
        match ev {
            Ev::Frame { from, to, bytes } => {
                self.stats.frames_delivered += 1;
                self.stats.bytes_delivered += bytes.len() as u64;
                let queue = self.cores[to.index()].handle_frame(from, &bytes, self.now);
                self.apply(to, queue);
            }
            Ev::Timer { host, token } => {
                self.stats.timers_fired += 1;
                let queue = self.cores[host.index()].handle_timer(token, self.now);
                self.apply(host, queue);
            }
        }
        true
    }
}

impl fmt::Debug for LoopbackBytesDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoopbackBytesDriver")
            .field("hosts", &self.cores.len())
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::{Fragment, Mode};
    use openwf_simnet::SimDuration;

    use crate::service::ServiceDescription;

    fn frag(id: &str, task: &str, input: &str, output: &str) -> Fragment {
        Fragment::single_task(id, task, Mode::Disjunctive, [input], [output]).unwrap()
    }

    fn service(task: &str) -> ServiceDescription {
        ServiceDescription::new(task, SimDuration::from_millis(5))
    }

    // Test-only sugar.
    impl HostConfig {
        fn with_fragments_from(mut self, frags: impl IntoIterator<Item = Fragment>) -> Self {
            for f in frags {
                self = self.with_fragment(f);
            }
            self
        }
    }

    /// Knowledge and capability split across two hosts: cooperation is
    /// mandatory, and every hop crosses the wire as encoded frames.
    #[test]
    fn two_hosts_cooperate_over_encoded_frames() {
        let mut driver = LoopbackBytesDriver::build(
            RuntimeParams::default(),
            vec![
                HostConfig::new()
                    .with_fragment(frag("lb-f1", "lb-t1", "lb-a", "lb-b"))
                    .with_service(service("lb-t2")),
                HostConfig::new()
                    .with_fragment(frag("lb-f2", "lb-t2", "lb-b", "lb-c"))
                    .with_service(service("lb-t1")),
            ],
        );
        let initiator = driver.hosts()[0];
        let handle = driver.submit(initiator, Spec::new(["lb-a"], ["lb-c"]));
        let report = driver.run_until_complete(handle);
        assert!(
            matches!(report.status, crate::report::ProblemStatus::Completed),
            "report: {report}"
        );
        let find = |t: &str| {
            report
                .assignments
                .iter()
                .find(|(task, _)| task.as_str() == t)
                .map(|(_, h)| *h)
        };
        assert_eq!(find("lb-t1"), Some(HostId(1)));
        assert_eq!(find("lb-t2"), Some(HostId(0)));
        // Everything traveled as real wire bytes.
        let stats = driver.stats();
        assert!(stats.frames_delivered > 4, "stats: {stats:?}");
        assert!(stats.bytes_delivered > 200, "stats: {stats:?}");
        assert!(driver
            .events()
            .iter()
            .any(|(h, e)| *h == initiator && matches!(e, WorkflowEvent::Completed { .. })));
    }

    /// A capped host on the loopback rejects an over-minting peer at
    /// frame decode, and the round still completes via timeout.
    #[test]
    fn capped_host_survives_minting_peer_on_the_wire() {
        let mut driver = LoopbackBytesDriver::build(
            RuntimeParams::default(),
            vec![
                HostConfig::new()
                    .with_fragment(frag("lbc-f1", "lbc-t1", "lbc-a", "lbc-b"))
                    .with_service(service("lbc-t1"))
                    .with_vocabulary_cap(8),
                // This peer's knowhow mints far past the initiator's cap.
                HostConfig::new().with_fragments_from((0..16).map(|i| {
                    frag(
                        &format!("lbc-mint-f{i}"),
                        &format!("lbc-mint-t{i}"),
                        "lbc-a",
                        &format!("lbc-mint-out{i}"),
                    )
                })),
            ],
        );
        let initiator = driver.hosts()[0];
        let handle = driver.submit(initiator, Spec::new(["lbc-a"], ["lbc-b"]));
        let report = driver.run_until_complete(handle);
        assert!(
            matches!(report.status, crate::report::ProblemStatus::Completed),
            "local knowhow suffices: {report}"
        );
        assert!(
            driver.core(initiator).vocabulary_rejections() >= 1,
            "the minting reply was rejected at decode"
        );
    }

    /// The full quarantine story over the wire: a flooding peer minting
    /// past the initiator's vocabulary budget is quarantined once its
    /// rejection count crosses `max_vocabulary_rejections`, the event is
    /// surfaced, and the honest cooperation still completes.
    #[test]
    fn flooding_peer_is_quarantined_end_to_end() {
        let flood = |prefix: &str, input: &str| -> Vec<Fragment> {
            (0..8)
                .map(|i| {
                    frag(
                        &format!("{prefix}-f{i}"),
                        &format!("{prefix}-t{i}"),
                        input,
                        &format!("{prefix}-out{i}"),
                    )
                })
                .collect()
        };
        let mut driver = LoopbackBytesDriver::build(
            RuntimeParams::default(),
            vec![
                HostConfig::new()
                    .with_fragment(frag("lbq-f1", "lbq-t1", "lbq-a", "lbq-b"))
                    .with_service(service("lbq-t2"))
                    .with_vocabulary_cap(16)
                    .with_max_vocabulary_rejections(2),
                HostConfig::new()
                    .with_fragment(frag("lbq-f2", "lbq-t2", "lbq-b", "lbq-c"))
                    .with_service(service("lbq-t1")),
                // The flooder mints fresh symbols keyed to both the
                // spec input and the intermediate label, so it offends
                // in every query wave of the construction.
                HostConfig::new()
                    .with_fragments_from(flood("lbq-mint-a", "lbq-a"))
                    .with_fragments_from(flood("lbq-mint-b", "lbq-b")),
            ],
        );
        let initiator = driver.hosts()[0];
        let flooder = HostId(2);
        let handle = driver.submit(initiator, Spec::new(["lbq-a"], ["lbq-c"]));
        let report = driver.run_until_complete(handle);
        assert!(
            matches!(report.status, crate::report::ProblemStatus::Completed),
            "honest peers complete despite the flooder: {report}"
        );
        assert!(
            driver.core(initiator).is_quarantined(flooder),
            "rejections seen: {}",
            driver.core(initiator).vocabulary_rejections()
        );
        assert!(
            !driver.core(initiator).is_quarantined(HostId(1)),
            "the honest peer must stay trusted"
        );
        assert!(
            driver.events().iter().any(|(h, e)| *h == initiator
                && matches!(e, WorkflowEvent::PeerQuarantined { peer, .. } if *peer == flooder)),
            "quarantine surfaces as a workflow event"
        );
    }

    /// A wire storm (drops, bit flips, truncation, duplication) never
    /// panics the decode path, and the whole run — outcome and damage
    /// counters alike — is a deterministic function of the chaos seed.
    #[test]
    fn wire_chaos_is_deterministic_and_panic_free() {
        let run = |seed: u64| {
            let mut driver = LoopbackBytesDriver::build(
                RuntimeParams::default(),
                vec![
                    HostConfig::new()
                        .with_fragment(frag("lwx-f1", "lwx-t1", "lwx-a", "lwx-b"))
                        .with_service(service("lwx-t2")),
                    HostConfig::new()
                        .with_fragment(frag("lwx-f2", "lwx-t2", "lwx-b", "lwx-c"))
                        .with_service(service("lwx-t1")),
                ],
            );
            let mut chaos = WireChaos::none(seed);
            chaos.drop_probability = 0.05;
            chaos.corrupt_probability = 0.25;
            chaos.truncate_probability = 0.10;
            chaos.duplicate_probability = 0.25;
            driver.set_wire_chaos(chaos);
            let initiator = driver.hosts()[0];
            let handle = driver.submit(initiator, Spec::new(["lwx-a"], ["lwx-c"]));
            let report = driver.run_until_complete(handle);
            driver.run_until_quiescent();
            (format!("{:?}", report.status), driver.stats())
        };
        let (status_a, stats_a) = run(0xC0FFEE);
        let (status_b, stats_b) = run(0xC0FFEE);
        assert_eq!(status_a, status_b, "same seed, same outcome");
        assert_eq!(stats_a, stats_b, "same seed, same wire trace");
        let damage = stats_a.frames_dropped
            + stats_a.frames_corrupted
            + stats_a.frames_truncated
            + stats_a.frames_duplicated;
        assert!(damage > 0, "the storm left a mark: {stats_a:?}");
        let (_, stats_c) = run(0xBEEF);
        assert_ne!(stats_a, stats_c, "different seeds take different traces");
    }
}
