//! Drivers: transports that own the clock and the pipes and poll the
//! sans-io [`HostCore`] state machines.
//!
//! The protocol core performs no I/O — every poll call returns an
//! [`crate::core_sm::ActionQueue`] of typed effects. A [`Driver`] is the
//! half that *performs* them: it schedules message deliveries, arms
//! timers, advances a clock, and feeds inputs back into the cores. Two
//! drivers ship:
//!
//! * [`SimDriver`] — the deterministic discrete-event simulator
//!   (`openwf-simnet`): typed [`crate::Msg`]s with `Arc<Fragment>`
//!   payloads shared in-process, pluggable latency/topology/faults.
//!   [`crate::Community`] is a facade over this driver.
//! * [`LoopbackBytesDriver`] — whole communities over **encoded wire
//!   frames**: every message crosses host boundaries as
//!   `openwf-wire` bytes (encode on send, vocabulary-budgeted decode on
//!   receive), proving the binary codec carries the complete protocol
//!   end-to-end. Same clock discipline as the simulator, so identical
//!   scenarios produce bit-identical supergraphs and outcomes.
//!
//! Any future transport (an async executor, a real socket loop) drives
//! the same cores the same way: deliver bytes through
//! [`HostCore::handle_frame`], fire timers via [`HostCore::handle_timer`]
//! or poll [`HostCore::tick`], and perform the returned actions.

use openwf_core::Spec;
use openwf_simnet::{HostId, SimTime};

use crate::core_sm::HostCore;
use crate::messages::ProblemId;
use crate::report::ProblemReport;
use crate::workflow_mgr::Phase;

mod loopback;
mod sim;

pub use loopback::{LoopbackBytesDriver, LoopbackStats, WireChaos};
pub use sim::SimDriver;

/// Handle to a submitted problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemHandle {
    /// The first-attempt problem id.
    pub id: ProblemId,
}

/// A transport driving a community of [`HostCore`] state machines.
///
/// The required surface is small — host enumeration, core access, a
/// clock, problem submission and single-stepping; the problem-driving
/// conveniences are provided on top of it and therefore behave
/// identically across transports.
pub trait Driver {
    /// All host ids in the community, in order.
    fn hosts(&self) -> Vec<HostId>;

    /// The protocol core of one host, for inspection.
    fn core(&self, id: HostId) -> &HostCore;

    /// Mutable access to one host's protocol core (e.g. to install
    /// service hooks before driving).
    fn core_mut(&mut self, id: HostId) -> &mut HostCore;

    /// Current time on this driver's clock.
    fn now(&self) -> SimTime;

    /// Submits a problem specification to `initiator` (the Workflow
    /// Initiator's job in §4.2). Returns a handle for driving/reporting.
    fn submit(&mut self, initiator: HostId, spec: Spec) -> ProblemHandle;

    /// Processes the next pending event. Returns `false` when the driver
    /// is quiescent (nothing queued).
    fn step(&mut self) -> bool;

    /// Runs until no events remain. Returns the final time.
    fn run_until_quiescent(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// The latest-attempt report for a problem, if any.
    fn report(&self, handle: ProblemHandle) -> Option<ProblemReport> {
        self.core(handle.id.initiator)
            .latest_attempt(handle.id)
            .map(|ws| ws.report.clone())
    }

    /// The latest-attempt phase for a problem.
    fn phase(&self, handle: ProblemHandle) -> Option<Phase> {
        self.core(handle.id.initiator)
            .latest_attempt(handle.id)
            .map(|ws| ws.phase.clone())
    }

    /// Runs until the problem's tasks are all allocated (the paper's
    /// measurement endpoint) or the problem fails; returns the report.
    fn run_until_allocated(&mut self, handle: ProblemHandle) -> ProblemReport {
        loop {
            let settled = self
                .core(handle.id.initiator)
                .latest_attempt(handle.id)
                .map(|ws| ws.report.timings.allocated_at.is_some() || ws.phase == Phase::Failed)
                .unwrap_or(false);
            if settled || !self.step() {
                break;
            }
        }
        self.report(handle).expect("workspace exists after submit")
    }

    /// Runs until the problem completes (all goals delivered) or fails;
    /// returns the report.
    fn run_until_complete(&mut self, handle: ProblemHandle) -> ProblemReport {
        loop {
            let settled = self
                .core(handle.id.initiator)
                .latest_attempt(handle.id)
                .map(|ws| matches!(ws.phase, Phase::Completed | Phase::Failed))
                .unwrap_or(false);
            if settled || !self.step() {
                break;
            }
        }
        self.report(handle).expect("workspace exists after submit")
    }
}
