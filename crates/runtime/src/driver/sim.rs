//! The simulator driver: [`HostCore`]s adapted back onto
//! `openwf-simnet`'s deterministic discrete-event kernel.

use std::fmt;

use openwf_core::Spec;
use openwf_simnet::{HostId, LatencyModel, NetStats, SimNetwork, SimTime};

use crate::core_sm::{HostConfig, HostCore};
use crate::driver::{Driver, ProblemHandle};
use crate::host::OwmsHost;
use crate::messages::{Msg, ProblemId};
use crate::params::RuntimeParams;

/// Drives a community on the virtual-time simulator: each host is an
/// [`OwmsHost`] actor (the thin `simnet` adapter over [`HostCore`]),
/// messages travel as typed [`Msg`]s through the pluggable
/// latency/topology/fault models, and the run is a deterministic
/// function of the seed.
pub struct SimDriver {
    net: SimNetwork<Msg, OwmsHost>,
    next_seq: u32,
}

impl SimDriver {
    /// Assembles a community network from per-host configurations.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn build(
        seed: u64,
        params: RuntimeParams,
        latency: Option<Box<dyn LatencyModel + 'static>>,
        configs: Vec<HostConfig>,
    ) -> Self {
        assert!(!configs.is_empty(), "a community needs at least one host");
        let mut net: SimNetwork<Msg, OwmsHost> = SimNetwork::new(seed);
        if let Some(model) = latency {
            net.set_latency_boxed(model);
        }
        let n = configs.len() as u32;
        let all: Vec<HostId> = (0..n).map(HostId).collect();
        for cfg in configs {
            let mut host = OwmsHost::new(cfg, params.clone());
            host.set_community(all.clone());
            net.add_host(host);
        }
        SimDriver { net, next_seq: 0 }
    }

    /// The underlying network (topology, faults, latency, stats).
    pub fn net_mut(&mut self) -> &mut SimNetwork<Msg, OwmsHost> {
        &mut self.net
    }

    /// Immutable access to a host's simulator adapter.
    pub fn host(&self, id: HostId) -> &OwmsHost {
        self.net.host(id)
    }

    /// Mutable access to a host's simulator adapter.
    pub fn host_mut(&mut self, id: HostId) -> &mut OwmsHost {
        self.net.host_mut(id)
    }

    /// Network traffic counters.
    pub fn stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Runs until `pred` holds on the network (checked after every
    /// event) or the queue empties. Returns `true` if the predicate
    /// held.
    pub fn run_until_pred(&mut self, pred: impl FnMut(&SimNetwork<Msg, OwmsHost>) -> bool) -> bool {
        self.net.run_until_pred(pred)
    }
}

impl Driver for SimDriver {
    fn hosts(&self) -> Vec<HostId> {
        self.net.hosts()
    }

    fn core(&self, id: HostId) -> &HostCore {
        self.net.host(id).core()
    }

    fn core_mut(&mut self, id: HostId) -> &mut HostCore {
        self.net.host_mut(id).core_mut()
    }

    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn submit(&mut self, initiator: HostId, spec: Spec) -> ProblemHandle {
        let id = ProblemId::new(initiator, self.next_seq);
        self.next_seq += 1;
        self.net
            .send_external(initiator, initiator, Msg::Initiate { problem: id, spec });
        ProblemHandle { id }
    }

    fn step(&mut self) -> bool {
        self.net.step()
    }
}

impl fmt::Debug for SimDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimDriver")
            .field("hosts", &self.net.len())
            .field("now", &self.net.now())
            .finish()
    }
}
