//! The Execution Manager: condition monitoring and service firing.
//!
//! §4.2: "The Execution Manager monitors the input message and time
//! conditions required for each scheduled service invocation during the
//! execution phase. Once the necessary conditions are met, it triggers
//! service execution, and publishes any output messages."
//!
//! The manager is a pure state machine: the host feeds it plans, input
//! deliveries and timer firings; it answers with [`ExecEvent`]s telling
//! the host which timers to arm and which services to begin, and
//! [`FinishedTask`]s describing outputs to publish.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use openwf_core::{Label, TaskId};
use openwf_simnet::{SimDuration, SimTime};

use crate::messages::ProblemId;
use crate::metadata::{ExecutionPlan, PlannedOutput, PlannedTask};

/// Instructions for the host driver.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecEvent {
    /// Arm a timer for the task's scheduled start time.
    WaitUntilStart {
        /// The waiting task.
        task: TaskId,
        /// When its slot begins.
        at: SimTime,
    },
    /// All conditions hold: begin travel + service; arm a completion timer
    /// after `duration`.
    Begin {
        /// The task to execute.
        task: TaskId,
        /// Slot duration (travel + service execution).
        duration: SimDuration,
    },
}

/// A completed service invocation with its routing.
#[derive(Clone, Debug, PartialEq)]
pub struct FinishedTask {
    /// The task that finished.
    pub task: TaskId,
    /// The inputs it consumed.
    pub inputs: Vec<Label>,
    /// Outputs to publish (consumers + goal flags).
    pub outputs: Vec<PlannedOutput>,
}

#[derive(Debug, PartialEq)]
enum TaskState {
    Waiting,
    Running,
    Done,
}

#[derive(Debug)]
struct ActiveTask {
    planned: PlannedTask,
    missing_inputs: BTreeSet<Label>,
    state: TaskState,
}

/// Per-host execution state across problems.
#[derive(Debug, Default)]
pub struct ExecutionManager {
    active: HashMap<ProblemId, Vec<ActiveTask>>,
    /// Labels that arrived before their plan (triggers can race the plan
    /// message on loopback delivery).
    early_inputs: HashMap<ProblemId, BTreeSet<Label>>,
}

impl ExecutionManager {
    /// An idle manager.
    pub fn new() -> Self {
        ExecutionManager::default()
    }

    /// Number of not-yet-finished tasks for a problem.
    pub fn unfinished(&self, problem: &ProblemId) -> usize {
        self.active
            .get(problem)
            .map(|v| v.iter().filter(|t| t.state != TaskState::Done).count())
            .unwrap_or(0)
    }

    /// Installs the host's slice of a problem's execution plan, returning
    /// the initial events (start timers / immediate begins).
    pub fn install_plan(
        &mut self,
        problem: ProblemId,
        plan: ExecutionPlan,
        now: SimTime,
    ) -> Vec<ExecEvent> {
        let early = self.early_inputs.remove(&problem).unwrap_or_default();
        let tasks: Vec<ActiveTask> = plan
            .commitments
            .into_iter()
            .map(|planned| {
                let missing_inputs = planned
                    .inputs
                    .iter()
                    .filter(|l| !early.contains(*l))
                    .cloned()
                    .collect();
                ActiveTask {
                    planned,
                    missing_inputs,
                    state: TaskState::Waiting,
                }
            })
            .collect();
        self.active.entry(problem).or_default().extend(tasks);
        let mut events = Vec::new();
        for t in self.active.get_mut(&problem).expect("just inserted") {
            if t.state != TaskState::Waiting {
                continue;
            }
            if t.planned.start > now {
                events.push(ExecEvent::WaitUntilStart {
                    task: t.planned.task.clone(),
                    at: t.planned.start,
                });
            } else if t.missing_inputs.is_empty() {
                t.state = TaskState::Running;
                events.push(ExecEvent::Begin {
                    task: t.planned.task.clone(),
                    duration: t.planned.duration,
                });
            }
        }
        events
    }

    /// Records an input delivery; returns any tasks that became runnable.
    pub fn on_input(&mut self, problem: ProblemId, label: Label, now: SimTime) -> Vec<ExecEvent> {
        let Some(tasks) = self.active.get_mut(&problem) else {
            // Plan not installed yet: remember the label.
            self.early_inputs.entry(problem).or_default().insert(label);
            return Vec::new();
        };
        let mut events = Vec::new();
        let mut consumed = false;
        for t in tasks.iter_mut() {
            if t.missing_inputs.remove(&label) {
                consumed = true;
                if t.state == TaskState::Waiting
                    && t.missing_inputs.is_empty()
                    && t.planned.start <= now
                {
                    t.state = TaskState::Running;
                    events.push(ExecEvent::Begin {
                        task: t.planned.task.clone(),
                        duration: t.planned.duration,
                    });
                }
            }
        }
        if !consumed {
            // No active task wanted it (yet): future plans for this
            // problem may (multiple Execute messages are allowed).
            self.early_inputs.entry(problem).or_default().insert(label);
        }
        events
    }

    /// The start timer for `task` fired: begin if inputs are ready.
    pub fn on_start_time(&mut self, problem: ProblemId, task: &TaskId) -> Vec<ExecEvent> {
        let Some(tasks) = self.active.get_mut(&problem) else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for t in tasks.iter_mut() {
            if &t.planned.task == task
                && t.state == TaskState::Waiting
                && t.missing_inputs.is_empty()
            {
                t.state = TaskState::Running;
                events.push(ExecEvent::Begin {
                    task: t.planned.task.clone(),
                    duration: t.planned.duration,
                });
            }
        }
        events
    }

    /// The completion timer fired: the service ran to completion.
    ///
    /// Returns the finished task's routing, or `None` if it was not
    /// running (stale timer).
    pub fn on_completion(&mut self, problem: ProblemId, task: &TaskId) -> Option<FinishedTask> {
        let tasks = self.active.get_mut(&problem)?;
        let t = tasks
            .iter_mut()
            .find(|t| &t.planned.task == task && t.state == TaskState::Running)?;
        t.state = TaskState::Done;
        Some(FinishedTask {
            task: t.planned.task.clone(),
            inputs: t.planned.inputs.clone(),
            outputs: t.planned.outputs.clone(),
        })
    }

    /// Drops all state for a problem (repair).
    pub fn abandon(&mut self, problem: &ProblemId) {
        self.active.remove(problem);
        self.early_inputs.remove(problem);
    }
}

impl fmt::Display for ExecutionManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution manager: {} active problems",
            self.active.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_simnet::HostId;

    fn pid() -> ProblemId {
        ProblemId::new(HostId(0), 0)
    }

    fn planned(task: &str, inputs: &[&str], start_us: u64) -> PlannedTask {
        PlannedTask {
            task: TaskId::new(task),
            inputs: inputs.iter().map(|l| Label::new(*l)).collect(),
            outputs: vec![PlannedOutput {
                label: Label::new("out"),
                consumers: vec![HostId(2)],
                is_goal: false,
            }],
            start: SimTime::from_micros(start_us),
            duration: SimDuration::from_micros(500),
            location: None,
        }
    }

    #[test]
    fn immediate_task_begins_on_install() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &[], 0)],
        };
        let events = em.install_plan(pid(), plan, SimTime::from_micros(10));
        assert_eq!(
            events,
            vec![ExecEvent::Begin {
                task: TaskId::new("t"),
                duration: SimDuration::from_micros(500)
            }]
        );
    }

    #[test]
    fn future_task_waits_for_start_time() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &[], 1_000)],
        };
        let events = em.install_plan(pid(), plan, SimTime::ZERO);
        assert_eq!(
            events,
            vec![ExecEvent::WaitUntilStart {
                task: TaskId::new("t"),
                at: SimTime::from_micros(1_000)
            }]
        );
        // Start timer fires; inputs are ready (none needed) → begin.
        let events = em.on_start_time(pid(), &TaskId::new("t"));
        assert!(matches!(events[0], ExecEvent::Begin { .. }));
    }

    #[test]
    fn inputs_gate_execution() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &["a", "b"], 0)],
        };
        let events = em.install_plan(pid(), plan, SimTime::ZERO);
        assert!(events.is_empty(), "waiting for inputs");
        assert!(em
            .on_input(pid(), Label::new("a"), SimTime::ZERO)
            .is_empty());
        let events = em.on_input(pid(), Label::new("b"), SimTime::ZERO);
        assert!(matches!(events[0], ExecEvent::Begin { .. }));
        assert_eq!(em.unfinished(&pid()), 1, "running still unfinished");
    }

    #[test]
    fn early_inputs_are_buffered() {
        let mut em = ExecutionManager::new();
        // Trigger arrives before the plan (racing messages).
        assert!(em
            .on_input(pid(), Label::new("a"), SimTime::ZERO)
            .is_empty());
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &["a"], 0)],
        };
        let events = em.install_plan(pid(), plan, SimTime::ZERO);
        assert!(
            matches!(events[0], ExecEvent::Begin { .. }),
            "buffered input counts"
        );
    }

    #[test]
    fn completion_reports_routing_once() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &[], 0)],
        };
        em.install_plan(pid(), plan, SimTime::ZERO);
        let fin = em
            .on_completion(pid(), &TaskId::new("t"))
            .expect("finished");
        assert_eq!(fin.task, TaskId::new("t"));
        assert_eq!(fin.outputs[0].consumers, vec![HostId(2)]);
        assert!(
            em.on_completion(pid(), &TaskId::new("t")).is_none(),
            "stale timer"
        );
        assert_eq!(em.unfinished(&pid()), 0);
    }

    #[test]
    fn start_timer_before_inputs_does_not_begin() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &["a"], 1_000)],
        };
        em.install_plan(pid(), plan, SimTime::ZERO);
        assert!(em.on_start_time(pid(), &TaskId::new("t")).is_empty());
        // Input arrives after the start time: begins immediately.
        let events = em.on_input(pid(), Label::new("a"), SimTime::from_micros(2_000));
        assert!(matches!(events[0], ExecEvent::Begin { .. }));
    }

    #[test]
    fn abandon_clears_problem_state() {
        let mut em = ExecutionManager::new();
        let plan = ExecutionPlan {
            commitments: vec![planned("t", &["a"], 0)],
        };
        em.install_plan(pid(), plan, SimTime::ZERO);
        em.abandon(&pid());
        assert_eq!(em.unfinished(&pid()), 0);
        assert!(em
            .on_input(pid(), Label::new("a"), SimTime::ZERO)
            .is_empty());
    }
}
