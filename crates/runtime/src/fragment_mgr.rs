//! The Fragment Manager: the host's knowhow database.
//!
//! §4.2: "The Fragment Manager is responsible for maintaining a host's
//! database of workflow fragments and responding to knowhow queries during
//! workflow construction."

use std::fmt;
use std::sync::Arc;

use openwf_core::{Fragment, InMemoryFragmentStore, Label};

/// Per-host fragment database answering knowhow queries.
#[derive(Default)]
pub struct FragmentManager {
    store: InMemoryFragmentStore,
}

impl FragmentManager {
    /// An empty database.
    pub fn new() -> Self {
        FragmentManager::default()
    }

    /// Adds a fragment to the database (step 2 of the paper's deployment:
    /// "adding knowhow in the form of workflow fragments"). Accepts owned
    /// fragments or shared `Arc<Fragment>` handles.
    pub fn add(&mut self, fragment: impl Into<Arc<Fragment>>) {
        self.store.insert(fragment);
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the host has no knowhow.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Answers a knowhow query: fragments containing a task that consumes
    /// any of `labels`. The returned handles share the stored allocations
    /// — replying to a frontier query copies pointers, not graphs.
    pub fn query(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        self.store.consuming(labels)
    }

    /// All fragments (e.g. for configuration dumps).
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.store.fragments()
    }
}

impl fmt::Debug for FragmentManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FragmentManager")
            .field("fragments", &self.store.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::Mode;

    #[test]
    fn query_matches_consumed_labels() {
        let mut fm = FragmentManager::new();
        fm.add(Fragment::single_task("f1", "t1", Mode::Disjunctive, ["a"], ["b"]).unwrap());
        fm.add(Fragment::single_task("f2", "t2", Mode::Disjunctive, ["b"], ["c"]).unwrap());
        assert_eq!(fm.len(), 2);
        let hits = fm.query(&[Label::new("a")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id().as_str(), "f1");
        assert!(fm.query(&[Label::new("zzz")]).is_empty());
    }

    #[test]
    fn empty_manager_answers_empty() {
        let fm = FragmentManager::new();
        assert!(fm.is_empty());
        assert!(fm.query(&[Label::new("a")]).is_empty());
    }
}
