//! The Fragment Manager: the host's knowhow database.
//!
//! §4.2: "The Fragment Manager is responsible for maintaining a host's
//! database of workflow fragments and responding to knowhow queries during
//! workflow construction."
//!
//! The database lives behind a pluggable [`FragmentBackend`]
//! (`HostConfig::storage` selects it): the default in-memory
//! [`ShardedFragmentStore`], or `openwf-wire`'s durable segment log,
//! which appends every insert to disk and rebuilds the same store by
//! replay on restart. Either way queries are answered from the in-memory
//! index: fragments partition across shards by produced-label symbol, so
//! a host configured with construction parallelism
//! (`HostConfig::construction_threads`) answers big frontier queries by
//! fanning the labels out over scoped worker threads — the same shard
//! layout the core's parallel incremental constructor drains. The
//! default is one shard and no threads, which is the monolithic fast
//! path.

use std::fmt;
use std::sync::Arc;

use openwf_core::store::finish_hits;
use openwf_core::{
    BackendError, Fragment, FragmentBackend, Label, ParallelFragmentSource, ShardedFragmentStore,
};

/// Below this many stored fragments a parallel query costs more in
/// thread choreography than it saves; answer inline instead.
const PARALLEL_QUERY_MIN_FRAGMENTS: usize = 4096;

/// Per-host fragment database answering knowhow queries.
pub struct FragmentManager {
    backend: Box<dyn FragmentBackend>,
    threads: usize,
    parallel_min: usize,
}

impl Default for FragmentManager {
    fn default() -> Self {
        FragmentManager::new()
    }
}

impl FragmentManager {
    /// An empty in-memory database: one shard, inline queries.
    pub fn new() -> Self {
        FragmentManager::with_parallelism(1)
    }

    /// An empty in-memory database sharded for `threads` query workers
    /// (`0` = one per hardware thread).
    pub fn with_parallelism(threads: usize) -> Self {
        let threads = normalize_threads(threads);
        FragmentManager::with_backend(
            Box::new(ShardedFragmentStore::with_shards(threads)),
            threads,
        )
    }

    /// A database over an explicit storage backend (see
    /// [`FragmentBackend`]); `threads` configures query fan-out and
    /// should match the backend's shard count.
    pub fn with_backend(backend: Box<dyn FragmentBackend>, threads: usize) -> Self {
        FragmentManager {
            backend,
            threads: normalize_threads(threads),
            parallel_min: PARALLEL_QUERY_MIN_FRAGMENTS,
        }
    }

    /// A database over `openwf-wire`'s durable segment log at `dir`,
    /// sharded for `threads` query workers (`0` = one per hardware
    /// thread). An existing log is replayed into the index first.
    ///
    /// # Errors
    ///
    /// [`openwf_wire::StorageError`] when the log cannot be opened or is
    /// corrupt beyond crash recovery.
    pub fn durable(
        dir: impl Into<std::path::PathBuf>,
        threads: usize,
        segment_bytes: u64,
    ) -> Result<Self, openwf_wire::StorageError> {
        FragmentManager::durable_with(
            dir,
            threads,
            segment_bytes,
            openwf_wire::StoragePolicy::default(),
        )
    }

    /// [`FragmentManager::durable`] with an explicit snapshot/compaction
    /// [`openwf_wire::StoragePolicy`]: the log checkpoints its live set
    /// and deletes covered segments per the policy's triggers, so
    /// restart replay costs O(live + tail) instead of O(insert history).
    ///
    /// # Errors
    ///
    /// [`openwf_wire::StorageError`] when the log cannot be opened or is
    /// corrupt beyond crash recovery.
    pub fn durable_with(
        dir: impl Into<std::path::PathBuf>,
        threads: usize,
        segment_bytes: u64,
        policy: openwf_wire::StoragePolicy,
    ) -> Result<Self, openwf_wire::StorageError> {
        let threads = normalize_threads(threads);
        let backend = openwf_wire::DurableFragmentStore::open_with_policy(
            dir,
            threads,
            segment_bytes,
            policy,
        )?;
        Ok(FragmentManager::with_backend(Box::new(backend), threads))
    }

    /// The configured query worker count.
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// The storage backend's short name (`"memory"`, `"durable"`).
    pub fn backend_kind(&self) -> &'static str {
        self.backend.backend_kind()
    }

    /// The backend's observability report
    /// ([`FragmentBackend::metrics`]): named figures such as log bytes
    /// and snapshot/compaction/replay counts for a durable store. Empty
    /// for the in-memory backend.
    pub fn backend_metrics(&self) -> Vec<(&'static str, u64)> {
        self.backend.metrics()
    }

    /// Lowers the parallel-query size threshold (tests exercise the
    /// threaded path without building a huge database).
    #[cfg(test)]
    fn set_parallel_threshold(&mut self, n: usize) {
        self.parallel_min = n;
    }

    /// Adds a fragment to the database (step 2 of the paper's deployment:
    /// "adding knowhow in the form of workflow fragments"). Accepts owned
    /// fragments or shared `Arc<Fragment>` handles.
    ///
    /// # Panics
    ///
    /// Panics when a durable backend cannot persist the fragment (disk
    /// failure); use [`FragmentManager::try_add`] to handle that.
    pub fn add(&mut self, fragment: impl Into<Arc<Fragment>>) {
        self.try_add(fragment)
            .expect("fragment backend failed to persist an insert");
    }

    /// Adds a fragment, surfacing backend persistence failures. Returns
    /// `Ok(true)` when the fragment was new.
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the storage backend cannot persist the
    /// insert; the database is unchanged in that case.
    pub fn try_add(&mut self, fragment: impl Into<Arc<Fragment>>) -> Result<bool, BackendError> {
        self.backend.insert_fragment(fragment.into())
    }

    /// Flushes a durable backend to stable storage (no-op in memory).
    ///
    /// # Errors
    ///
    /// [`BackendError`] when the flush fails.
    pub fn sync(&mut self) -> Result<(), BackendError> {
        self.backend.sync()
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.backend.index().len()
    }

    /// True if the host has no knowhow.
    pub fn is_empty(&self) -> bool {
        self.backend.index().is_empty()
    }

    /// The underlying sharded query index (e.g. to drive
    /// `IncrementalConstructor::construct_parallel` directly against this
    /// host's knowhow).
    pub fn store(&self) -> &ShardedFragmentStore {
        self.backend.index()
    }

    /// Answers a knowhow query: fragments containing a task that consumes
    /// any of `labels`, in insertion order. The returned handles share the
    /// stored allocations — replying to a frontier query copies pointers,
    /// not graphs. With construction parallelism configured and a large
    /// enough database, the labels fan out over scoped worker threads.
    pub fn query(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        let store = self.backend.index();
        if self.threads <= 1 || labels.len() <= 1 || store.len() < self.parallel_min {
            return store.consuming(labels);
        }
        let workers = self.threads.min(labels.len());
        let hits = crossbeam::thread::scope(|scope| {
            let chunks: Vec<&[Label]> = labels.chunks(labels.len().div_ceil(workers)).collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for shard in 0..store.shard_count() {
                            store.shard_consuming(shard, chunk, &mut out);
                        }
                        out
                    })
                })
                .collect();
            let mut hits = Vec::new();
            for h in handles {
                hits.extend(h.join().expect("query worker panicked"));
            }
            hits
        });
        finish_hits(hits)
    }

    /// All fragments (e.g. for configuration dumps), in insertion order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.backend
            .index()
            .fragments_shared()
            .into_iter()
            .map(Arc::as_ref)
    }

    /// Primes a decode-side fragment-identity cache with every stored
    /// fragment ([`openwf_wire::FragmentCache::admit`]). A peer echoing
    /// this host's own knowhow then decodes to the manager's shared
    /// `Arc` on first receipt — no graph rebuild, no duplicate
    /// allocation.
    pub fn prime_cache(&self, cache: &mut openwf_wire::FragmentCache) {
        for f in self.backend.index().fragments_shared() {
            cache.admit(f);
        }
    }
}

fn normalize_threads(threads: usize) -> usize {
    match threads {
        0 => openwf_core::hardware_parallelism(),
        n => n,
    }
}

impl fmt::Debug for FragmentManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FragmentManager")
            .field("fragments", &self.len())
            .field("threads", &self.threads)
            .field("backend", &self.backend.backend_kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::Mode;

    #[test]
    fn query_matches_consumed_labels() {
        let mut fm = FragmentManager::new();
        fm.add(Fragment::single_task("f1", "t1", Mode::Disjunctive, ["a"], ["b"]).unwrap());
        fm.add(Fragment::single_task("f2", "t2", Mode::Disjunctive, ["b"], ["c"]).unwrap());
        assert_eq!(fm.len(), 2);
        assert_eq!(fm.backend_kind(), "memory");
        let hits = fm.query(&[Label::new("a")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id().as_str(), "f1");
        assert!(fm.query(&[Label::new("zzz")]).is_empty());
    }

    #[test]
    fn empty_manager_answers_empty() {
        let fm = FragmentManager::new();
        assert!(fm.is_empty());
        assert!(fm.query(&[Label::new("a")]).is_empty());
    }

    #[test]
    fn durable_backend_answers_like_memory() {
        let dir = std::env::temp_dir().join(format!(
            "openwf-fm-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = openwf_wire::DurableFragmentStore::open(&dir).unwrap();
        let mut fm = FragmentManager::with_backend(Box::new(backend), 1);
        assert_eq!(fm.backend_kind(), "durable");
        fm.add(Fragment::single_task("df1", "dt1", Mode::Disjunctive, ["da"], ["db"]).unwrap());
        fm.sync().unwrap();
        assert_eq!(fm.query(&[Label::new("da")]).len(), 1);
        drop(fm);
        // Reopen: the log replays into an identical database.
        let backend = openwf_wire::DurableFragmentStore::open(&dir).unwrap();
        let fm = FragmentManager::with_backend(Box::new(backend), 1);
        assert_eq!(fm.len(), 1);
        assert_eq!(fm.query(&[Label::new("da")])[0].id().as_str(), "df1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_manager_answers_like_sequential() {
        let build = |threads: usize| {
            let mut fm = FragmentManager::with_parallelism(threads);
            for i in 0..64 {
                fm.add(
                    Fragment::single_task(
                        format!("pf{i}"),
                        format!("pt{i}"),
                        Mode::Disjunctive,
                        [format!("pin{}", i % 8)],
                        [format!("pout{i}")],
                    )
                    .unwrap(),
                );
            }
            fm
        };
        let seq = build(1);
        let mut par = build(3);
        par.set_parallel_threshold(1); // exercise the scoped-thread path
        assert_eq!(par.parallelism(), 3);
        let query: Vec<Label> = (0..8).map(|i| Label::new(format!("pin{i}"))).collect();
        let a: Vec<String> = seq
            .query(&query)
            .iter()
            .map(|f| f.id().to_string())
            .collect();
        let b: Vec<String> = par
            .query(&query)
            .iter()
            .map(|f| f.id().to_string())
            .collect();
        assert_eq!(a, b, "shard layout must not change answers");
        assert_eq!(a.len(), 64);
    }
}
