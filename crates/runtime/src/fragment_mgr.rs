//! The Fragment Manager: the host's knowhow database.
//!
//! §4.2: "The Fragment Manager is responsible for maintaining a host's
//! database of workflow fragments and responding to knowhow queries during
//! workflow construction."
//!
//! The database is a [`ShardedFragmentStore`]: fragments partition across
//! shards by produced-label symbol, so a host configured with
//! construction parallelism (`HostConfig::construction_threads`) answers
//! big frontier queries by fanning the labels out over scoped worker
//! threads — the same shard layout the core's parallel incremental
//! constructor drains. The default is one shard and no threads, which is
//! the monolithic fast path.

use std::fmt;
use std::sync::Arc;

use openwf_core::store::finish_hits;
use openwf_core::{Fragment, Label, ParallelFragmentSource, ShardedFragmentStore};

/// Below this many stored fragments a parallel query costs more in
/// thread choreography than it saves; answer inline instead.
const PARALLEL_QUERY_MIN_FRAGMENTS: usize = 4096;

/// Per-host fragment database answering knowhow queries.
pub struct FragmentManager {
    store: ShardedFragmentStore,
    threads: usize,
    parallel_min: usize,
}

impl Default for FragmentManager {
    fn default() -> Self {
        FragmentManager::new()
    }
}

impl FragmentManager {
    /// An empty database: one shard, inline queries.
    pub fn new() -> Self {
        FragmentManager::with_parallelism(1)
    }

    /// An empty database sharded for `threads` query workers (`0` = one
    /// per hardware thread).
    pub fn with_parallelism(threads: usize) -> Self {
        let threads = match threads {
            0 => openwf_core::hardware_parallelism(),
            n => n,
        };
        FragmentManager {
            store: ShardedFragmentStore::with_shards(threads),
            threads,
            parallel_min: PARALLEL_QUERY_MIN_FRAGMENTS,
        }
    }

    /// The configured query worker count.
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// Lowers the parallel-query size threshold (tests exercise the
    /// threaded path without building a huge database).
    #[cfg(test)]
    fn set_parallel_threshold(&mut self, n: usize) {
        self.parallel_min = n;
    }

    /// Adds a fragment to the database (step 2 of the paper's deployment:
    /// "adding knowhow in the form of workflow fragments"). Accepts owned
    /// fragments or shared `Arc<Fragment>` handles.
    pub fn add(&mut self, fragment: impl Into<Arc<Fragment>>) {
        self.store.insert(fragment);
    }

    /// Number of stored fragments.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True if the host has no knowhow.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The underlying sharded store (e.g. to drive
    /// `IncrementalConstructor::construct_parallel` directly against this
    /// host's knowhow).
    pub fn store(&self) -> &ShardedFragmentStore {
        &self.store
    }

    /// Answers a knowhow query: fragments containing a task that consumes
    /// any of `labels`, in insertion order. The returned handles share the
    /// stored allocations — replying to a frontier query copies pointers,
    /// not graphs. With construction parallelism configured and a large
    /// enough database, the labels fan out over scoped worker threads.
    pub fn query(&self, labels: &[Label]) -> Vec<Arc<Fragment>> {
        if self.threads <= 1 || labels.len() <= 1 || self.store.len() < self.parallel_min {
            return self.store.consuming(labels);
        }
        let workers = self.threads.min(labels.len());
        let hits = crossbeam::thread::scope(|scope| {
            let chunks: Vec<&[Label]> = labels.chunks(labels.len().div_ceil(workers)).collect();
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for shard in 0..self.store.shard_count() {
                            self.store.shard_consuming(shard, chunk, &mut out);
                        }
                        out
                    })
                })
                .collect();
            let mut hits = Vec::new();
            for h in handles {
                hits.extend(h.join().expect("query worker panicked"));
            }
            hits
        });
        finish_hits(hits)
    }

    /// All fragments (e.g. for configuration dumps), in insertion order.
    pub fn fragments(&self) -> impl Iterator<Item = &Fragment> + '_ {
        self.store.fragments_shared().into_iter().map(Arc::as_ref)
    }
}

impl fmt::Debug for FragmentManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FragmentManager")
            .field("fragments", &self.store.len())
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openwf_core::Mode;

    #[test]
    fn query_matches_consumed_labels() {
        let mut fm = FragmentManager::new();
        fm.add(Fragment::single_task("f1", "t1", Mode::Disjunctive, ["a"], ["b"]).unwrap());
        fm.add(Fragment::single_task("f2", "t2", Mode::Disjunctive, ["b"], ["c"]).unwrap());
        assert_eq!(fm.len(), 2);
        let hits = fm.query(&[Label::new("a")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id().as_str(), "f1");
        assert!(fm.query(&[Label::new("zzz")]).is_empty());
    }

    #[test]
    fn empty_manager_answers_empty() {
        let fm = FragmentManager::new();
        assert!(fm.is_empty());
        assert!(fm.query(&[Label::new("a")]).is_empty());
    }

    #[test]
    fn parallel_manager_answers_like_sequential() {
        let build = |threads: usize| {
            let mut fm = FragmentManager::with_parallelism(threads);
            for i in 0..64 {
                fm.add(
                    Fragment::single_task(
                        format!("pf{i}"),
                        format!("pt{i}"),
                        Mode::Disjunctive,
                        [format!("pin{}", i % 8)],
                        [format!("pout{i}")],
                    )
                    .unwrap(),
                );
            }
            fm
        };
        let seq = build(1);
        let mut par = build(3);
        par.set_parallel_threshold(1); // exercise the scoped-thread path
        assert_eq!(par.parallelism(), 3);
        let query: Vec<Label> = (0..8).map(|i| Label::new(format!("pin{i}"))).collect();
        let a: Vec<String> = seq
            .query(&query)
            .iter()
            .map(|f| f.id().to_string())
            .collect();
        let b: Vec<String> = par
            .query(&query)
            .iter()
            .map(|f| f.id().to_string())
            .collect();
        assert_eq!(a, b, "shard layout must not change answers");
        assert_eq!(a.len(), 64);
    }
}
